"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` falls back to the legacy
develop install through this file when PEP 660 editable builds are
unavailable (offline environments).
"""

from setuptools import setup

setup()
