"""Result analysis: the paper's reference numbers and report rendering."""

from . import paper
from .paper import TABLE2, Table2Row, within
from .report import render_comparison, render_series, render_table

__all__ = [
    "TABLE2",
    "Table2Row",
    "paper",
    "render_comparison",
    "render_series",
    "render_table",
    "within",
]
