"""Every number the paper reports, as Python data.

The benchmark harness prints measured-vs-paper side by side, and the
test suite asserts that measured values fall inside tolerance bands
around these references.  Having one module of record keeps the
expected values from drifting apart across benches and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2: dirty data amplification by granularity."""

    memory_gb: float
    amp_4k: float
    amp_2m: float
    amp_cl: float


#: Table 2 — dirty data amplification for different tracking granularities.
TABLE2: Dict[str, Table2Row] = {
    "redis-rand": Table2Row(4.0, 31.36, 5516.37, 1.48),
    "redis-seq": Table2Row(0.13, 2.76, 54.76, 1.08),
    "linear-regression": Table2Row(40.0, 2.31, 244.14, 1.22),
    "histogram": Table2Row(40.0, 3.61, 1050.73, 1.84),
    "page-rank": Table2Row(4.2, 4.38, 80.71, 1.47),
    "graph-coloring": Table2Row(8.2, 5.57, 90.37, 1.57),
    "connected-components": Table2Row(5.2, 5.67, 82.35, 1.62),
    "label-propagation": Table2Row(5.6, 8.14, 95.00, 1.85),
    "voltdb-tpcc": Table2Row(11.5, 3.74, 79.55, 1.17),
}

#: Section 2.1 / 6.2 — measured remote-fetch latencies (microseconds).
REMOTE_FETCH_US = {
    "infiniswap": 40.0,
    "legoos": 10.0,
    "rdma-4k": 3.0,
}

#: Section 2.1 — Infiniswap eviction latency (microseconds).
INFINISWAP_EVICT_US = 32.0

#: Figure 7 — Kona-vs-Kona-VM microbenchmark speedups.
FIG7_SPEEDUP = {
    1: (5.5, 8.0),      # "6.6X at 1 thread" — accept a band around it
    2: (3.5, 6.0),      # "4-5X for 2 and 4 threads"
    4: (3.5, 6.0),
}
FIG7_NOEVICT_SPEEDUP = (3.0, 5.5)     # "3-5X"
FIG7_NOWP_SLOWDOWN = (1.2, 3.0)       # NoWP still 1.2-2.9X slower than Kona

#: Figure 8 — AMAT improvements at a 25% local cache.
FIG8_KONA_VS_LEGOOS_AT_25 = (1.4, 2.3)       # "1.7X"
FIG8_KONA_VS_INFINISWAP_AT_25 = (3.5, 7.0)   # "5X"
FIG8_KONA_MAIN_NUMA_OVERHEAD = (0.02, 0.30)  # "2-13%, worst 25% (LinReg)"

#: Figure 8d — best fetch block size (bytes); 4 KB within a small margin.
FIG8D_BEST_BLOCK = 1024

#: Section 6.2(3) — KCacheSim simulation slowdown ("43X lower throughput").
KCACHESIM_SLOWDOWN_MIN = 20.0

#: Figure 9 — per-window 4 KB-vs-CL amplification ratio bands.
FIG9_REDIS_RAND_BAND = (2.0, 10.0)
FIG9_REDIS_SEQ_APPROX = 2.0

#: Figure 10 — tracking speedup vs write-protection (percent).
FIG10_SPEEDUP_PCT = {
    "redis-rand": (30.0, 38.0),       # 35%
    "redis-seq": (0.3, 3.0),          # ~1%
    "histogram": (0.3, 3.0),          # ~1%
    "linear-regression": (1.0, 8.0),
    "page-rank": (5.0, 15.0),
    "connected-components": (8.0, 18.0),
    "graph-coloring": (10.0, 22.0),
    "label-propagation": (12.0, 26.0),
}

#: Section 6.3(3) — KTracker emulation overhead.
KTRACKER_LOSS = (0.4, 0.75)           # "60% lower throughput"
KTRACKER_DIFF_SHARE_MIN = 0.85        # "95% ... copying and comparing"

#: Figure 11 — eviction goodput relative to Kona-VM.
FIG11A_CONTIG_1_4 = (3.8, 6.0)        # "4-5X for 1-4 contiguous lines"
FIG11B_ALT_2_4 = (2.0, 3.8)           # "2-3X for 2-4 random lines"
FIG11A_FULL_PAGE_PAR = (0.9, 1.1)     # on par when the page is fully dirty
FIG11_IDEAL_4K = (1.2, 1.7)           # "always ~1.5X higher than Kona-VM"
FIG11B_LOSE_BEYOND = 16               # CL log loses only past 16 lines

#: Figure 11c — time breakdown bands (fractions) at a mid dirty density.
FIG11C_BANDS = {
    "copy": (0.40, 0.70),
    "rdma_write": (0.08, 0.30),
    "bitmap": (0.10, 0.30),
    "ack_wait": (0.0, 0.10),
}

#: Section 1 / 6 — headline claims.
HEADLINE_AMAT_IMPROVEMENT = (1.7, 5.0)      # 1.7-5X
HEADLINE_AMPLIFICATION_REDUCTION = (2.0, 10.0)  # 2-10X
HEADLINE_GOODPUT_IMPROVEMENT = (4.0, 5.0)   # 4-5X

#: Section 6.1 — Kona-VM vs Infiniswap ("similar or faster, up to 60%").
KONA_VM_VS_INFINISWAP_MAX_SPEEDUP = 0.60

#: Section 2.1 — Redis throughput drop with 25% of data remote (">60%").
MOTIVATION_THROUGHPUT_DROP_MIN = 0.60


def within(value: float, band: Tuple[float, float]) -> bool:
    """True if ``value`` lies inside the inclusive band."""
    low, high = band
    return low <= value <= high
