"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and readable in CI logs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..common.errors import ConfigError


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(series: Iterable[Tuple[object, object]],
                  x_label: str, y_label: str,
                  title: Optional[str] = None) -> str:
    """Render an (x, y) series as two aligned columns."""
    rows = [(x, y) for x, y in series]
    return render_table([x_label, y_label], rows, title=title)


def render_comparison(measured: Dict[str, float],
                      expected: Dict[str, object],
                      title: Optional[str] = None) -> str:
    """Side-by-side measured vs paper-reported values."""
    rows = []
    for key in measured:
        rows.append((key, measured[key], expected.get(key, "-")))
    return render_table(["metric", "measured", "paper"], rows, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)
