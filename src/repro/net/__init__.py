"""RDMA fabric, verbs, and the cache-line eviction log."""

from .fabric import Fabric, FaultEvent, FaultSchedule, TransferReceipt
from .rdma import (
    MAX_INLINE,
    Completion,
    CompletionQueue,
    MemoryRegion,
    OpCode,
    QueuePair,
    WorkRequest,
)
from .ring import RECORD_BYTES, LogRecord, RingBufferLog, pack_dirty_lines

__all__ = [
    "Completion",
    "CompletionQueue",
    "Fabric",
    "FaultEvent",
    "FaultSchedule",
    "LogRecord",
    "MAX_INLINE",
    "MemoryRegion",
    "OpCode",
    "QueuePair",
    "RECORD_BYTES",
    "RingBufferLog",
    "TransferReceipt",
    "WorkRequest",
    "pack_dirty_lines",
]
