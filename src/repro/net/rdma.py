"""RDMA verbs: memory regions, queue pairs, batching and completions.

Models the subset of the verbs API the paper's eviction study exercises
(section 5.1 "RDMA eviction"):

* one-sided READ / WRITE work requests;
* **memory registration** — only registered buffers can be sources or
  targets, which is why real eviction must first *copy* dirty data into
  an RDMA buffer (the "Copy" slice of Figure 11c);
* **linking/batching** — a chain of WRs posted with one doorbell;
* **unsignaled completions** — only the last WR of a batch generates a
  CQE, so completion-polling cost is paid once per batch;
* **inline data** — small payloads ride in the WQE itself, skipping the
  DMA read of the source buffer (the paper found it unhelpful at 64 B
  to 4 KB sizes; we model it so the ablation can show the same).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, List, Optional, Sequence

from ..common.errors import ConfigError, NetworkError
from ..common.retry import Retrier
from ..common.stats import Counter
from ..mem.address import AddressRange
from .fabric import Fabric


class OpCode(Enum):
    """Work-request opcodes."""

    RDMA_READ = auto()
    RDMA_WRITE = auto()
    SEND = auto()


#: Largest payload a WQE can carry inline (ConnectX-class NICs: ~220 B).
MAX_INLINE = 220


@dataclass(frozen=True)
class MemoryRegion:
    """A buffer registered with the NIC (lkey/rkey holder)."""

    key: int
    range: AddressRange
    node: str

    def covers(self, addr: int, nbytes: int) -> bool:
        """Whether [addr, addr+nbytes) lies inside the region."""
        return (addr in self.range) and (addr + nbytes <= self.range.end)


@dataclass
class WorkRequest:
    """One work request, possibly part of a linked chain."""

    opcode: OpCode
    local_addr: int
    remote_addr: int
    nbytes: int
    signaled: bool = True
    inline: bool = False
    wr_id: int = 0


@dataclass(frozen=True)
class Completion:
    """A completion-queue entry."""

    wr_id: int
    opcode: OpCode
    nbytes: int
    success: bool = True


class CompletionQueue:
    """FIFO of completions with polling cost accounting."""

    def __init__(self, fabric: Fabric) -> None:
        self._fabric = fabric
        self._entries: List[Completion] = []
        self.counters = Counter()

    def push(self, completion: Completion) -> None:
        """NIC-side: deposit a CQE."""
        self._entries.append(completion)

    def poll(self, max_entries: int = 16) -> List[Completion]:
        """Drain up to ``max_entries`` completions, paying the poll cost."""
        self._fabric.clock.advance(self._fabric.latency.rdma_completion_ns)
        self.counters.add("polls")
        drained = self._entries[:max_entries]
        del self._entries[:max_entries]
        self.counters.add("completions", len(drained))
        return drained

    def __len__(self) -> int:
        return len(self._entries)


class QueuePair:
    """A reliable-connected QP between two nodes on the fabric."""

    _keys = itertools.count(1)

    def __init__(self, fabric: Fabric, local_node: str, remote_node: str,
                 cq: Optional[CompletionQueue] = None) -> None:
        for node in (local_node, remote_node):
            if not fabric.has_node(node):
                raise ConfigError(f"node {node!r} not on fabric")
        self.fabric = fabric
        self.local_node = local_node
        self.remote_node = remote_node
        self.cq = cq if cq is not None else CompletionQueue(fabric)
        self._regions: Dict[int, MemoryRegion] = {}
        self.counters = Counter()

    # -- registration ------------------------------------------------------------

    def register(self, node: str, start: int, nbytes: int) -> MemoryRegion:
        """Register a buffer for RDMA on ``node``; returns its region."""
        if nbytes <= 0:
            raise ConfigError(f"region size must be positive, got {nbytes}")
        region = MemoryRegion(key=next(self._keys),
                              range=AddressRange(start, nbytes), node=node)
        self._regions[region.key] = region
        self.counters.add("registrations")
        return region

    def _check_registered(self, node: str, addr: int, nbytes: int) -> None:
        for region in self._regions.values():
            if region.node == node and region.covers(addr, nbytes):
                return
        raise NetworkError(
            f"buffer [{addr:#x}, +{nbytes}) on {node!r} is not registered")

    # -- posting -----------------------------------------------------------------

    def post(self, wrs: Sequence[WorkRequest]) -> float:
        """Post a chain of work requests with a single doorbell.

        Returns the total simulated time consumed.  The first WR pays
        the doorbell; the rest are linked.  Only signaled WRs produce
        CQEs, and polling is left to the caller (so callers can overlap
        it, as Kona's Poller does).
        """
        if not wrs:
            raise ConfigError("empty work-request chain")
        start = self.fabric.clock.now
        for i, wr in enumerate(wrs):
            self._validate(wr)
            linked = i > 0
            # Inline WQEs skip the local DMA read but are capped in size.
            self.fabric.transfer(
                self.local_node, self.remote_node, wr.nbytes,
                linked=linked, signaled=False)
            if wr.inline:
                # Inline copy happens on the CPU while building the WQE.
                self.fabric.clock.advance(
                    self.fabric.latency.memcpy_per_byte_ns * wr.nbytes)
            if wr.signaled:
                self.cq.push(Completion(wr_id=wr.wr_id, opcode=wr.opcode,
                                        nbytes=wr.nbytes))
            self.counters.add("work_requests")
        self.counters.add("doorbells")
        return self.fabric.clock.now - start

    def post_with_retry(self, wrs: Sequence[WorkRequest],
                        retrier: Retrier) -> float:
        """Post a chain, re-posting the whole batch on network failure.

        Backoff between attempts is drawn from the retrier's seeded RNG
        and charged to the fabric clock, so retried posts are both
        deterministic and visible in latency accounting.  Returns total
        simulated ns (attempts plus backoffs); raises
        :class:`~repro.common.errors.RetryExhausted` when the retry
        budget runs out.
        """
        start = self.fabric.clock.now
        try:
            retrier.call(lambda: self.post(wrs))
        finally:
            retries = retrier.last_outcome.attempts - 1
            if retries > 0:
                self.counters.add("reposted_batches", retries)
        return self.fabric.clock.now - start

    def _validate(self, wr: WorkRequest) -> None:
        if wr.nbytes <= 0:
            raise ConfigError(f"WR of {wr.nbytes} bytes")
        if wr.inline:
            if wr.nbytes > MAX_INLINE:
                raise NetworkError(
                    f"inline WR of {wr.nbytes} bytes exceeds {MAX_INLINE}")
            if wr.opcode is OpCode.RDMA_READ:
                raise NetworkError("RDMA READ cannot be inline")
        else:
            self._check_registered(self.local_node, wr.local_addr, wr.nbytes)
        self._check_registered(self.remote_node, wr.remote_addr, wr.nbytes)

    # -- convenience one-shot verbs -------------------------------------------------

    def read(self, local_addr: int, remote_addr: int, nbytes: int) -> float:
        """One signaled RDMA READ; returns elapsed simulated ns."""
        return self.post([WorkRequest(OpCode.RDMA_READ, local_addr,
                                      remote_addr, nbytes)])

    def write(self, local_addr: int, remote_addr: int, nbytes: int,
              signaled: bool = True) -> float:
        """One RDMA WRITE; returns elapsed simulated ns."""
        return self.post([WorkRequest(OpCode.RDMA_WRITE, local_addr,
                                      remote_addr, nbytes,
                                      signaled=signaled)])
