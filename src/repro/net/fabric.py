"""The RDMA fabric: links nodes and prices transfers.

The fabric is a cost model plus a failure injector.  Costs follow
:class:`repro.common.latency.LatencyModel`; calibration puts a linked
4 KB write at ~3 us, matching the paper's measurement on ConnectX-5 /
100 Gbps RoCE.

Failure injection supports the paper's section 4.5 discussion: a link
can be delayed (slow network) or cut (unreachable node), and the Kona
runtime must degrade to its fallback path instead of wedging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..common.clock import SimClock
from ..common.errors import ConfigError, NetworkError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.stats import Counter


@dataclass(frozen=True)
class TransferReceipt:
    """Outcome of one fabric transfer."""

    src: str
    dst: str
    nbytes: int
    latency_ns: float


class Fabric:
    """A rack-scale RDMA network connecting named nodes."""

    def __init__(self, latency: LatencyModel = DEFAULT_LATENCY,
                 clock: Optional[SimClock] = None) -> None:
        self.latency = latency
        self.clock = clock if clock is not None else SimClock()
        self._nodes: Set[str] = set()
        self._down: Set[str] = set()
        self._extra_delay_ns: Dict[Tuple[str, str], float] = {}
        self.counters = Counter()
        self.bytes_moved = 0

    # -- topology ------------------------------------------------------------

    def add_node(self, name: str) -> None:
        """Register a node on the fabric."""
        if name in self._nodes:
            raise ConfigError(f"node {name!r} already on fabric")
        self._nodes.add(name)

    def has_node(self, name: str) -> bool:
        """Whether ``name`` is attached."""
        return name in self._nodes

    # -- failure injection -----------------------------------------------------

    def fail_node(self, name: str) -> None:
        """Make a node unreachable (disaggregated-memory failure)."""
        self._require(name)
        self._down.add(name)

    def recover_node(self, name: str) -> None:
        """Bring a failed node back."""
        self._down.discard(name)

    def delay_link(self, src: str, dst: str, extra_ns: float) -> None:
        """Add fixed latency to one direction of a link (slow network)."""
        self._require(src)
        self._require(dst)
        if extra_ns < 0:
            raise ConfigError("extra delay must be non-negative")
        self._extra_delay_ns[(src, dst)] = extra_ns

    def is_down(self, name: str) -> bool:
        """Whether the node is currently failed."""
        return name in self._down

    # -- transfers ---------------------------------------------------------------

    def transfer_cost_ns(self, src: str, dst: str, nbytes: int, *,
                         linked: bool = False, signaled: bool = True) -> float:
        """Price a one-sided transfer without performing it."""
        base = self.latency.rdma_transfer_ns(nbytes, linked=linked,
                                             signaled=signaled)
        return base + self._extra_delay_ns.get((src, dst), 0.0)

    def transfer(self, src: str, dst: str, nbytes: int, *,
                 linked: bool = False, signaled: bool = True) -> TransferReceipt:
        """Move ``nbytes`` from ``src`` to ``dst``, advancing the clock.

        Raises :class:`NetworkError` if either endpoint is failed.
        """
        self._require(src)
        self._require(dst)
        if nbytes < 0:
            raise ConfigError(f"cannot transfer {nbytes} bytes")
        for endpoint in (src, dst):
            if endpoint in self._down:
                self.counters.add("failed_transfers")
                raise NetworkError(f"node {endpoint!r} is unreachable")
        latency_ns = self.transfer_cost_ns(src, dst, nbytes, linked=linked,
                                           signaled=signaled)
        self.clock.advance(latency_ns)
        self.counters.add("transfers")
        self.bytes_moved += nbytes
        return TransferReceipt(src=src, dst=dst, nbytes=nbytes,
                               latency_ns=latency_ns)

    def _require(self, name: str) -> None:
        if name not in self._nodes:
            raise ConfigError(f"unknown node {name!r}")
