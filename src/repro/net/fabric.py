"""The RDMA fabric: links nodes and prices transfers.

The fabric is a cost model plus a failure injector.  Costs follow
:class:`repro.common.latency.LatencyModel`; calibration puts a linked
4 KB write at ~3 us, matching the paper's measurement on ConnectX-5 /
100 Gbps RoCE.

Failure injection supports the paper's section 4.5 discussion: a link
can be delayed (slow network), made probabilistically flaky (lossy
switch), partitioned (cut between node groups) or cut entirely
(unreachable node), and the Kona runtime must degrade to its fallback
path instead of wedging.  :class:`FaultSchedule` scripts those
injections at simulated-clock timestamps so chaos campaigns replay
deterministically.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..common.clock import SimClock
from ..common.errors import ConfigError, NetworkError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.stats import Counter


@dataclass(frozen=True)
class TransferReceipt:
    """Outcome of one fabric transfer."""

    src: str
    dst: str
    nbytes: int
    latency_ns: float


@dataclass(order=True)
class FaultEvent:
    """One scheduled fault injection (orderable by firing time)."""

    at_ns: float
    seq: int
    label: str = field(compare=False)
    apply: Callable[[], None] = field(compare=False)


class FaultSchedule:
    """A deterministic script of fault injections on the simulated clock.

    Campaigns register labelled actions with :meth:`at`; the driver
    calls :meth:`fire_due` as simulated time advances, and every event
    whose timestamp has passed runs exactly once, in timestamp order.
    No wall-clock time is consulted anywhere, so the same schedule
    replays identically.
    """

    def __init__(self) -> None:
        self._heap: List[FaultEvent] = []
        self._seq = itertools.count()
        self.fired: List[Tuple[float, str]] = []

    def at(self, at_ns: float, label: str,
           action: Callable[[], None]) -> None:
        """Schedule ``action`` to fire once the clock reaches ``at_ns``."""
        if at_ns < 0:
            raise ConfigError(f"cannot schedule fault at {at_ns} ns")
        heapq.heappush(self._heap, FaultEvent(at_ns=at_ns,
                                              seq=next(self._seq),
                                              label=label, apply=action))

    def fire_due(self, now_ns: float) -> List[str]:
        """Run every event with ``at_ns <= now_ns``; returns their labels."""
        labels: List[str] = []
        while self._heap and self._heap[0].at_ns <= now_ns:
            event = heapq.heappop(self._heap)
            event.apply()
            self.fired.append((event.at_ns, event.label))
            labels.append(event.label)
        return labels

    def next_at(self) -> Optional[float]:
        """Timestamp of the next pending event, or None when drained."""
        return self._heap[0].at_ns if self._heap else None

    @property
    def pending(self) -> int:
        """Events not yet fired."""
        return len(self._heap)


class Fabric:
    """A rack-scale RDMA network connecting named nodes."""

    def __init__(self, latency: LatencyModel = DEFAULT_LATENCY,
                 clock: Optional[SimClock] = None) -> None:
        self.latency = latency
        self.clock = clock if clock is not None else SimClock()
        self._nodes: Set[str] = set()
        self._down: Set[str] = set()
        self._extra_delay_ns: Dict[Tuple[str, str], float] = {}
        self._flaky: Dict[Tuple[str, str], Tuple[float, np.random.Generator]] = {}
        self._jitter: Dict[str, Tuple[float, np.random.Generator]] = {}
        self._cuts: List[Tuple[Set[str], Set[str]]] = []
        self.counters = Counter()
        self.bytes_moved = 0
        #: Optional span tracer (attached by the runtime's recorder).
        self.tracer = None

    # -- fleet telemetry -------------------------------------------------------

    def component_snapshot(self, component: str = "fabric",
                           tenant: str = None):
        """The fabric's telemetry as a fleet component snapshot.

        Identity defaults to ``fabric`` — the same label the fleet's
        cross-component fault chains bill their ``fab`` hop to, so the
        fabric's counters and its share of the causal arrows land on
        one Chrome trace process.
        """
        from ..obs.fleet import ComponentSnapshot
        metrics = {f"fabric.{key}": value for key, value
                   in sorted(self.counters.as_dict().items())}
        kinds = {name: "counter" for name in metrics}
        metrics["fabric.bytes_moved"] = self.bytes_moved
        kinds["fabric.bytes_moved"] = "counter"
        metrics["fabric.nodes"] = len(self._nodes)
        metrics["fabric.nodes_down"] = len(self._down)
        return ComponentSnapshot(component=component, tenant=tenant,
                                 metrics=metrics, kinds=kinds)

    # -- topology ------------------------------------------------------------

    def add_node(self, name: str) -> None:
        """Register a node on the fabric."""
        if name in self._nodes:
            raise ConfigError(f"node {name!r} already on fabric")
        self._nodes.add(name)

    def has_node(self, name: str) -> bool:
        """Whether ``name`` is attached."""
        return name in self._nodes

    # -- failure injection -----------------------------------------------------

    def fail_node(self, name: str) -> None:
        """Make a node unreachable (disaggregated-memory failure)."""
        self._require(name)
        self._down.add(name)

    def recover_node(self, name: str) -> None:
        """Bring a failed node back."""
        self._down.discard(name)

    def delay_link(self, src: str, dst: str, extra_ns: float) -> None:
        """Add fixed latency to one direction of a link (slow network).

        An ``extra_ns`` of zero fully retracts any injected delay, so a
        schedule can restore the link to its calibrated latency.
        """
        self._require(src)
        self._require(dst)
        if extra_ns < 0:
            raise ConfigError("extra delay must be non-negative")
        if extra_ns == 0:
            self._extra_delay_ns.pop((src, dst), None)
        else:
            self._extra_delay_ns[(src, dst)] = extra_ns

    def clear_delay(self, src: str, dst: str) -> None:
        """Remove any injected delay on one direction of a link."""
        self._require(src)
        self._require(dst)
        self._extra_delay_ns.pop((src, dst), None)

    def set_flaky(self, src: str, dst: str, drop_rate: float,
                  seed: int = 0) -> None:
        """Make one link direction drop transfers with ``drop_rate``.

        Drops are drawn from a per-link RNG seeded here, so a campaign
        replays the same loss pattern for the same seed.  A dropped
        transfer still occupies the wire (its latency is charged)
        before raising :class:`NetworkError`.
        """
        self._require(src)
        self._require(dst)
        if not 0.0 <= drop_rate <= 1.0:
            raise ConfigError(f"drop rate {drop_rate} not in [0, 1]")
        if drop_rate == 0.0:
            self._flaky.pop((src, dst), None)
        else:
            self._flaky[(src, dst)] = (drop_rate,
                                       np.random.default_rng(seed))

    def clear_flaky(self, src: str, dst: str) -> None:
        """Make one link direction reliable again."""
        self._flaky.pop((src, dst), None)

    def drops_transfer(self, src: str, dst: str) -> bool:
        """Draw the flaky-link lottery for one attempt.

        Advances the per-link RNG, so each call models one distinct
        attempt on the wire; retry loops therefore see independent
        (but seed-reproducible) draws.  Counters are bumped on a drop.
        """
        flaky = self._flaky.get((src, dst))
        if flaky is None:
            return False
        drop_rate, rng = flaky
        if rng.random() < drop_rate:
            self.counters.add("failed_transfers")
            self.counters.add("dropped_transfers")
            return True
        return False

    def set_node_jitter(self, name: str, mean_extra_ns: float,
                        seed: int = 0) -> None:
        """Add exponentially distributed latency to a slow node.

        Every transfer touching ``name`` pays an extra delay drawn from
        an Exp(``mean_extra_ns``) distribution on a per-node seeded RNG
        (slow-CPU / overloaded-NIC jitter).
        """
        self._require(name)
        if mean_extra_ns < 0:
            raise ConfigError("jitter mean must be non-negative")
        if mean_extra_ns == 0:
            self._jitter.pop(name, None)
        else:
            self._jitter[name] = (mean_extra_ns,
                                  np.random.default_rng(seed))

    def clear_node_jitter(self, name: str) -> None:
        """Remove slow-node jitter."""
        self._jitter.pop(name, None)

    def partition(self, group_a: Iterable[str],
                  group_b: Iterable[str]) -> None:
        """Cut the network between two node groups (both directions)."""
        side_a, side_b = set(group_a), set(group_b)
        for name in side_a | side_b:
            self._require(name)
        if side_a & side_b:
            raise ConfigError(
                f"partition groups overlap: {sorted(side_a & side_b)}")
        self._cuts.append((side_a, side_b))

    def heal_partition(self) -> None:
        """Remove every partition cut."""
        self._cuts.clear()

    def is_partitioned(self, src: str, dst: str) -> bool:
        """Whether any cut separates ``src`` from ``dst``."""
        for side_a, side_b in self._cuts:
            if ((src in side_a and dst in side_b)
                    or (src in side_b and dst in side_a)):
                return True
        return False

    def is_down(self, name: str) -> bool:
        """Whether the node is currently failed."""
        return name in self._down

    def reachable(self, src: str, dst: str) -> bool:
        """Whether a transfer between live endpoints could succeed."""
        return (src not in self._down and dst not in self._down
                and not self.is_partitioned(src, dst))

    # -- transfers ---------------------------------------------------------------

    def transfer_cost_ns(self, src: str, dst: str, nbytes: int, *,
                         linked: bool = False, signaled: bool = True) -> float:
        """Price a one-sided transfer without performing it.

        Deterministic costs only — injected delays are included, but
        per-transfer jitter draws are not (they happen in
        :meth:`transfer` so pricing stays side-effect free).
        """
        base = self.latency.rdma_transfer_ns(nbytes, linked=linked,
                                             signaled=signaled)
        return base + self._extra_delay_ns.get((src, dst), 0.0)

    def replicated_log_write_cost_ns(self, src: str, dsts: List[str],
                                     log_bytes: int) -> float:
        """Price a pipelined CL-log write fanned out to ``dsts``.

        One posting exposes the linked work request plus the NIC
        doorbell; the wire time is partially hidden behind staging the
        next batch (``log_wire_exposure``).  Each destination past the
        first is posted back-to-back — its wire time overlaps, so it
        adds only a posting cost.  The slowest injected link delay
        gates the ack.  With a single destination and no injected
        delay this is exactly the unreplicated flush cost.
        """
        if not dsts:
            return 0.0
        posting = self.latency.rdma_linked_wr_ns + self.latency.rdma_nic_wr_ns
        cost = (posting + self.latency.log_wire_exposure
                * self.latency.rdma_per_byte_ns * log_bytes)
        cost += (len(dsts) - 1) * posting
        cost += max(self._extra_delay_ns.get((src, dst), 0.0)
                    for dst in dsts)
        return cost

    def transfer(self, src: str, dst: str, nbytes: int, *,
                 linked: bool = False, signaled: bool = True) -> TransferReceipt:
        """Move ``nbytes`` from ``src`` to ``dst``, advancing the clock.

        Raises :class:`NetworkError` if either endpoint is failed, the
        pair is partitioned, or a flaky link drops the transfer.
        """
        self._require(src)
        self._require(dst)
        if nbytes < 0:
            raise ConfigError(f"cannot transfer {nbytes} bytes")
        for endpoint in (src, dst):
            if endpoint in self._down:
                self.counters.add("failed_transfers")
                raise NetworkError(f"node {endpoint!r} is unreachable")
        if self.is_partitioned(src, dst):
            self.counters.add("failed_transfers")
            self.counters.add("partitioned_transfers")
            raise NetworkError(
                f"network partition between {src!r} and {dst!r}")
        latency_ns = self.transfer_cost_ns(src, dst, nbytes, linked=linked,
                                           signaled=signaled)
        for endpoint in (src, dst):
            jitter = self._jitter.get(endpoint)
            if jitter is not None:
                mean, rng = jitter
                latency_ns += rng.exponential(mean)
        tracing = self.tracer is not None and self.tracer.enabled
        if self.drops_transfer(src, dst):
            # The attempt occupied the wire before it was lost.
            self.clock.advance(latency_ns)
            if tracing:
                self.tracer.instant("net.transfer_dropped", "rdma",
                                    src=src, dst=dst, nbytes=nbytes)
            raise NetworkError(
                f"flaky link {src!r}->{dst!r} dropped transfer")
        self.clock.advance(latency_ns)
        if tracing:
            self.tracer.emit("net.transfer", latency_ns, "rdma",
                             src=src, dst=dst, nbytes=nbytes)
        self.counters.add("transfers")
        self.bytes_moved += nbytes
        return TransferReceipt(src=src, dst=dst, nbytes=nbytes,
                               latency_ns=latency_ns)

    def _require(self, name: str) -> None:
        if name not in self._nodes:
            raise ConfigError(f"unknown node {name!r}")
