"""A FaRM-style ring-buffer message log for cache-line eviction.

Kona aggregates dirty cache lines into a log and ships the log to the
memory node with large RDMA writes (paper section 4.4, "Evicting dirty
data").  Each log record carries the line's remote destination address
and its 64 bytes of payload; the receiver thread walks the log, scatters
lines to their homes, and acknowledges consumed space back to the
producer.

The ring models the flow-control behaviour that matters: the producer
blocks (or fails fast) when the consumer has not freed space, and
acknowledgments are batched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..common import units
from ..common.errors import ConfigError, NetworkError
from ..common.stats import Counter


#: Bytes per log record: 8-byte destination address + one cache line.
RECORD_BYTES = 8 + units.CACHE_LINE


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One dirty cache line in flight.

    The replication layer stamps the optional fields: ``vfmem_addr``
    keys the line in the per-node content stores (−1 = legacy record,
    content plane off), ``version`` orders redeliveries
    (last-writer-wins), ``epoch`` fences writes issued under a deposed
    primary, and ``payload`` is the modeled 64-bit line content.
    """

    remote_addr: int
    vfmem_addr: int = -1
    version: int = 0
    epoch: int = 0
    payload: int = 0


class RingBufferLog:
    """Single-producer single-consumer byte ring with record framing."""

    def __init__(self, capacity_records: int = 8192) -> None:
        if capacity_records <= 0:
            raise ConfigError("ring capacity must be positive")
        self.capacity_records = capacity_records
        self._records: List[LogRecord] = []
        self._head = 0            # producer cursor (total records appended)
        self._tail = 0            # consumer cursor (total records consumed)
        self._acked = 0           # records acknowledged back to the producer
        self.counters = Counter()

    # -- producer side ------------------------------------------------------------

    @property
    def free_records(self) -> int:
        """Records the producer may append before blocking."""
        return self.capacity_records - (self._head - self._acked)

    def append(self, records: List[LogRecord]) -> None:
        """Append dirty-line records; raises if the ring is full."""
        if len(records) > self.free_records:
            self.counters.add("producer_stalls")
            raise NetworkError(
                f"ring full: need {len(records)}, free {self.free_records}")
        self._records.extend(records)
        self._head += len(records)
        self.counters.add("records_appended", len(records))

    @property
    def bytes_outstanding(self) -> int:
        """Bytes appended but not yet consumed (what an RDMA write ships)."""
        return (self._head - self._tail) * RECORD_BYTES

    # -- consumer side --------------------------------------------------------------

    def consume(self, max_records: Optional[int] = None) -> List[LogRecord]:
        """Receiver thread: take records in order for scattering."""
        available = self._head - self._tail
        take = available if max_records is None else min(available, max_records)
        out = self._records[:take]
        del self._records[:take]
        self._tail += take
        self.counters.add("records_consumed", take)
        return out

    def acknowledge(self) -> int:
        """Receiver acks all consumed space; returns records freed."""
        freed = self._tail - self._acked
        self._acked = self._tail
        if freed:
            self.counters.add("acks")
        return freed

    @property
    def unacked_records(self) -> int:
        """Consumed but not yet acknowledged records."""
        return self._tail - self._acked

    def __len__(self) -> int:
        return self._head - self._tail


def pack_dirty_lines(line_addrs: List[int]) -> Tuple[List[LogRecord], int]:
    """Build log records for a batch of dirty lines.

    Returns the records and the total log bytes they occupy on the wire.
    """
    records = [LogRecord(remote_addr=a) for a in line_addrs]
    return records, len(records) * RECORD_BYTES
