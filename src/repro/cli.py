"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro table2
    python -m repro fig7 [--region-mb 16]
    python -m repro fig8 | fig8d | fig9 | fig10
    python -m repro fig11a | fig11b | fig11c
    python -m repro sections
    python -m repro chaos [--seed 0] [--ops 30000]
                          [--campaign node-failure|memnode-failover]
                          [--trace-out FILE] [--fleet-out FILE]
                          [--tenant NAME]
    python -m repro dashboard [--from-artifact FLEET.json] [--html FILE]
                              [--fleet-out FILE] [--trace-out FILE]
                              [--tenant NAME] [--seed 0] [--ops 40000]
                              [--check-overhead [--quick] [--output FILE]]
    python -m repro sweep [--processes N] [--ops 40000]
    python -m repro bench [--suite kcachesim|runtime] [--quick]
                          [--min-speedup 1.0] [--output FILE]
                          [--history FILE|none]
    python -m repro trace [--out trace.json] [--prom FILE] [--jsonl FILE]
    python -m repro trace-gen --out DIR [--accesses N] [--chunk N]
                              [--hot-lines N] [--cold-fraction F]
                              [--region-mb MB] [--write-fraction F]
    python -m repro trace-convert --input SRC --out DST
                                  [--to columnar|npz]
    python -m repro trace-replay --input DIR [--chunk N] [--shards N]
                                 [--engine batched|coalesced|scalar]
                                 [--processes N] [--rss-ceiling-mb MB]
                                 [--fleet-out FILE] [--tenant NAME]
    python -m repro faults [--seed 0] [--ops 20000] [--top 10]
                           [--json FILE] [--trace-out FILE]
                           [--check-overhead [--quick] [--output FILE]]
    python -m repro profile [--top 10] [--window-us 100]
    python -m repro perfdiff [--run-a A.json --run-b B.json]
                             [--against BENCH_runtime.json --tolerance 0.5]
                             [--report FILE]
    python -m repro slo [--seed 0] [--trace-ops 8000]
    python -m repro all

Each command prints the regenerated rows/series next to the paper's
reference values.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, List

from . import units
from .analysis import paper, render_comparison, render_series, render_table
from .experiments import (
    run_chaos,
    run_failover,
    run_fig7,
    run_fig8_amat,
    run_fig8d_blocksize,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig11c_breakdown,
    run_sec21_motivation,
    run_sec61_baseline_parity,
    run_sec62_simulation_overhead,
    run_headline,
    run_sec63_tracker_overhead,
    run_table2,
)
from .experiments.bench import (
    BENCH_FILENAME,
    HISTORY_FILENAME,
    RUNTIME_BENCH_FILENAME,
    append_history,
    check_speedup,
    load_history,
    run_bench,
    run_runtime_bench,
    write_bench,
)
from .experiments.control import (
    STALL_CATEGORIES,
    run_control,
)
from .experiments.fig8 import SYSTEMS, best_block
from .experiments.flight import instant_summary, run_flight, span_summary
from .experiments.sweep import run_sweep, sweep_grid
from .obs import (
    bench_regressions,
    critical_path,
    diff_bench,
    diff_runs,
    load_artifact,
    profile,
    run_artifact,
    stall_windows,
    top_stalls,
    validate_chrome_trace,
)


def cmd_table2(args: argparse.Namespace) -> None:
    """Table 2: dirty data amplification."""
    result = run_table2(windows=args.windows)
    print(render_table(
        ["workload", "4KB", "2MB", "64B",
         "paper 4KB", "paper 2MB", "paper 64B"],
        result.rows(), title="Table 2 (measured vs paper)"))


def cmd_fig7(args: argparse.Namespace) -> None:
    """Figure 7: Kona vs Kona-VM microbenchmark."""
    result = run_fig7(region_bytes=args.region_mb * units.MB)
    rows = [(s, t, round(sec, 4)) for s, t, sec in result.rows()]
    print(render_table(["system", "threads", "time (s)"], rows,
                       title="Figure 7"))
    print()
    print(render_table(
        ["threads", "kona vs kona-vm", "paper"],
        [(t, round(result.speedup(t), 2),
          "6.6X" if t == 1 else "4-5X") for t in (1, 2, 4)]))
    print(f"\nNoEvict speedup: {result.noevict_speedup():.1f}X "
          f"(paper: 3-5X); NoWP slowdown vs Kona: "
          f"{result.nowp_slowdown():.1f}X (paper: 1.2-2.9X)")


def cmd_fig8(args: argparse.Namespace) -> None:
    """Figure 8(a-c): AMAT vs cache size."""
    result = run_fig8_amat(num_ops=args.ops)
    for workload in result.amat_ns:
        rows = [(pct, *(round(v, 1) for v in vals))
                for pct, *vals in result.rows(workload)]
        print(render_table(["cache %", *SYSTEMS], rows,
                           title=f"Figure 8 — {workload} (AMAT ns)"))
        print(f"  @25%: vs LegoOS {result.improvement_at(workload, 0.25, 'legoos'):.1f}X, "
              f"vs Infiniswap {result.improvement_at(workload, 0.25, 'infiniswap'):.1f}X "
              f"(paper: 1.7X / 5X)\n")


def cmd_fig8d(args: argparse.Namespace) -> None:
    """Figure 8(d): fetch block-size sweep."""
    sweep = run_fig8d_blocksize(num_ops=args.ops)
    blocks = sorted(next(iter(sweep.values())))
    rows = [(b, *(round(sweep[f][b], 1) for f in sorted(sweep)))
            for b in blocks]
    print(render_table(
        ["block B", *(f"cache {int(f*100)}%" for f in sorted(sweep))],
        rows, title="Figure 8d — AMAT (ns) by fetch block size"))
    for f in sorted(sweep):
        print(f"  best at {int(f*100)}% cache: {best_block(sweep[f])} B")


def cmd_fig9(args: argparse.Namespace) -> None:
    """Figure 9: per-window amplification reduction."""
    result = run_fig9()
    for workload, series in result.series.items():
        print(render_series([(w, round(r, 2)) for w, r in series],
                            "window", "4KB/CL ratio",
                            title=f"Figure 9 — {workload}"))
        print()
    lo, hi = result.band("redis-rand")
    print(f"redis-rand steady band: {lo:.1f}-{hi:.1f}X (paper: 2-10X); "
          f"redis-seq mean: {result.mean('redis-seq'):.1f}X (paper: ~2X)")


def cmd_fig10(args: argparse.Namespace) -> None:
    """Figure 10: tracking speedup vs write-protection."""
    result = run_fig10()
    print(render_table(
        ["workload", "speedup %"],
        [(n, round(p, 1)) for n, p in result.rows()],
        title="Figure 10 (paper: 1% to 35%)"))


def cmd_fig11a(args: argparse.Namespace) -> None:
    """Figure 11(a): goodput, contiguous dirty lines."""
    _fig11(pattern="contiguous")


def cmd_fig11b(args: argparse.Namespace) -> None:
    """Figure 11(b): goodput, alternate dirty lines."""
    _fig11(pattern="alternate")


def _fig11(pattern: str) -> None:
    result = run_fig11(pattern=pattern)
    strategies = sorted(result.relative_goodput)
    rows = [(n, *(round(v, 2) for v in vals)) for n, *vals in result.rows()]
    print(render_table(["dirty lines", *strategies], rows,
                       title=f"Figure 11 ({pattern}): goodput vs Kona-VM"))


def cmd_fig11c(args: argparse.Namespace) -> None:
    """Figure 11(c): CL-log time breakdown."""
    breakdown = run_fig11c_breakdown()
    buckets = ("bitmap", "copy", "rdma_write", "ack_wait")
    rows = [(n, *(f"{s.get(b, 0.0):.0%}" for b in buckets),
             round(s["total_ms"], 1)) for n, s in sorted(breakdown.items())]
    print(render_table(["dirty lines", *buckets, "total ms"], rows,
                       title="Figure 11c"))


def cmd_sections(args: argparse.Namespace) -> None:
    """All in-text experiments (2.1, 6.1, 6.2, 6.3)."""
    print(render_comparison(
        {k: round(v, 2) for k, v in run_sec21_motivation().items()},
        {"throughput_drop": "> 0.6", "fetch_us": "40", "rdma_4k_us": "3",
         "evict_us": "> 32"}, title="Section 2.1"))
    print()
    print(render_comparison(
        {k: round(v, 3) for k, v in run_sec61_baseline_parity().items()},
        {"speedup_fraction": "up to 0.60"}, title="Section 6.1"))
    print()
    slowdown = run_sec62_simulation_overhead()
    print(f"Section 6.2: KCacheSim slowdown {slowdown:.0f}X (paper: 43X)")
    print()
    print(render_comparison(
        {k: round(v, 3) for k, v in run_sec63_tracker_overhead().items()},
        {"loss": "~0.60", "diff_share": "~0.95", "ptrace_share": "~0.05"},
        title="Section 6.3"))


def cmd_chaos(args: argparse.Namespace) -> None:
    """Section 4.5 chaos campaigns: node failure or memnode failover."""
    if args.campaign == "memnode-failover":
        _chaos_failover(args)
        return
    result = run_chaos(seed=args.seed, ops=args.ops)
    print(render_table(
        ["t (us)", "event"],
        [(round(t / 1e3, 1), label) for t, label in result.timeline],
        title=f"Chaos campaign timeline (seed {result.seed})"))
    print()
    print(render_table(["metric", "value"], result.rows(),
                       title="Campaign result"))
    health = result.telemetry.data["health"]
    print()
    print(render_table(
        ["counter", "value"], sorted(health.items()),
        title="Health telemetry"))
    verdict = "held" if result.passed else "VIOLATED"
    print(f"\nRecovery invariants {verdict}.")
    if not result.passed:
        raise SystemExit(1)


def _chaos_failover(args: argparse.Namespace) -> None:
    """The replicated memnode-failover durability campaign."""
    fleet_out = getattr(args, "fleet_out", None)
    failover = run_failover(seed=args.seed, ops=args.ops,
                            tracing=args.trace_out is not None,
                            capture=fleet_out is not None,
                            fleet=fleet_out is not None,
                            tenant=getattr(args, "tenant", None))
    result = failover.result
    print(render_table(
        ["t (us)", "event"],
        [(round(t / 1e3, 1), label) for t, label in result.timeline],
        title=f"Failover campaign timeline (seed {result.seed})"))
    print()
    print(render_table(["metric", "value"], failover.rows(),
                       title="Durability proof"))
    print()
    print(render_table(
        ["rule", "objective", "good fraction", "verdict"],
        failover.verdict_rows(), title="Failover SLOs"))
    if args.trace_out:
        path = failover.recorder.write_chrome_trace(args.trace_out)
        print(f"\nchrome trace: {path}")
    if fleet_out:
        print(f"\nfleet artifact: {failover.fleet.save(fleet_out)} "
              f"({len(failover.fleet.members)} components) — render with "
              f"`python -m repro dashboard --from-artifact {fleet_out}`")
    verdict = ("held — final image bit-identical to the no-fault oracle"
               if failover.passed else "VIOLATED")
    print(f"\nDurability invariants and SLOs {verdict}.")
    if not failover.passed:
        raise SystemExit(1)


def cmd_sweep(args: argparse.Namespace) -> None:
    """Parallel AMAT sweep over every workload and cache size."""
    fractions = (0.125, 0.25, 0.375, 0.5, 0.75, 1.0)
    workloads = ("redis-rand", "linear-regression", "graph-coloring")
    points = sweep_grid(workloads, fractions, num_ops=args.ops)
    result = run_sweep(points, processes=args.processes)
    systems = ("kona", "legoos", "infiniswap")
    for workload in sorted({p.workload for p in result.points}):
        rows = [(int(p.cache_fraction * 100),
                 *(round(a[s], 1) for s in systems))
                for p, a in zip(result.points, result.amat_ns)
                if p.workload == workload]
        print(render_table(["cache %", *systems], rows,
                           title=f"Sweep — {workload} (AMAT ns)"))
        print()
    print(render_table(["counter", "total"], result.totals.items(),
                       title="Sweep traffic (all workers)"))


def cmd_bench(args: argparse.Namespace) -> None:
    """Benchmark the scalar vs vectorized/batched engines."""
    if args.suite == "runtime":
        payload = run_runtime_bench(quick=args.quick)
        fast_label = "batched"
    else:
        payload = run_bench(quick=args.quick)
        fast_label = "vectorized"
    for case in payload["cases"]:
        print(f"{case['workload']:>18s}  {case['num_accesses']:>9,} accesses  "
              f"scalar {case['scalar']['seconds']:.3f}s  "
              f"{fast_label} {case[fast_label]['seconds']:.3f}s  "
              f"speedup {case['speedup']:.1f}x  "
              f"counters {'ok' if case['counters_match'] else 'MISMATCH'}")
    streaming = payload.get("streaming")
    if streaming:
        print(f"{streaming['workload']:>18s}  "
              f"{streaming['num_accesses']:>9,} accesses  "
              f"streamed {streaming['streamed_seconds']:.3f}s  "
              f"monolithic {streaming['monolithic_seconds']:.3f}s  "
              f"chunk {streaming['chunk']:,}  fingerprint "
              f"{'ok' if streaming['fingerprint_matches_monolithic'] else 'MISMATCH'}")
    output = args.output
    if output is None:
        output = (RUNTIME_BENCH_FILENAME if args.suite == "runtime"
                  else BENCH_FILENAME)
    path = write_bench(payload, output)
    print(f"\ncanonical speedup: {payload['canonical_speedup']:.1f}x "
          f"({payload['canonical_workload']}); report: {path}")
    if args.history != "none":
        print(f"history: {append_history(payload, args.history)}")
    if args.min_speedup is not None:
        failures = check_speedup(payload, args.min_speedup)
        if failures:
            for msg in failures:
                print(f"FAIL: {msg}")
            raise SystemExit(1)
        print(f"speedup gate passed (>= {args.min_speedup}x)")


def cmd_trace_convert(args: argparse.Namespace) -> None:
    """Convert traces between .npz and columnar (memory-mapped) form."""
    from .workloads.trace import (load_trace, open_columnar, save_columnar,
                                  save_trace)
    src, dst = args.input, args.out
    if src is None or dst is None:
        raise SystemExit("trace-convert needs --input SRC and --out DST")
    if args.to == "columnar":
        trace = load_trace(src)
        save_columnar(trace, dst)
        columnar = open_columnar(dst)
        print(f"columnar trace: {dst} ({columnar.length:,} accesses, "
              f"{columnar.memory_bytes:,} region bytes, "
              f"columns {', '.join(read_meta_columns(dst))})")
    else:
        columnar = open_columnar(src)
        save_trace(columnar.materialize(), dst)
        print(f"npz trace: {dst} ({columnar.length:,} accesses)")


def read_meta_columns(path: str) -> List[str]:
    """Column names of a columnar trace (for display)."""
    from .workloads.trace import read_columnar_meta
    return list(read_columnar_meta(path)["columns"])


def cmd_trace_gen(args: argparse.Namespace) -> None:
    """Generate a hot-mix trace straight to columnar storage.

    Chunked generation with per-chunk seeded RNG streams the trace to
    disk, so 100M+-access traces never occupy RAM.
    """
    from .workloads.trace import generate_hot_mix_stream
    columnar = generate_hot_mix_stream(
        args.out, args.accesses, hot_lines=args.hot_lines,
        cold_fraction=args.cold_fraction,
        region_bytes=args.region_mb * units.MB,
        write_fraction=args.write_fraction, seed=args.seed,
        chunk_size=args.chunk)
    total = columnar.addrs.nbytes + columnar.writes.nbytes
    print(f"columnar trace: {args.out} ({columnar.length:,} accesses, "
          f"{total / units.MB:.0f} MB on disk, region "
          f"{args.region_mb} MB)")


def cmd_trace_replay(args: argparse.Namespace) -> None:
    """Replay a columnar trace: streamed chunks, optional sharding.

    ``--shards 1`` (default) streams the memory-mapped trace through
    one runtime in fixed chunks; ``--shards N`` partitions by page
    modulo across N runtimes (``--processes`` workers).  With
    ``--rss-ceiling-mb`` the command exits nonzero if peak RSS exceeds
    the ceiling — the CI guard that streaming replay stays O(chunk)
    in memory no matter the trace length.
    """
    import resource

    from .workloads.trace import open_columnar

    if args.input is None:
        raise SystemExit("trace-replay needs --input TRACE_DIR")
    chunk = args.chunk
    if chunk % 256:
        raise SystemExit(f"--chunk {chunk} must be a multiple of the "
                         f"256-access maintenance cadence")
    columnar = open_columnar(args.input)
    summary: Dict[str, Any] = {
        "trace": args.input,
        "accesses": columnar.length,
        "chunk": chunk,
        "shards": args.shards,
        "engine": args.engine,
    }
    fleet_out = getattr(args, "fleet_out", None)
    import time as _time
    t0 = _time.perf_counter()
    if args.shards <= 1:
        from .kona.config import KonaConfig
        from .kona.runtime import KonaRuntime
        cfg = KonaConfig(fmem_capacity=args.fmem_mb * units.MB,
                         vfmem_capacity=args.vfmem_mb * units.MB,
                         slab_bytes=16 * units.MB)
        rt = KonaRuntime(cfg)
        region = rt.mmap(columnar.memory_bytes)
        report = rt.run_trace_stream(columnar.iter_chunks(chunk),
                                     engine=args.engine,
                                     base=region.start)
        summary.update({
            "elapsed_model_ns": report.elapsed_ns,
            "cache_hits": rt.counters["cache_hits"],
            "cache_misses": rt.counters["cache_misses"],
            "remote_fetches": rt.agent.counters["remote_fetches"],
            "pages_evicted": rt.eviction.stats.pages_evicted,
        })
        if fleet_out:
            from .obs.fleet import FleetRecorder
            fleet = FleetRecorder(name="trace-replay")
            for member in rt.fleet_members(
                    tenant=getattr(args, "tenant", None)):
                fleet.add(member)
            summary["fleet_artifact"] = fleet.save(fleet_out)
    else:
        from .experiments.shard import make_shards, run_sharded
        result = run_sharded(
            make_shards(args.input, args.shards, chunk_size=chunk,
                        engine=args.engine,
                        fmem_mb=args.fmem_mb, vfmem_mb=args.vfmem_mb,
                        fleet=fleet_out is not None,
                        tenant=getattr(args, "tenant", None)),
            processes=args.processes)
        if fleet_out:
            summary["fleet_artifact"] = \
                result.fleet(name="trace-replay").save(fleet_out)
        summary.update({
            "elapsed_model_ns": result.elapsed_ns,
            "cache_hits": result.totals["cache_hits"],
            "cache_misses": result.totals["cache_misses"],
            "remote_fetches": result.totals["remote_fetches"],
            "pages_evicted": result.totals["pages_evicted"],
            "per_shard_accesses": [o.accesses for o in result.outcomes],
        })
    summary["wall_seconds"] = round(_time.perf_counter() - t0, 3)
    # ru_maxrss is KB on Linux; the ceiling check is the whole point of
    # streaming (100M accesses must not mean 100M-entry arrays in RAM).
    peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    summary["peak_rss_mb"] = round(peak_mb, 1)
    print(json.dumps(summary, indent=2))
    if args.rss_ceiling_mb is not None and peak_mb > args.rss_ceiling_mb:
        print(f"FAIL: peak RSS {peak_mb:.1f} MB exceeds ceiling "
              f"{args.rss_ceiling_mb} MB", file=sys.stderr)
        raise SystemExit(1)


def cmd_trace(args: argparse.Namespace) -> None:
    """Flight recorder: traced chaos campaign -> Chrome trace JSON."""
    result, recorder = run_flight(seed=args.seed, ops=args.trace_ops)
    payload = recorder.chrome_trace()
    errors = validate_chrome_trace(payload)
    if errors:
        for msg in errors[:10]:
            print(f"INVALID: {msg}", file=sys.stderr)
        raise SystemExit(1)
    path = recorder.write_chrome_trace(args.out)
    print(f"chrome trace: {path} ({len(payload['traceEvents'])} events, "
          f"{recorder.tracer.dropped} dropped) — open in Perfetto "
          f"(ui.perfetto.dev) or chrome://tracing")
    if args.prom:
        print(f"prometheus dump: {recorder.write_prometheus(args.prom)}")
    if args.jsonl:
        print(f"jsonl event log: {recorder.write_jsonl(args.jsonl)}")
    print()
    print(render_table(
        ["span", "count", "total us"], span_summary(recorder)[:12],
        title="Busiest spans"))
    print()
    print(render_table(["category", "instants"], instant_summary(recorder),
                       title="Instant events"))
    stall = recorder.registry.get("kona_access_stall_ns")
    if stall is not None and stall.count:
        print(f"\naccess stall ns: p50 {stall.p50:.0f}  "
              f"p95 {stall.p95:.0f}  p99 {stall.p99:.0f}  "
              f"({stall.count} misses)")
    health = result.telemetry.data["health"]
    print(f"MTTR: {health['mttr_ns'] / 1e3:.1f} us over "
          f"{health['degradations']} degradation(s)")


def _faults_overhead(args: argparse.Namespace) -> None:
    """The ``repro faults --check-overhead`` gate half."""
    from .experiments.bench import RUNTIME_CANONICAL_CASE, RuntimeBenchCase
    from .experiments.faults import (CAUSAL_BENCH_FILENAME,
                                     check_capture_overhead,
                                     run_causal_bench, write_causal_bench)
    case = (RuntimeBenchCase("hot-mix", 150_000) if args.quick
            else RUNTIME_CANONICAL_CASE)
    payload = run_causal_bench(case, runs=2 if args.quick else 3)
    result = payload["case"]
    print(f"{result['workload']:>12s}  {result['num_accesses']:>9,} accesses  "
          f"capture-off {result['off_seconds']:.3f}s  "
          f"capture-on {result['on_seconds']:.3f}s  "
          f"overhead {result['overhead']:.3f}x  "
          f"({result['fault_records']:,} fault records, fingerprint "
          f"{'ok' if result['fingerprint_matches'] else 'MISMATCH'})")
    path = write_causal_bench(payload, args.output or CAUSAL_BENCH_FILENAME)
    print(f"report: {path}")
    failures = check_capture_overhead(payload)
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        raise SystemExit(1)
    print(f"capture overhead gate passed "
          f"(<= {result['max_overhead']:.2f}x, bit-identical state)")


def cmd_faults(args: argparse.Namespace) -> None:
    """Causal fault attribution: hop breakdowns, hot maps, tail windows."""
    if args.check_overhead:
        _faults_overhead(args)
        return
    from .experiments.faults import attribution_report, run_fault_campaign
    from .obs.export import fault_chain_trace

    failover = run_fault_campaign(seed=args.seed, ops=args.ops)
    log = failover.fault_log
    report = attribution_report(log, top=args.top)
    summary = report["summary"]
    degraded = (summary["health"]["degraded"]
                + summary["health"]["recovering"])
    print(render_table(
        ["metric", "value"],
        [("faults", report["faults"]),
         ("remote faults", summary["remote_fetches"]),
         ("fmem-hit faults", summary["fmem_hits"]),
         ("degraded-window faults", degraded),
         ("fabric-down faults", summary["fabric_down_faults"]),
         ("replica-read faults", summary["replica_faults"]),
         ("dominant hop", report["dominant_hop"]),
         *((f"stall {q}", f"{v:,} ns")
           for q, v in report["quantiles_ns"].items())],
        title=f"Fault attribution (seed {args.seed}, {args.ops} ops)"))
    print()
    print(render_table(
        ["hop", "total stall ns", "dominated in degraded windows"],
        [(hop, f"{report['hop_totals_ns'][hop]:,}",
          report["degraded_hop_counts"].get(hop, 0))
         for hop in ("dir", "fab", "mem", "repl")],
        title="Per-hop stall budget"))
    print()
    print(render_table(
        ["seq", "page", "node", "health", "total ns",
         "dir", "fab", "mem", "repl"],
        [(f["seq"], f["page"], f["node"] or "-", f["health"],
          f["total_ns"], f["hops_ns"]["dir"], f["hops_ns"]["fab"],
          f["hops_ns"]["mem"], f["hops_ns"]["repl"])
         for f in report["top_faults"]],
        title=f"Top {args.top} slowest faults (hop breakdown)"))
    print()
    print(render_table(
        ["page", "faults"],
        [(p["page"], p["faults"]) for p in report["hot_pages"]],
        title="Hot pages by fault count"))
    print()
    print(render_table(
        ["node", "fetches", "stall ns"],
        [(row["node"], row["fetches"], f"{row['stall_ns']:,}")
         for row in report["nodes"]],
        title="Per-node hot map"))
    if report["tail_anomalies"]:
        print()
        print(render_table(
            ["window", "seq range", "max ns", "score", "dominant hop",
             "degraded"],
            [(a["window"], f"{a['start_seq']}-{a['end_seq']}",
              round(a["max_ns"], 1), round(a["score"], 1),
              a["dominant_hop"], a["degraded_faults"])
             for a in report["tail_anomalies"]],
            title="Tail-anomaly windows (MAD outliers)"))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=False)
            fh.write("\n")
        print(f"\nattribution report: {args.json}")
    if args.trace_out:
        payload = fault_chain_trace(log, top=args.top)
        errors = validate_chrome_trace(payload)
        if errors:
            for msg in errors[:10]:
                print(f"INVALID: {msg}", file=sys.stderr)
            raise SystemExit(1)
        with open(args.trace_out, "w") as fh:
            json.dump(payload, fh)
            fh.write("\n")
        print(f"fault-chain chrome trace: {args.trace_out} "
              f"({len(payload['traceEvents'])} events) — open in Perfetto")
    degraded_doms = report["degraded_hop_counts"]
    outage_hops = (degraded_doms.get("fab", 0)
                   + degraded_doms.get("repl", 0))
    if degraded and not outage_hops:
        print("\nFAIL: outage-window faults exist but none are dominated "
              "by the fabric or replication hops — attribution is blind "
              "to the failover")
        raise SystemExit(1)


def cmd_profile(args: argparse.Namespace) -> None:
    """Trace profiler: self time, critical path, stall attribution."""
    _, recorder = run_flight(seed=args.seed, ops=args.trace_ops)
    report = profile(recorder.tracer.events)
    span_rows = [(s.key, s.count, round(s.total_ns / 1e3, 1),
                  round(s.self_ns / 1e3, 1),
                  f"{s.self_ns / report.total_ns:.1%}")
                 for s in report.top_spans(args.top)]
    print(render_table(
        ["span", "count", "total us", "self us", "self %"], span_rows,
        title="Self-time profile (heaviest spans)"))
    print()
    print(render_table(
        ["category", "count", "self us"],
        [(s.key, s.count, round(s.self_ns / 1e3, 1))
         for s in report.top_categories(args.top)],
        title="Self time by category"))
    print()
    path_rows = [("  " * depth + name, cat, round(start / 1e3, 1),
                  round(dur / 1e3, 1), round(self_ns / 1e3, 1))
                 for depth, name, cat, start, dur, self_ns
                 in critical_path(report.roots)]
    print(render_table(["span", "cat", "start us", "dur us", "self us"],
                       path_rows, title="Critical path (longest chain)"))
    print()
    windows = stall_windows(report.roots, args.window_us * 1e3,
                            STALL_CATEGORIES)
    stall_rows = [(round(end_ns / 1e3), ", ".join(
        f"{cat} {ns / 1e3:.1f}us" for cat, ns in ranked))
        for end_ns, ranked in top_stalls(windows, 3)]
    print(render_table(["window end (us)", "top stall categories"],
                       stall_rows,
                       title=f"Stall attribution per {args.window_us:g} us "
                             f"window"))
    print(f"\nself-time coverage: {report.coverage:.4f} "
          f"({report.self_total_ns / 1e3:.1f} of "
          f"{report.total_ns / 1e3:.1f} us attributed)")


def _campaign_artifact(seed: int, ops: int) -> Dict[str, Any]:
    """One traced chaos campaign frozen into a run artifact."""
    _, recorder = run_flight(seed=seed, ops=ops)
    report = profile(recorder.tracer.events)
    return run_artifact(recorder, profile=report,
                        meta={"seed": seed, "ops": ops})


def _perfdiff_bench(args: argparse.Namespace) -> None:
    """The bench-baseline gate half of ``repro perfdiff``."""
    with open(args.against) as fh:
        baseline = json.load(fh)
    name = baseline.get("benchmark")
    records = load_history(args.history, benchmark=name) \
        if args.history != "none" else []
    if records:
        current = records[-1]
        source = f"latest of {len(records)} history record(s)"
    else:
        suite_runner = (run_runtime_bench
                        if name == "kona-runtime-engine-bench" else run_bench)
        print(f"no history for {name!r}; measuring a quick run ...")
        current = suite_runner(quick=True)
        source = "fresh quick run"
    deltas = diff_bench(baseline, current, tolerance=args.tolerance)
    print(render_table(
        ["workload", "baseline x", "current x", "floor x", "verdict"],
        [d.row() for d in deltas],
        title=f"Perf gate vs {args.against} ({source})"))
    failures = bench_regressions(deltas)
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        raise SystemExit(1)
    print(f"perf gate passed (tolerance {args.tolerance:.0%} of baseline)")


def cmd_perfdiff(args: argparse.Namespace) -> None:
    """Run-to-run diff: counters, histograms, self time; perf gates."""
    if args.against:
        _perfdiff_bench(args)
        return
    if args.run_a and args.run_b:
        before, after = load_artifact(args.run_a), load_artifact(args.run_b)
        labels = (args.run_a, args.run_b)
    else:
        print(f"diffing two identical campaigns (seed {args.seed}, "
              f"{args.trace_ops} ops) ...")
        before = _campaign_artifact(args.seed, args.trace_ops)
        after = _campaign_artifact(args.seed, args.trace_ops)
        labels = ("run A", "run B")
    report = diff_runs(before, after, rel_tol=args.rel_tol)
    if report.significant:
        print(render_table(
            ["kind", "name", "before", "after", "delta", "rel"],
            [e.row() for e in report.significant],
            title=f"Significant deltas: {labels[0]} -> {labels[1]}"))
    for key in report.missing:
        print(f"missing: {key} (present in only one run)")
    print(f"\n{len(report.significant)} significant, {len(report.noise)} "
          f"within noise (rel tol {report.rel_tol:.1%}); "
          f"{'clean' if report.clean else 'NOT clean'}")
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"diff report: {args.report}")
    if not report.clean:
        raise SystemExit(1)


def cmd_slo(args: argparse.Namespace) -> None:
    """SLO burn-rate alerts over the chaos campaign (control tower)."""
    report = run_control(seed=args.seed, ops=args.trace_ops)
    print(render_table(
        ["t (us)", "state", "alerts at transition"],
        [(round(ts / 1e3, 1), state,
          "; ".join(ctx.get("alerts", [])) or "-")
         for ts, state, ctx in report.annotated_transitions],
        title=f"Health transitions (seed {args.seed})"))
    print()
    print(render_table(
        ["t (us)", "rule", "burn", "value"],
        [(round(a.at_ns / 1e3, 1), a.rule,
          "inf" if a.burn_rate == float("inf") else round(a.burn_rate, 1),
          round(a.value, 1)) for a in report.alerts],
        title="Alert timeline"))
    print()
    print(render_table(
        ["rule", "objective", "good fraction", "verdict"],
        report.verdict_rows(), title="SLO compliance"))
    degraded = report.degraded_alerts()
    if degraded:
        print(f"\nDEGRADED transition explained by: {degraded[0]}")
    else:
        print("\nFAIL: no burn-rate alert attached to a DEGRADED "
              "transition — the control tower was blind to the outage")
        raise SystemExit(1)
    if not report.result.passed:
        print("FAIL: recovery invariants violated")
        raise SystemExit(1)


def _dashboard_overhead(args: argparse.Namespace) -> None:
    """The ``repro dashboard --check-overhead`` gate half."""
    from .experiments.bench import RUNTIME_CANONICAL_CASE, RuntimeBenchCase
    from .experiments.fleet import (OBS_BENCH_FILENAME, check_fleet_overhead,
                                    run_obs_bench, write_obs_bench)
    case = (RuntimeBenchCase("hot-mix", 300_000) if args.quick
            else RUNTIME_CANONICAL_CASE)
    payload = run_obs_bench(case, runs=3)
    result = payload["case"]
    print(f"{result['workload']:>12s}  {result['num_accesses']:>9,} accesses  "
          f"fleet-off {result['off_seconds']:.3f}s  "
          f"fleet-on {result['on_seconds']:.3f}s  "
          f"overhead {result['overhead']:.3f}x  "
          f"({result['fleet_components']} components, "
          f"{result['fault_records']:,} fault records, fingerprint "
          f"{'ok' if result['fingerprint_matches'] else 'MISMATCH'})")
    path = write_obs_bench(payload, args.output or OBS_BENCH_FILENAME)
    print(f"report: {path}")
    failures = check_fleet_overhead(payload)
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        raise SystemExit(1)
    print(f"fleet observability overhead gate passed "
          f"(<= {result['max_overhead']:.2f}x, bit-identical state)")


def cmd_dashboard(args: argparse.Namespace) -> None:
    """Cluster dashboard: fleet artifact -> terminal summary + HTML."""
    if args.check_overhead:
        _dashboard_overhead(args)
        return
    from .obs.dashboard import dashboard_text, write_dashboard
    from .obs.fleet import FleetRecorder
    if args.from_artifact:
        fleet = FleetRecorder.load(args.from_artifact)
    else:
        print(f"no --from-artifact: capturing a memnode-failover campaign "
              f"(seed {args.seed}, {args.ops} ops) ...\n")
        failover = run_failover(seed=args.seed, ops=args.ops,
                                capture=True, fleet=True,
                                tenant=args.tenant)
        fleet = failover.fleet
    print(dashboard_text(fleet))
    if args.fleet_out:
        print(f"\nfleet artifact: {fleet.save(args.fleet_out)}")
    if args.html:
        print(f"dashboard html: {write_dashboard(fleet, args.html)}")
    if args.trace_out:
        payload = fleet.chrome_trace()
        errors = validate_chrome_trace(payload)
        if errors:
            for msg in errors[:10]:
                print(f"INVALID: {msg}", file=sys.stderr)
            raise SystemExit(1)
        with open(args.trace_out, "w") as fh:
            json.dump(payload, fh)
            fh.write("\n")
        print(f"unified chrome trace: {args.trace_out} "
              f"({len(payload['traceEvents'])} events) — one track per "
              f"component, flow arrows across the fault chain")


def cmd_summary(args: argparse.Namespace) -> None:
    """Headline claims: the abstract's numbers, measured."""
    result = run_headline(num_ops=args.ops)
    print(render_table(["claim", "paper", "measured"], result.rows(),
                       title="Headline claims"))
    verdict = "hold" if result.all_claims_hold() else "DO NOT all hold"
    print(f"\nAll headline claims {verdict}.")


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "summary": cmd_summary,
    "table2": cmd_table2,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig8d": cmd_fig8d,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11a": cmd_fig11a,
    "fig11b": cmd_fig11b,
    "fig11c": cmd_fig11c,
    "sections": cmd_sections,
    "chaos": cmd_chaos,
    "sweep": cmd_sweep,
    "bench": cmd_bench,
    "trace-convert": cmd_trace_convert,
    "trace-gen": cmd_trace_gen,
    "trace-replay": cmd_trace_replay,
    "trace": cmd_trace,
    "faults": cmd_faults,
    "dashboard": cmd_dashboard,
    "profile": cmd_profile,
    "perfdiff": cmd_perfdiff,
    "slo": cmd_slo,
}


#: File-driven utilities: excluded from ``repro all`` (they need
#: --input/--out paths rather than regenerating a paper artifact).
_NOT_IN_ALL = {"trace-convert", "trace-gen", "trace-replay"}


def cmd_list(args: argparse.Namespace) -> None:
    """List available experiments."""
    for name, func in COMMANDS.items():
        summary = func.__doc__.strip().splitlines()[0]
        print(f"{name:14s} {summary}")


def cmd_all(args: argparse.Namespace) -> None:
    """Run every experiment in sequence."""
    for name, func in COMMANDS.items():
        if name in _NOT_IN_ALL:
            continue
        print(f"\n{'=' * 70}\n{name}\n{'=' * 70}")
        func(args)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of 'Rethinking "
                    "Software Runtimes for Disaggregated Memory' "
                    "(Kona, ASPLOS 2021).")
    parser.add_argument("command",
                        choices=[*COMMANDS, "list", "all"],
                        help="experiment to regenerate")
    parser.add_argument("--windows", type=int, default=6,
                        help="measurement windows for trace experiments")
    parser.add_argument("--region-mb", type=int, default=16,
                        help="per-thread region size for fig7 (MB)")
    parser.add_argument("--ops", type=int, default=40_000,
                        help="data operations for AMAT simulations")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed for the chaos command")
    parser.add_argument("--campaign",
                        choices=["node-failure", "memnode-failover"],
                        default="node-failure",
                        help="chaos: which fault campaign to run")
    parser.add_argument("--trace-out", default=None,
                        help="chaos: write a Chrome trace of the "
                             "failover campaign to this path")
    parser.add_argument("--processes", type=int, default=None,
                        help="worker processes for the sweep command "
                             "(default: cpu count)")
    parser.add_argument("--quick", action="store_true",
                        help="bench: small trace, fewer repeats")
    parser.add_argument("--suite", choices=["kcachesim", "runtime"],
                        default="kcachesim",
                        help="bench: kcachesim hierarchy engines or the "
                             "end-to-end runtime engines (run_trace)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="bench: fail unless the canonical case "
                             "reaches this speedup")
    parser.add_argument("--output", default=None,
                        help="bench: report output path (default depends "
                             "on --suite)")
    parser.add_argument("--out", default="trace.json",
                        help="trace: Chrome trace-event JSON output path")
    parser.add_argument("--trace-ops", type=int, default=8_000,
                        help="trace: accesses in the traced campaign")
    parser.add_argument("--prom", default=None,
                        help="trace: also write a Prometheus text dump")
    parser.add_argument("--jsonl", default=None,
                        help="trace: also write a JSONL event log")
    parser.add_argument("--history", default=HISTORY_FILENAME,
                        help="bench/perfdiff: history JSONL path "
                             "('none' disables)")
    parser.add_argument("--top", type=int, default=10,
                        help="profile/faults: rows in the top tables")
    parser.add_argument("--json", default=None,
                        help="faults: write the attribution report JSON")
    parser.add_argument("--check-overhead", action="store_true",
                        help="faults/dashboard: run the capture- or "
                             "fleet-overhead gate instead of the campaign")
    parser.add_argument("--from-artifact", default=None,
                        help="dashboard: render a saved fleet artifact "
                             "instead of running a campaign")
    parser.add_argument("--html", default=None,
                        help="dashboard: write the self-contained HTML "
                             "report to this path")
    parser.add_argument("--fleet-out", default=None,
                        help="chaos/dashboard/trace-replay: save the fleet "
                             "telemetry artifact (JSON) to this path")
    parser.add_argument("--tenant", default=None,
                        help="chaos/dashboard/trace-replay: tenant label "
                             "on every captured component")
    parser.add_argument("--window-us", type=float, default=100.0,
                        help="profile: stall-attribution window (us)")
    parser.add_argument("--run-a", default=None,
                        help="perfdiff: 'before' run-artifact JSON")
    parser.add_argument("--run-b", default=None,
                        help="perfdiff: 'after' run-artifact JSON")
    parser.add_argument("--rel-tol", type=float, default=0.01,
                        help="perfdiff: relative noise threshold")
    parser.add_argument("--report", default=None,
                        help="perfdiff: also write the diff report JSON")
    parser.add_argument("--against", default=None,
                        help="perfdiff: committed BENCH_*.json baseline to "
                             "gate speedups against")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="perfdiff: allowed fractional speedup drop "
                             "from the baseline")
    parser.add_argument("--input", default=None,
                        help="trace-convert/trace-replay: source trace "
                             "(.npz file or columnar directory)")
    parser.add_argument("--to", choices=["columnar", "npz"],
                        default="columnar",
                        help="trace-convert: target format")
    parser.add_argument("--accesses", type=int, default=1_000_000,
                        help="trace-gen: accesses to generate")
    parser.add_argument("--chunk", type=int, default=1 << 20,
                        help="trace-gen/trace-replay: streaming chunk "
                             "size in accesses (multiple of 256)")
    parser.add_argument("--hot-lines", type=int, default=16384,
                        help="trace-gen: hot working-set size in lines")
    parser.add_argument("--cold-fraction", type=float, default=0.002,
                        help="trace-gen: per-access cold-miss probability")
    parser.add_argument("--write-fraction", type=float, default=0.3,
                        help="trace-gen: per-access write probability")
    parser.add_argument("--fmem-mb", type=int, default=64,
                        help="trace-replay: FMem cache capacity (MB)")
    parser.add_argument("--vfmem-mb", type=int, default=256,
                        help="trace-replay: VFMem capacity (MB)")
    parser.add_argument("--shards", type=int, default=1,
                        help="trace-replay: page-modulo address shards")
    parser.add_argument("--engine", choices=["batched", "coalesced",
                                             "scalar"],
                        default="batched",
                        help="trace-replay: replay engine (coalesced = "
                             "batched front cache with one directory "
                             "transaction per page run on the miss path)")
    parser.add_argument("--rss-ceiling-mb", type=float, default=None,
                        help="trace-replay: fail if peak RSS exceeds "
                             "this many MB (streaming memory guard)")
    return parser


def main(argv: List[str] = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    handler = {"list": cmd_list, "all": cmd_all, **COMMANDS}[args.command]
    handler(args)
    return 0


if __name__ == "__main__":      # pragma: no cover
    sys.exit(main())
