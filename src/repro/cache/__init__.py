"""Set-associative cache models and the trace-driven hierarchy simulator."""

from .amat import (
    ALL_SYSTEMS,
    SystemLatencies,
    infiniswap_latencies,
    kona_latencies,
    kona_main_latencies,
    kona_vm_latencies,
    legoos_latencies,
    system_latencies,
)
from .hierarchy import (
    DEFAULT_CPU_LEVELS,
    ENGINES,
    CacheHierarchy,
    HierarchyResult,
    LevelSpec,
    dram_cache_spec,
)
from .replacement import FIFOPolicy, LRUPolicy, RandomPolicy, make_policy
from .setassoc import CacheStats, Eviction, SetAssociativeCache
from .vectorized import VectorizedCache

__all__ = [
    "ALL_SYSTEMS",
    "CacheHierarchy",
    "CacheStats",
    "DEFAULT_CPU_LEVELS",
    "ENGINES",
    "Eviction",
    "FIFOPolicy",
    "HierarchyResult",
    "LRUPolicy",
    "LevelSpec",
    "RandomPolicy",
    "SetAssociativeCache",
    "SystemLatencies",
    "VectorizedCache",
    "dram_cache_spec",
    "infiniswap_latencies",
    "kona_latencies",
    "kona_main_latencies",
    "kona_vm_latencies",
    "legoos_latencies",
    "make_policy",
    "system_latencies",
]
