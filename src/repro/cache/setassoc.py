"""A write-back, write-allocate set-associative cache model.

Used both for the on-chip levels (64 B blocks) and for the FMem DRAM
cache (4 KB blocks, 4-way — paper section 4.4 "Local translation").
The model tracks residency and dirtiness per block; it does not carry
data, which is what keeps trace-driven simulation fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..common.errors import ConfigError
from ..mem.address import is_power_of_two
from .replacement import ReplacementPolicy, make_policy


@dataclass(frozen=True)
class Eviction:
    """A victim pushed out of the cache on a fill."""

    block_addr: int    # byte address of the block's first byte
    dirty: bool


@dataclass
class CacheStats:
    """Hit/miss/writeback counts for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses divided by accesses (0 if never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class SetAssociativeCache:
    """One level of cache with configurable geometry and policy."""

    def __init__(self, name: str, capacity: int, block_size: int,
                 ways: int, policy: str = "lru") -> None:
        if capacity <= 0 or block_size <= 0 or ways <= 0:
            raise ConfigError("capacity, block_size and ways must be positive")
        if not is_power_of_two(block_size):
            raise ConfigError(f"block_size {block_size} must be a power of two")
        if capacity % (block_size * ways):
            raise ConfigError(
                f"capacity {capacity} not divisible by block_size*ways "
                f"({block_size}*{ways})")
        num_sets = capacity // (block_size * ways)
        if not is_power_of_two(num_sets):
            raise ConfigError(f"number of sets {num_sets} must be a power of two")
        self.name = name
        self.capacity = capacity
        self.block_size = block_size
        self.ways = ways
        self.num_sets = num_sets
        self.policy_name = policy
        # Per set: dict of tag -> dirty flag, plus a replacement policy.
        self._lines: List[Dict[int, bool]] = [{} for _ in range(num_sets)]
        self._policies: List[ReplacementPolicy] = [
            make_policy(policy) for _ in range(num_sets)]
        # Resident-block count, maintained incrementally: occupancy is
        # polled on hot paths (watermark checks every 256 accesses) and
        # summing thousands of set dicts there is measurable.
        self._occupied = 0
        self.stats = CacheStats()

    # -- geometry helpers -----------------------------------------------------

    def block_of(self, addr: int) -> int:
        """Index of the block containing byte address ``addr``."""
        return addr // self.block_size

    def _locate(self, addr: int) -> Tuple[int, int]:
        block = addr // self.block_size
        return block & (self.num_sets - 1), block

    # -- the access path ------------------------------------------------------

    def access(self, addr: int, is_write: bool) -> Tuple[bool, Optional[Eviction]]:
        """Access one byte address.

        Returns ``(hit, eviction)``.  On a miss the block is allocated
        (write-allocate) and the returned eviction describes the victim,
        if the set was full.
        """
        set_idx, tag = self._locate(addr)
        lines = self._lines[set_idx]
        policy = self._policies[set_idx]
        # One dict lookup resolves residency and dirtiness together;
        # only a clean->dirty transition writes back into the dict.
        dirty = lines.get(tag)
        if dirty is not None:
            self.stats.hits += 1
            policy.touch(tag)
            if is_write and not dirty:
                lines[tag] = True
            return True, None

        self.stats.misses += 1
        eviction: Optional[Eviction] = None
        if len(lines) >= self.ways:
            victim = policy.evict()
            dirty = lines.pop(victim)
            self.stats.evictions += 1
            if dirty:
                self.stats.dirty_writebacks += 1
            eviction = Eviction(block_addr=victim * self.block_size, dirty=dirty)
        else:
            self._occupied += 1
        lines[tag] = is_write
        policy.insert(tag)
        return False, eviction

    def probe(self, addr: int) -> bool:
        """Check residency without touching stats or replacement state."""
        set_idx, tag = self._locate(addr)
        return tag in self._lines[set_idx]

    def is_dirty(self, addr: int) -> bool:
        """True if the containing block is resident and dirty."""
        set_idx, tag = self._locate(addr)
        return self._lines[set_idx].get(tag, False)

    def invalidate(self, addr: int) -> Optional[Eviction]:
        """Remove the containing block (coherence invalidation).

        Returns an :class:`Eviction` if the block was resident (dirty
        flag tells the caller whether a writeback is needed).
        """
        set_idx, tag = self._locate(addr)
        lines = self._lines[set_idx]
        if tag not in lines:
            return None
        dirty = lines.pop(tag)
        self._policies[set_idx].remove(tag)
        self._occupied -= 1
        return Eviction(block_addr=tag * self.block_size, dirty=dirty)

    def clean(self, addr: int) -> bool:
        """Clear the dirty bit of a resident block; True if it was dirty."""
        set_idx, tag = self._locate(addr)
        lines = self._lines[set_idx]
        if lines.get(tag):
            lines[tag] = False
            return True
        return False

    @property
    def occupancy(self) -> int:
        """Number of resident blocks (O(1); incrementally maintained)."""
        return self._occupied

    def resident_blocks(self) -> List[int]:
        """Sorted byte addresses of all resident blocks."""
        blocks = []
        for lines in self._lines:
            blocks.extend(tag * self.block_size for tag in lines)
        return sorted(blocks)

    def __repr__(self) -> str:
        return (f"SetAssociativeCache({self.name}, {self.capacity}B, "
                f"{self.block_size}B blocks, {self.ways}-way, "
                f"{self.policy_name})")
