"""A multi-level cache hierarchy driven by memory-access traces.

This is the engine under KCacheSim (paper section 5): run a trace
through L1/L2/L3 plus an optional DRAM cache level (FMem for Kona,
local page cache for the baselines) and report where each access was
served.  The paper's AMAT methodology needs only the per-level service
counts; data movement costs are priced afterwards by
:mod:`repro.cache.amat`.

Two interchangeable engines drive the trace:

* ``engine="scalar"`` — one access at a time through per-set dicts
  (:class:`~repro.cache.setassoc.SetAssociativeCache`).  Slow, simple,
  supports every replacement policy; the reference oracle.
* ``engine="vectorized"`` — the bulk ndarray kernel
  (:class:`~repro.cache.vectorized.VectorizedCache`).  Each level
  consumes only the miss stream of the level above, filtered with
  boolean masks, so lower levels see tiny arrays on cache-friendly
  traces.  Bit-identical to the scalar engine for LRU/FIFO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..common import units
from ..common.errors import ConfigError
from .setassoc import CacheStats, SetAssociativeCache
from .vectorized import VectorizedCache

#: Engines a hierarchy can run on.
ENGINES = ("scalar", "vectorized")

#: Accesses converted per batch in the scalar trace loop (keeps the
#: int conversion fast without materializing whole-trace lists).
_SCALAR_CHUNK = 1 << 16

CacheLevel = Union[SetAssociativeCache, VectorizedCache]


@dataclass(frozen=True)
class LevelSpec:
    """Geometry of one cache level."""

    name: str
    capacity: int
    block_size: int
    ways: int
    policy: str = "lru"

    def build(self, engine: str = "scalar") -> CacheLevel:
        """Instantiate the level on the requested engine."""
        cls = VectorizedCache if engine == "vectorized" else SetAssociativeCache
        return cls(self.name, self.capacity, self.block_size,
                   self.ways, self.policy)


#: Skylake-like on-chip hierarchy used throughout the evaluation.
DEFAULT_CPU_LEVELS: Tuple[LevelSpec, ...] = (
    LevelSpec("L1", 32 * units.KB, units.CACHE_LINE, 8),
    LevelSpec("L2", 1 * units.MB, units.CACHE_LINE, 16),
    LevelSpec("L3", 8 * units.MB, units.CACHE_LINE, 16),
)


def dram_cache_spec(capacity: int, block_size: int = units.PAGE_4K,
                    ways: int = 4, policy: str = "lru") -> LevelSpec:
    """The software-managed DRAM cache level (FMem or local page cache).

    The paper designs FMem as 4-way set associative with page-sized
    blocks (section 4.4); capacity is the experiment's "% local memory".
    """
    return LevelSpec("DRAM$", capacity, block_size, ways, policy)


@dataclass
class HierarchyResult:
    """Outcome of running a trace through the hierarchy."""

    accesses: int
    level_hits: Dict[str, int]
    remote_fetches: int
    remote_writebacks: int
    dram_cache_name: Optional[str] = None

    def served_fractions(self) -> Dict[str, float]:
        """Fraction of accesses served at each level, plus ``remote``.

        The ``remote`` bucket covers every access that missed the whole
        hierarchy — including hierarchies with no DRAM cache, where the
        misses fetch straight from (remote) memory.  The fractions
        always sum to 1 for a non-empty trace.
        """
        if self.accesses == 0:
            return {}
        out = {name: hits / self.accesses
               for name, hits in self.level_hits.items()}
        out["remote"] = self.remote_fetches / self.accesses
        return out


class CacheHierarchy:
    """L1..L3 (+ optional DRAM cache) with a fast trace-simulation loop."""

    def __init__(self, levels: Sequence[LevelSpec] = DEFAULT_CPU_LEVELS,
                 dram_cache: Optional[LevelSpec] = None,
                 engine: str = "scalar") -> None:
        if not levels:
            raise ConfigError("hierarchy needs at least one level")
        if engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {engine!r}; choose from {list(ENGINES)}")
        block = None
        for spec in levels:
            if block is not None and spec.block_size < block:
                raise ConfigError(
                    "lower levels must not have smaller blocks than upper ones")
            block = spec.block_size
        self.engine = engine
        self.levels: List[CacheLevel] = [s.build(engine) for s in levels]
        self.dram_cache: Optional[CacheLevel] = (
            dram_cache.build(engine) if dram_cache is not None else None)
        self.accesses = 0
        self.remote_fetches = 0
        self.remote_writebacks = 0

    def access(self, addr: int, is_write: bool) -> str:
        """Access one address; return the name of the serving level.

        ``"remote"`` means the access missed everywhere (including the
        DRAM cache if present) and had to fetch from remote memory;
        ``"memory"`` is the same event on a hierarchy configured
        without a DRAM cache.  Both count as remote fetches, exactly as
        in :meth:`simulate`.  Dirty DRAM-cache victims count as remote
        writebacks.
        """
        self.accesses += 1
        for level in self.levels:
            hit, _ = level.access(addr, is_write)
            if hit:
                return level.name
        if self.dram_cache is None:
            self.remote_fetches += 1
            return "memory"
        hit, eviction = self.dram_cache.access(addr, is_write)
        if eviction is not None and eviction.dirty:
            self.remote_writebacks += 1
        if hit:
            return self.dram_cache.name
        self.remote_fetches += 1
        return "remote"

    def simulate(self, addrs: np.ndarray, writes: np.ndarray) -> HierarchyResult:
        """Run a whole trace; the hot path of KCacheSim.

        ``addrs`` is a uint64 array of byte addresses, ``writes`` a bool
        array of the same length.  Counters accumulate across calls;
        the returned snapshot covers everything this hierarchy has seen.
        """
        if addrs.shape != writes.shape:
            raise ConfigError("addrs and writes must have identical shape")
        if self.engine == "vectorized":
            self._simulate_vectorized(addrs, writes)
        else:
            self._simulate_scalar(addrs, writes)
        self.accesses += int(addrs.size)
        return self.result()

    def _simulate_vectorized(self, addrs: np.ndarray,
                             writes: np.ndarray) -> None:
        """Bulk path: each level filters the stream level by level."""
        stream_addrs = np.asarray(addrs, dtype=np.uint64).ravel()
        stream_writes = np.asarray(writes, dtype=bool).ravel()
        for level in self.levels:
            if stream_addrs.size == 0:
                return
            miss = level.simulate_batch(stream_addrs, stream_writes)
            stream_addrs = stream_addrs[miss]
            stream_writes = stream_writes[miss]
        if stream_addrs.size == 0:
            return
        dram = self.dram_cache
        if dram is None:
            self.remote_fetches += int(stream_addrs.size)
            return
        dirty_before = dram.stats.dirty_writebacks
        miss = dram.simulate_batch(stream_addrs, stream_writes)
        self.remote_writebacks += dram.stats.dirty_writebacks - dirty_before
        self.remote_fetches += int(np.count_nonzero(miss))

    def _simulate_scalar(self, addrs: np.ndarray, writes: np.ndarray) -> None:
        """Reference path: one access at a time through the dict model."""
        # Bind hot attributes to locals: this loop dominates simulation
        # time.  Convert in bounded chunks — plain-int iteration is much
        # faster than ndarray scalars, but whole-trace tolist() would
        # transiently double the trace's memory footprint.
        level_access = [lvl.access for lvl in self.levels]
        dram = self.dram_cache
        dram_access = dram.access if dram is not None else None
        remote_fetches = 0
        remote_writebacks = 0
        flat_addrs = np.ravel(addrs)
        flat_writes = np.ravel(writes)
        for lo in range(0, flat_addrs.size, _SCALAR_CHUNK):
            chunk = slice(lo, lo + _SCALAR_CHUNK)
            for addr, is_write in zip(flat_addrs[chunk].tolist(),
                                      flat_writes[chunk].tolist()):
                for access in level_access:
                    hit, _ = access(addr, is_write)
                    if hit:
                        break
                else:
                    if dram_access is not None:
                        hit, eviction = dram_access(addr, is_write)
                        if eviction is not None and eviction.dirty:
                            remote_writebacks += 1
                        if not hit:
                            remote_fetches += 1
                    else:
                        remote_fetches += 1
        self.remote_fetches += remote_fetches
        self.remote_writebacks += remote_writebacks

    def result(self, accesses: Optional[int] = None) -> HierarchyResult:
        """Snapshot the per-level service counts.

        ``accesses`` defaults to the hierarchy's own cumulative access
        counter, which stays consistent with the cumulative hit and
        remote counters across repeated :meth:`simulate` and
        :meth:`access` calls.
        """
        level_hits = {lvl.name: lvl.stats.hits for lvl in self.levels}
        if self.dram_cache is not None:
            level_hits[self.dram_cache.name] = self.dram_cache.stats.hits
        total = accesses if accesses is not None else self.accesses
        return HierarchyResult(
            accesses=total,
            level_hits=level_hits,
            remote_fetches=self.remote_fetches,
            remote_writebacks=self.remote_writebacks,
            dram_cache_name=(self.dram_cache.name
                             if self.dram_cache is not None else None),
        )

    def stats_of(self, name: str) -> CacheStats:
        """Raw stats for one level by name."""
        for level in self.levels:
            if level.name == name:
                return level.stats
        if self.dram_cache is not None and self.dram_cache.name == name:
            return self.dram_cache.stats
        raise ConfigError(f"no level named {name!r}")
