"""A multi-level cache hierarchy driven by memory-access traces.

This is the engine under KCacheSim (paper section 5): run a trace
through L1/L2/L3 plus an optional DRAM cache level (FMem for Kona,
local page cache for the baselines) and report where each access was
served.  The paper's AMAT methodology needs only the per-level service
counts; data movement costs are priced afterwards by
:mod:`repro.cache.amat`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common import units
from ..common.errors import ConfigError
from .setassoc import CacheStats, SetAssociativeCache


@dataclass(frozen=True)
class LevelSpec:
    """Geometry of one cache level."""

    name: str
    capacity: int
    block_size: int
    ways: int
    policy: str = "lru"

    def build(self) -> SetAssociativeCache:
        """Instantiate the level."""
        return SetAssociativeCache(self.name, self.capacity,
                                   self.block_size, self.ways, self.policy)


#: Skylake-like on-chip hierarchy used throughout the evaluation.
DEFAULT_CPU_LEVELS: Tuple[LevelSpec, ...] = (
    LevelSpec("L1", 32 * units.KB, units.CACHE_LINE, 8),
    LevelSpec("L2", 1 * units.MB, units.CACHE_LINE, 16),
    LevelSpec("L3", 8 * units.MB, units.CACHE_LINE, 16),
)


def dram_cache_spec(capacity: int, block_size: int = units.PAGE_4K,
                    ways: int = 4, policy: str = "lru") -> LevelSpec:
    """The software-managed DRAM cache level (FMem or local page cache).

    The paper designs FMem as 4-way set associative with page-sized
    blocks (section 4.4); capacity is the experiment's "% local memory".
    """
    return LevelSpec("DRAM$", capacity, block_size, ways, policy)


@dataclass
class HierarchyResult:
    """Outcome of running a trace through the hierarchy."""

    accesses: int
    level_hits: Dict[str, int]
    remote_fetches: int
    remote_writebacks: int
    dram_cache_name: Optional[str] = None

    def served_fractions(self) -> Dict[str, float]:
        """Fraction of accesses served at each level, plus ``remote``."""
        if self.accesses == 0:
            return {}
        out = {name: hits / self.accesses
               for name, hits in self.level_hits.items()}
        out["remote"] = self.remote_fetches / self.accesses
        return out


class CacheHierarchy:
    """L1..L3 (+ optional DRAM cache) with a fast trace-simulation loop."""

    def __init__(self, levels: Sequence[LevelSpec] = DEFAULT_CPU_LEVELS,
                 dram_cache: Optional[LevelSpec] = None) -> None:
        if not levels:
            raise ConfigError("hierarchy needs at least one level")
        block = None
        for spec in levels:
            if block is not None and spec.block_size < block:
                raise ConfigError(
                    "lower levels must not have smaller blocks than upper ones")
            block = spec.block_size
        self.levels: List[SetAssociativeCache] = [s.build() for s in levels]
        self.dram_cache: Optional[SetAssociativeCache] = (
            dram_cache.build() if dram_cache is not None else None)
        self.remote_fetches = 0
        self.remote_writebacks = 0

    def access(self, addr: int, is_write: bool) -> str:
        """Access one address; return the name of the serving level.

        ``"remote"`` means the access missed everywhere (including the
        DRAM cache if present) and had to fetch from remote memory.
        Dirty DRAM-cache victims count as remote writebacks.
        """
        for level in self.levels:
            hit, _ = level.access(addr, is_write)
            if hit:
                return level.name
        if self.dram_cache is None:
            return "memory"
        hit, eviction = self.dram_cache.access(addr, is_write)
        if eviction is not None and eviction.dirty:
            self.remote_writebacks += 1
        if hit:
            return self.dram_cache.name
        self.remote_fetches += 1
        return "remote"

    def simulate(self, addrs: np.ndarray, writes: np.ndarray) -> HierarchyResult:
        """Run a whole trace; the hot path of KCacheSim.

        ``addrs`` is a uint64 array of byte addresses, ``writes`` a bool
        array of the same length.
        """
        if addrs.shape != writes.shape:
            raise ConfigError("addrs and writes must have identical shape")
        # Bind hot attributes to locals: this loop dominates simulation time.
        level_access = [lvl.access for lvl in self.levels]
        dram = self.dram_cache
        dram_access = dram.access if dram is not None else None
        remote_fetches = 0
        remote_writebacks = 0
        for addr, is_write in zip(addrs.tolist(), writes.tolist()):
            for access in level_access:
                hit, _ = access(addr, is_write)
                if hit:
                    break
            else:
                if dram_access is not None:
                    hit, eviction = dram_access(addr, is_write)
                    if eviction is not None and eviction.dirty:
                        remote_writebacks += 1
                    if not hit:
                        remote_fetches += 1
                else:
                    remote_fetches += 1
        self.remote_fetches += remote_fetches
        self.remote_writebacks += remote_writebacks
        return self.result(int(addrs.size))

    def result(self, accesses: Optional[int] = None) -> HierarchyResult:
        """Snapshot the per-level service counts."""
        level_hits = {lvl.name: lvl.stats.hits for lvl in self.levels}
        if self.dram_cache is not None:
            level_hits[self.dram_cache.name] = self.dram_cache.stats.hits
        total = accesses if accesses is not None else self.levels[0].stats.accesses
        return HierarchyResult(
            accesses=total,
            level_hits=level_hits,
            remote_fetches=self.remote_fetches,
            remote_writebacks=self.remote_writebacks,
            dram_cache_name=(self.dram_cache.name
                             if self.dram_cache is not None else None),
        )

    def stats_of(self, name: str) -> CacheStats:
        """Raw stats for one level by name."""
        for level in self.levels:
            if level.name == name:
                return level.stats
        if self.dram_cache is not None and self.dram_cache.name == name:
            return self.dram_cache.stats
        raise ConfigError(f"no level named {name!r}")
