"""Array-based set-associative cache kernel for bulk trace simulation.

:class:`VectorizedCache` is the fast engine behind
``CacheHierarchy(engine="vectorized")``.  It keeps the whole cache
state in ndarrays — a per-set tag matrix, a dirty bitmap and an age
matrix — and consumes a trace in bulk instead of one dict lookup per
access.  It is *bit-identical* to the scalar
:class:`~repro.cache.setassoc.SetAssociativeCache` oracle for the LRU
and FIFO policies: same hits, misses, evictions, dirty writebacks and
victim choices on any access stream (the differential test suite
asserts exactly this).

How the kernel vectorizes a stateful simulation
-----------------------------------------------

Cache sets are independent: the outcome of an access depends only on
earlier accesses to the *same* set.  The kernel therefore groups a
chunk of the trace by set and assigns each access its per-set
occurrence rank.  All rank-``r`` accesses touch pairwise-distinct sets,
so one "round" — gather the tag rows, compare, pick hit ways or
victims, scatter the fills back — is a handful of NumPy operations over
every set at once.  Processing rounds in ascending rank preserves each
set's program order, which is all the replacement policies can observe.
The number of sequential steps collapses from ``len(trace)`` to
``max accesses per set``, i.e. roughly ``len(trace) / num_sets``.

Two further tricks matter in practice:

* **Run collapsing** — consecutive accesses to the same block are
  guaranteed hits after the first; they are folded into one
  representative access (writes OR-ed together) before the rounds run.
  This is what keeps page-granularity levels (the 4 KB DRAM cache)
  cheap when the miss stream has spatial locality.
* **Radix-friendly sorts** — the grouping sorts use ``uint16`` keys
  whenever the geometry allows, where NumPy's stable sort is a cheap
  radix pass rather than a comparison sort.

Replacement is encoded in the age matrix: each round stamps the lines
it touches with a monotonically increasing round age (a set is touched
at most once per round, so round order *is* per-set access order); LRU
refreshes a block's age on hits while FIFO keeps the fill time, and
the eviction victim is always the minimum age in the set.  Both match
the scalar list-based policies exactly.  The ``random`` policy draws from per-set RNG streams that a
bulk kernel cannot reproduce access-by-access, so it stays
scalar-only.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..common.errors import ConfigError
from ..mem.address import is_power_of_two
from .setassoc import CacheStats, Eviction

#: Tag value marking an empty way (real tags are non-negative blocks).
_EMPTY = -1

#: Padding value for sets with no access in a padded partial round;
#: never equal to a real tag or to ``_EMPTY``.
_NO_ACCESS = -2

#: Accesses processed per kernel invocation; bounds transient memory
#: (a handful of int64 arrays of this length) without changing results.
_CHUNK = 1 << 20

#: Policies the bulk kernel reproduces exactly.
SUPPORTED_POLICIES = ("lru", "fifo")


class VectorizedCache:
    """One cache level stored as ndarrays, driven in bulk.

    Geometry and semantics mirror
    :class:`~repro.cache.setassoc.SetAssociativeCache` (write-back,
    write-allocate, residency + dirtiness only); the representation and
    the access API are built for whole-trace simulation.
    """

    def __init__(self, name: str, capacity: int, block_size: int,
                 ways: int, policy: str = "lru") -> None:
        if capacity <= 0 or block_size <= 0 or ways <= 0:
            raise ConfigError("capacity, block_size and ways must be positive")
        if not is_power_of_two(block_size):
            raise ConfigError(f"block_size {block_size} must be a power of two")
        if capacity % (block_size * ways):
            raise ConfigError(
                f"capacity {capacity} not divisible by block_size*ways "
                f"({block_size}*{ways})")
        num_sets = capacity // (block_size * ways)
        if not is_power_of_two(num_sets):
            raise ConfigError(f"number of sets {num_sets} must be a power of two")
        policy = policy.lower()
        if policy not in SUPPORTED_POLICIES:
            raise ConfigError(
                f"policy {policy!r} is not supported by the vectorized "
                f"engine (choose from {list(SUPPORTED_POLICIES)}, or use "
                f"engine='scalar')")
        self.name = name
        self.capacity = capacity
        self.block_size = block_size
        self.ways = ways
        self.num_sets = num_sets
        self.policy_name = policy
        self.stats = CacheStats()
        self._lru = policy == "lru"
        self._block_shift = block_size.bit_length() - 1
        self._set_mask = num_sets - 1
        self._tags = np.full((num_sets, ways), _EMPTY, dtype=np.int64)
        self._dirty = np.zeros((num_sets, ways), dtype=bool)
        self._age = np.zeros((num_sets, ways), dtype=np.int64)
        self._tags_flat = self._tags.reshape(-1)
        self._dirty_flat = self._dirty.reshape(-1)
        self._age_flat = self._age.reshape(-1)
        self._set_base = np.arange(num_sets, dtype=np.intp) * ways
        self._clock = 0          # accesses observed; source of timestamps
        self._occupied = 0       # resident blocks (enables full-set fast path)

    # -- geometry helpers -----------------------------------------------------

    def block_of(self, addr: int) -> int:
        """Index of the block containing byte address ``addr``."""
        return addr // self.block_size

    # -- bulk access path -----------------------------------------------------

    def simulate_batch(self, addrs: np.ndarray,
                       writes: np.ndarray) -> np.ndarray:
        """Access a whole stream; return its boolean miss mask.

        ``addrs`` is a uint64 byte-address array, ``writes`` a matching
        bool array.  Stats and cache state advance exactly as if
        :meth:`access` had been called element by element; the returned
        mask selects the accesses that missed (the stream the next
        level of a hierarchy must consume).
        """
        addrs = np.asarray(addrs, dtype=np.uint64)
        writes = np.asarray(writes, dtype=bool)
        if addrs.shape != writes.shape:
            raise ConfigError("addrs and writes must have identical shape")
        n = addrs.size
        miss = np.empty(n, dtype=bool)
        for lo in range(0, n, _CHUNK):
            hi = min(lo + _CHUNK, n)
            miss[lo:hi] = self._kernel(addrs[lo:hi], writes[lo:hi])
        return miss

    def _kernel(self, addrs: np.ndarray, writes: np.ndarray) -> np.ndarray:
        """One chunk of the bulk access path."""
        n = addrs.size
        if n == 0:
            return np.empty(0, dtype=bool)
        # The shift yields a fresh uint64 array of small values; viewing
        # it as int64 is free where an astype would copy.
        block = (addrs >> np.uint64(self._block_shift)).view(np.int64)

        # Run collapsing: a block re-accessed with no intervening access
        # is resident for sure, so only the first access of each run can
        # change state.  OR the run's writes into the representative and
        # give it the run's time slot; relative order between runs (the
        # only thing LRU/FIFO victim choice observes) is unchanged.
        # Collapsing costs a fixed set of whole-chunk passes, so it only
        # runs when enough duplicates exist to shrink the rounds —
        # uncollapsed duplicates are still simulated exactly (as hits).
        rep = None
        m = n
        rblock, rwrites = block, writes
        if n > 1:
            neq = block[1:] != block[:-1]
            runs = n - 1 - int(np.count_nonzero(neq))
            if runs << 4 >= n:
                keep = np.empty(n, dtype=bool)
                keep[0] = True
                keep[1:] = neq
                rep = np.flatnonzero(keep)
                m = n - runs
                rblock = block[rep]
                rwrites = np.logical_or.reduceat(writes, rep)
                self.stats.hits += runs

        # Group by set and assign per-set occurrence ranks.  Rank-r
        # accesses touch pairwise-distinct sets, so each rank is one
        # conflict-free vectorized round; ascending ranks preserve each
        # set's program order.
        num_sets = self.num_sets
        sidx = rblock & self._set_mask
        if num_sets <= 1 << 8:
            order = np.argsort(sidx.astype(np.uint8), kind="stable")
        elif num_sets <= 1 << 16:
            order = np.argsort(sidx.astype(np.uint16), kind="stable")
        else:
            order = np.argsort(sidx, kind="stable")
        counts = np.bincount(sidx, minlength=num_sets)
        cum = np.cumsum(counts)
        starts = cum - counts
        max_rank = int(counts.max())
        full_rounds = int(counts.min())
        aligned_end = full_rounds * num_sets

        # Round-major permutation: sort by (rank, set), where the rank
        # is an element's occurrence index within its set.  Rounds below
        # ``counts.min()`` contain an access in *every* set, so their
        # region of the permutation is just the set-sorted order read
        # column-wise — an arithmetic transpose, no second sort.  Only
        # the trailing partial rounds (ranks >= counts.min()) need a
        # stable rank sort, over their own elements alone.
        if aligned_end:
            idx = starts[None, :] + np.arange(full_rounds)[:, None]
            order2 = order.take(idx.ravel())
        else:
            order2 = order
        if aligned_end < m:
            tail_counts = counts - full_rounds
            tail_total = m - aligned_end
            tcum = np.cumsum(tail_counts)
            offs = np.arange(tail_total) - np.repeat(tcum - tail_counts,
                                                     tail_counts)
            tail_pos = np.repeat(starts + full_rounds, tail_counts) + offs
            if max_rank - full_rounds <= 1 << 16:
                torder = np.argsort(offs.astype(np.uint16), kind="stable")
            else:
                torder = np.argsort(offs, kind="stable")
            tail_order = order.take(tail_pos[torder])
            order2 = (np.concatenate([order2, tail_order]) if aligned_end
                      else tail_order)
        # Round r has one element per set with count > r.
        have = np.bincount(np.minimum(counts, max_rank), minlength=max_rank + 1)
        round_sizes = num_sets - np.cumsum(have[:-1])
        bounds = np.concatenate(([0], np.cumsum(round_sizes))).tolist()

        # Round-major views of the chunk: round r occupies
        # b2[bounds[r]:bounds[r+1]] with strictly increasing set
        # indices.  For rounds below ``counts.min()`` element i of the
        # round slice belongs to set i: those compare against the whole
        # tag matrix directly with zero gather indices (the aligned fast
        # path below); only the partial rounds pay for gathers.
        b2 = rblock[order2]
        w2 = rwrites[order2]
        miss2 = np.empty(m, dtype=bool)
        # Ages are per-*round*, not per-access: a set is touched at most
        # once per round, so the round index orders a set's touches
        # exactly as per-access timestamps would — and a scalar age per
        # round is far cheaper than gathering a timestamp array.  Ages
        # stay below the post-chunk clock, keeping interleaved
        # :meth:`access` calls strictly newer.
        clock0 = self._clock + 1
        if aligned_end < m:
            part = slice(aligned_end, None)
            s2 = (b2[part] & self._set_mask).astype(np.intp)
            base2 = s2 * self.ways
        else:
            s2 = base2 = np.empty(0, dtype=np.intp)

        tags, tags_flat = self._tags, self._tags_flat
        dirty_flat = self._dirty_flat
        age, age_flat = self._age, self._age_flat
        set_base = self._set_base
        lru = self._lru
        occupied = self._occupied
        total_lines = num_sets * self.ways
        hits = misses = evictions = dirty_wbs = 0
        flatnonzero = np.flatnonzero
        count_nonzero = np.count_nonzero
        aligned_end = full_rounds * num_sets

        # Buffers for padded partial rounds: a round covering most sets
        # is cheaper scattered into a full set-indexed row (then treated
        # like an aligned round, no tag-row gathers) than gathered.
        if aligned_end < m:
            b_full = np.empty(num_sets, dtype=np.int64)
            w_full = np.empty(num_sets, dtype=bool)
            act = np.empty(num_sets, dtype=bool)

        # Grouped fast path: up to ``ways`` consecutive aligned rounds
        # where *every* access misses collapse into one dispatch — the
        # victims are each set's G oldest ways in age order (installed
        # lines are always newer than survivors, so later ranks in the
        # group never disturb earlier installs).  Validity is two bulk
        # checks: no access matches a pre-group tag, and no two ranks in
        # the group carry the same block.  ``credits`` turns the attempt
        # off for hit-heavy levels where the check always fails.
        credits = 8
        r = 0
        while r < max_rank:
            aligned = r < full_rounds
            if (aligned and credits > 0 and occupied >= total_lines
                    and full_rounds - r > 1):
                G = min(self.ways, full_rounds - r)
                if G > 1:
                    lo, hi = bounds[r], bounds[r + G]
                    B = b2[lo:hi].reshape(G, num_sets)
                    ok = not (tags == B[:, :, None]).any()
                    if ok:
                        Bs = np.sort(B, axis=0)
                        ok = not (Bs[1:] == Bs[:-1]).any()
                    if ok:
                        vw = np.argsort(age, axis=1)[:, :G]
                        loc = (set_base[:, None] + vw).T.ravel()
                        dirty_wbs += int(count_nonzero(dirty_flat.take(loc)))
                        nmg = G * num_sets
                        evictions += nmg
                        misses += nmg
                        tags_flat[loc] = b2[lo:hi]
                        dirty_flat[loc] = w2[lo:hi]
                        age_flat[loc] = np.repeat(
                            np.arange(clock0 + r, clock0 + r + G), num_sets)
                        miss2[lo:hi] = True
                        credits = min(credits + 1, 64)
                        r += G
                        continue
                    credits -= 1
            lo, hi = bounds[r], bounds[r + 1]
            ts_r = clock0 + r
            r += 1
            b = b2[lo:hi]
            if (not aligned and occupied >= total_lines
                    and 2 * (hi - lo) >= num_sets):
                s = s2[lo - aligned_end:hi - aligned_end]
                w = w2[lo:hi]
                b_full.fill(_NO_ACCESS)
                b_full[s] = b
                w_full[s] = w
                hitm = tags == b_full[:, None]
                hit_any = hitm.any(1)
                hidx = flatnonzero(hit_any)
                nh = hidx.size
                nm = (hi - lo) - nh
                if nh:
                    loc = set_base[hidx] + hitm[hidx].argmax(1)
                    dirty_flat[loc] |= w_full[hidx]
                    if lru:
                        age_flat[loc] = ts_r
                    hits += nh
                act.fill(False)
                act[s] = True
                act[hidx] = False        # per-set miss mask
                miss2[lo:hi] = act[s]
                if nm:
                    midx = flatnonzero(act)
                    loc = set_base[midx] + age.argmin(1)[midx]
                    dirty_wbs += int(count_nonzero(dirty_flat.take(loc)))
                    evictions += nm
                    tags_flat[loc] = b_full[midx]
                    dirty_flat[loc] = w_full[midx]
                    age_flat[loc] = ts_r
                    misses += nm
                continue
            if aligned and occupied >= total_lines:
                # Fused full-cache round: every set is accessed and no
                # way is empty, so each set's target way is either its
                # hit way or its min-age victim, and the stored tag is
                # ``b`` either way — no index splitting needed.  The
                # all-miss and all-hit rounds skip the unused argmax /
                # argmin halves.
                w = w2[lo:hi]
                hitm = tags == b[:, None]
                hit_any = hitm.any(1)
                nh = int(count_nonzero(hit_any))
                nm = num_sets - nh
                np.logical_not(hit_any, out=miss2[lo:hi])
                if not nh:
                    loc = set_base + age.argmin(1)
                    dirty_wbs += int(count_nonzero(dirty_flat.take(loc)))
                    evictions += nm
                    dirty_flat[loc] = w
                elif not nm:
                    loc = set_base + hitm.argmax(1)
                    dirty_flat[loc] |= w
                else:
                    loc = set_base + np.where(hit_any, hitm.argmax(1),
                                              age.argmin(1))
                    old_dirty = dirty_flat.take(loc)
                    dirty_wbs += int(count_nonzero(old_dirty & miss2[lo:hi]))
                    evictions += nm
                    dirty_flat[loc] = np.where(hit_any, old_dirty | w, w)
                tags_flat[loc] = b
                if lru or not nh:
                    age_flat[loc] = ts_r
                else:
                    age_flat[loc] = np.where(hit_any, age_flat.take(loc), ts_r)
                hits += nh
                misses += nm
                continue
            if aligned:
                rows = tags
                base = set_base
            else:
                s = s2[lo - aligned_end:hi - aligned_end]
                base = base2[lo - aligned_end:hi - aligned_end]
                rows = tags.take(s, axis=0)
            hitm = rows == b[:, None]
            hit_any = hitm.any(1)
            hidx = flatnonzero(hit_any)
            nh = hidx.size
            nm = (hi - lo) - nh
            np.logical_not(hit_any, out=miss2[lo:hi])
            w = w2[lo:hi]

            if nh:
                loc = base[hidx] + hitm[hidx].argmax(1)
                dirty_flat[loc] |= w[hidx]
                if lru:
                    age_flat[loc] = ts_r
                hits += nh
            if not nm:
                continue

            if occupied >= total_lines:
                # Full cache: the victim is always the min-age way.
                if aligned:
                    victim_loc = set_base + age.argmin(1)
                    if nh:
                        midx = flatnonzero(miss2[lo:hi])
                        loc = victim_loc[midx]
                        mb, mw = b[midx], w[midx]
                    else:
                        loc = victim_loc
                        mb, mw = b, w
                else:
                    if nh:
                        midx = flatnonzero(miss2[lo:hi])
                        mbase, ms = base[midx], s[midx]
                        mb, mw = b[midx], w[midx]
                    else:
                        mbase, ms, mb, mw = base, s, b, w
                    loc = mbase + age.take(ms, axis=0).argmin(1)
                dirty_wbs += int(count_nonzero(dirty_flat.take(loc)))
                evictions += nm
            else:
                # Warm-up: prefer an empty way, else the min-age way.
                if nh:
                    midx = flatnonzero(miss2[lo:hi])
                    mb, mw = b[midx], w[midx]
                    mrows = rows[midx]
                    mbase = base[midx]
                    age_rows = (age[midx] if aligned
                                else age.take(s[midx], axis=0))
                else:
                    mb, mw, mrows, mbase = b, w, rows, base
                    age_rows = age if aligned else age.take(s, axis=0)
                empty = mrows == _EMPTY
                has_empty = empty.any(1)
                victim_way = np.where(has_empty, empty.argmax(1),
                                      age_rows.argmin(1))
                n_evict = nm - int(count_nonzero(has_empty))
                occupied += nm - n_evict
                loc = mbase + victim_way
                if n_evict:
                    was_dirty = dirty_flat.take(loc) & ~has_empty
                    dirty_wbs += int(count_nonzero(was_dirty))
                    evictions += n_evict
            tags_flat[loc] = mb
            dirty_flat[loc] = mw
            age_flat[loc] = ts_r
            misses += nm

        self._occupied = occupied
        self._clock += n
        self.stats.hits += hits
        self.stats.misses += misses
        self.stats.evictions += evictions
        self.stats.dirty_writebacks += dirty_wbs

        # Un-permute the per-round outcomes, then expand over collapsed
        # runs: only each run's representative can miss.
        rep_miss = np.empty(m, dtype=bool)
        rep_miss[order2] = miss2
        if rep is None:
            return rep_miss
        full_miss = np.zeros(n, dtype=bool)
        full_miss[rep] = rep_miss
        return full_miss

    # -- scalar-compatible access path ---------------------------------------

    def access(self, addr: int, is_write: bool) -> Tuple[bool, Optional[Eviction]]:
        """Access one byte address; ``(hit, eviction)`` as the oracle.

        Interleaves exactly with :meth:`simulate_batch`: both paths
        advance the same clock and arrays.
        """
        block = int(addr) // self.block_size
        set_idx = block & self._set_mask
        row = self._tags[set_idx]
        self._clock += 1
        hit_ways = np.flatnonzero(row == block)
        if hit_ways.size:
            way = int(hit_ways[0])
            self.stats.hits += 1
            if is_write:
                self._dirty[set_idx, way] = True
            if self._lru:
                self._age[set_idx, way] = self._clock
            return True, None

        self.stats.misses += 1
        eviction: Optional[Eviction] = None
        empty_ways = np.flatnonzero(row == _EMPTY)
        if empty_ways.size:
            way = int(empty_ways[0])
            self._occupied += 1
        else:
            way = int(self._age[set_idx].argmin())
            was_dirty = bool(self._dirty[set_idx, way])
            self.stats.evictions += 1
            if was_dirty:
                self.stats.dirty_writebacks += 1
            eviction = Eviction(
                block_addr=int(self._tags[set_idx, way]) * self.block_size,
                dirty=was_dirty)
        self._tags[set_idx, way] = block
        self._dirty[set_idx, way] = is_write
        self._age[set_idx, way] = self._clock
        return False, eviction

    # -- introspection (parity with the scalar model) -------------------------

    def _find(self, addr: int) -> Tuple[int, int]:
        block = int(addr) // self.block_size
        set_idx = block & self._set_mask
        ways = np.flatnonzero(self._tags[set_idx] == block)
        return set_idx, (int(ways[0]) if ways.size else -1)

    def probe(self, addr: int) -> bool:
        """Check residency without touching stats or replacement state."""
        return self._find(addr)[1] >= 0

    def is_dirty(self, addr: int) -> bool:
        """True if the containing block is resident and dirty."""
        set_idx, way = self._find(addr)
        return way >= 0 and bool(self._dirty[set_idx, way])

    def invalidate(self, addr: int) -> Optional[Eviction]:
        """Remove the containing block (coherence invalidation)."""
        set_idx, way = self._find(addr)
        if way < 0:
            return None
        was_dirty = bool(self._dirty[set_idx, way])
        block = int(self._tags[set_idx, way])
        self._tags[set_idx, way] = _EMPTY
        self._dirty[set_idx, way] = False
        self._age[set_idx, way] = 0
        self._occupied -= 1
        return Eviction(block_addr=block * self.block_size, dirty=was_dirty)

    def clean(self, addr: int) -> bool:
        """Clear the dirty bit of a resident block; True if it was dirty."""
        set_idx, way = self._find(addr)
        if way >= 0 and self._dirty[set_idx, way]:
            self._dirty[set_idx, way] = False
            return True
        return False

    @property
    def occupancy(self) -> int:
        """Number of resident blocks."""
        return self._occupied

    def resident_blocks(self) -> List[int]:
        """Sorted byte addresses of all resident blocks."""
        tags = self._tags_flat
        return sorted(int(t) * self.block_size for t in tags[tags != _EMPTY])

    def __repr__(self) -> str:
        return (f"VectorizedCache({self.name}, {self.capacity}B, "
                f"{self.block_size}B blocks, {self.ways}-way, "
                f"{self.policy_name})")
