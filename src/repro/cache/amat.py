"""Average-memory-access-time pricing of hierarchy results.

The same :class:`~repro.cache.hierarchy.HierarchyResult` is priced
differently per system (paper section 6.2):

* **Kona** — remote data cached in FMem (NUMA-penalty DRAM), remote
  misses served by the FPGA directory over RDMA *without* page faults;
* **Kona-main** — hypothetical Kona that can track CMem, so the DRAM
  cache is local-latency (the upper bound if CPUs gained the primitive);
* **LegoOS / Infiniswap / Kona-VM** — remote data cached in CMem, but
  every remote miss pays the measured page-fault-inclusive fetch
  latency of that system.

The model is conservative exactly the way the paper is: the page-fault
cost is folded into the remote transfer latency, ignoring pipeline
flushes and cache pollution that would further hurt the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..common.errors import ConfigError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from .hierarchy import HierarchyResult


@dataclass(frozen=True)
class SystemLatencies:
    """Per-level service latencies (ns) for one remote-memory system."""

    name: str
    level_ns: Dict[str, float]   # on-chip levels by name
    dram_cache_ns: float         # serving from the DRAM cache (FMem or CMem)
    remote_ns: float             # serving a remote miss end to end

    def amat_ns(self, result: HierarchyResult) -> float:
        """Average memory access time for a simulated trace."""
        if result.accesses == 0:
            raise ConfigError("cannot price an empty trace")
        total = 0.0
        for level, hits in result.level_hits.items():
            if level == result.dram_cache_name:
                total += hits * self.dram_cache_ns
            else:
                try:
                    total += hits * self.level_ns[level]
                except KeyError:
                    raise ConfigError(
                        f"{self.name} has no latency for level {level!r}"
                    ) from None
        total += result.remote_fetches * self.remote_ns
        return total / result.accesses


def _onchip(lat: LatencyModel) -> Dict[str, float]:
    return {"L1": lat.l1_hit_ns, "L2": lat.l2_hit_ns, "L3": lat.l3_hit_ns}


def kona_latencies(lat: LatencyModel = DEFAULT_LATENCY) -> SystemLatencies:
    """Kona: FMem-cached, fault-free remote fetches."""
    return SystemLatencies(
        name="kona",
        level_ns=_onchip(lat),
        dram_cache_ns=lat.fmem_ns,
        remote_ns=lat.kona_remote_fetch_ns,
    )


def kona_main_latencies(lat: LatencyModel = DEFAULT_LATENCY) -> SystemLatencies:
    """Kona-main: Kona if it could track CMem (no NUMA penalty)."""
    return SystemLatencies(
        name="kona-main",
        level_ns=_onchip(lat),
        dram_cache_ns=lat.cmem_ns,
        remote_ns=lat.kona_remote_fetch_ns,
    )


def legoos_latencies(lat: LatencyModel = DEFAULT_LATENCY) -> SystemLatencies:
    """LegoOS: CMem-cached, 10 us fault-inclusive remote fetch."""
    return SystemLatencies(
        name="legoos",
        level_ns=_onchip(lat),
        dram_cache_ns=lat.cmem_ns,
        remote_ns=lat.legoos_remote_fetch_ns,
    )


def infiniswap_latencies(lat: LatencyModel = DEFAULT_LATENCY) -> SystemLatencies:
    """Infiniswap: CMem-cached, 40 us block-layer remote fetch."""
    return SystemLatencies(
        name="infiniswap",
        level_ns=_onchip(lat),
        dram_cache_ns=lat.cmem_ns,
        remote_ns=lat.infiniswap_remote_fetch_ns,
    )


def kona_vm_latencies(lat: LatencyModel = DEFAULT_LATENCY) -> SystemLatencies:
    """Kona-VM: userfaultfd-based page runtime (similar to LegoOS AMAT)."""
    return SystemLatencies(
        name="kona-vm",
        level_ns=_onchip(lat),
        dram_cache_ns=lat.cmem_ns,
        remote_ns=lat.kona_vm_remote_fetch_ns,
    )


ALL_SYSTEMS = {
    "kona": kona_latencies,
    "kona-main": kona_main_latencies,
    "legoos": legoos_latencies,
    "infiniswap": infiniswap_latencies,
    "kona-vm": kona_vm_latencies,
}


def system_latencies(name: str, lat: LatencyModel = DEFAULT_LATENCY) -> SystemLatencies:
    """Look up a system's latency assignment by name."""
    try:
        return ALL_SYSTEMS[name](lat)
    except KeyError:
        raise ConfigError(
            f"unknown system {name!r}; choose from {sorted(ALL_SYSTEMS)}"
        ) from None
