"""Replacement policies for set-associative caches.

Each policy manages victim selection within a single cache set.  The
set-associative cache keeps one policy state object per set; keeping
the policy pluggable lets the ablation benchmarks compare LRU against
FIFO and random replacement in the FMem page cache.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

import numpy as np

from ..common.errors import ConfigError


class ReplacementPolicy(Protocol):
    """Victim-selection state for one cache set."""

    def touch(self, tag: int) -> None:
        """Record a hit on ``tag``."""

    def insert(self, tag: int) -> None:
        """Record a fill of ``tag`` (tag is not currently resident)."""

    def evict(self) -> int:
        """Choose and remove the victim tag."""

    def remove(self, tag: int) -> None:
        """Remove ``tag`` (external invalidation)."""

    def __len__(self) -> int: ...


class LRUPolicy:
    """Least-recently-used, the default for every level."""

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: List[int] = []   # least-recent first

    def touch(self, tag: int) -> None:
        order = self._order
        if order[-1] != tag:        # already most-recent: nothing to move
            order.remove(tag)
            order.append(tag)

    def insert(self, tag: int) -> None:
        self._order.append(tag)

    def evict(self) -> int:
        return self._order.pop(0)

    def remove(self, tag: int) -> None:
        self._order.remove(tag)

    def __len__(self) -> int:
        return len(self._order)


class FIFOPolicy:
    """First-in-first-out: insertion order, no hit promotion."""

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: List[int] = []

    def touch(self, tag: int) -> None:
        pass  # FIFO ignores hits

    def insert(self, tag: int) -> None:
        self._order.append(tag)

    def evict(self) -> int:
        return self._order.pop(0)

    def remove(self, tag: int) -> None:
        self._order.remove(tag)

    def __len__(self) -> int:
        return len(self._order)


class RandomPolicy:
    """Uniform random victim selection (seeded for determinism)."""

    __slots__ = ("_tags", "_rng")

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._tags: List[int] = []
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def touch(self, tag: int) -> None:
        pass

    def insert(self, tag: int) -> None:
        self._tags.append(tag)

    def evict(self) -> int:
        idx = int(self._rng.integers(len(self._tags)))
        return self._tags.pop(idx)

    def remove(self, tag: int) -> None:
        self._tags.remove(tag)

    def __len__(self) -> int:
        return len(self._tags)


_FACTORIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``fifo``/``random``)."""
    try:
        return _FACTORIES[name.lower()]()
    except KeyError:
        raise ConfigError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_FACTORIES)}") from None
