"""The reference ccFPGA architecture: VFMem directory, FMem cache, bitmap."""

from .agent import AgentConfig, EvictionSink, MemoryAgent
from .bitmap import DirtyBitmap
from .fmem import FMemCache, PageEviction
from .translation import RemoteLocation, RemoteTranslationMap

__all__ = [
    "AgentConfig",
    "DirtyBitmap",
    "EvictionSink",
    "FMemCache",
    "MemoryAgent",
    "PageEviction",
    "RemoteLocation",
    "RemoteTranslationMap",
]
