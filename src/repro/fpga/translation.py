"""Address translation metadata kept by the FPGA (paper section 4.4).

Two maps:

* **Remote translation** — a hashmap from VFMem slab-sized windows to
  (memory node, remote address).  KLib's resource manager writes it in
  shared memory when slabs are allocated; the FPGA only reads it, when
  fetching a missing page or writing dirty data back.
* **Local translation** — which VFMem pages are cached in FMem and in
  which frame; owned by :class:`repro.fpga.fmem.FMemCache`, but the
  lookup interface lives here so the agent has one translation facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..common import units
from ..common.errors import ConfigError, TranslationError
from ..cluster.slab import Slab


@dataclass(frozen=True, slots=True)
class RemoteLocation:
    """Where a VFMem byte lives in the rack."""

    node: str
    remote_addr: int


class RemoteTranslationMap:
    """VFMem ranges -> remote slabs; written by software, read by the FPGA.

    Lookups must be fast at page granularity, so the map indexes by
    slab-aligned VFMem offset.  All registered windows must be
    slab-sized and slab-aligned relative to the VFMem base.
    """

    def __init__(self, vfmem_base: int, slab_bytes: int) -> None:
        if slab_bytes <= 0 or slab_bytes % units.PAGE_4K:
            raise ConfigError(f"slab_bytes {slab_bytes} invalid")
        self.vfmem_base = vfmem_base
        self.slab_bytes = slab_bytes
        self._slots: Dict[int, Slab] = {}
        #: Replica slabs per slot (paper section 4.5, memory failures).
        self._replicas: Dict[int, List[Slab]] = {}

    def _slot_of(self, vfmem_addr: int) -> int:
        offset = vfmem_addr - self.vfmem_base
        if offset < 0:
            raise TranslationError(
                f"address {vfmem_addr:#x} below VFMem base")
        return offset // self.slab_bytes

    def bind(self, vfmem_addr: int, slab: Slab,
             replicas: Optional[List[Slab]] = None) -> None:
        """Map the slab-sized VFMem window at ``vfmem_addr`` to ``slab``."""
        if (vfmem_addr - self.vfmem_base) % self.slab_bytes:
            raise TranslationError(
                f"{vfmem_addr:#x} is not slab-aligned in VFMem")
        if slab.size != self.slab_bytes:
            raise ConfigError(
                f"slab size {slab.size} != map slab_bytes {self.slab_bytes}")
        slot = self._slot_of(vfmem_addr)
        if slot in self._slots:
            raise TranslationError(f"VFMem slot {slot} already bound")
        self._slots[slot] = slab
        if replicas:
            for replica in replicas:
                if replica.size != self.slab_bytes:
                    raise ConfigError("replica slab size mismatch")
            self._replicas[slot] = list(replicas)

    def rebind(self, vfmem_addr: int, slab: Slab,
               replicas: Optional[List[Slab]] = None) -> None:
        """Atomically repoint a bound window (replica promotion).

        The replication manager writes the new membership here after a
        failover, so the FPGA's next lookup — fetch or writeback —
        already routes to the promoted primary.
        """
        slot = self._slot_of(vfmem_addr)
        if slot not in self._slots:
            raise TranslationError(f"VFMem slot {slot} not bound")
        if slab.size != self.slab_bytes:
            raise ConfigError(
                f"slab size {slab.size} != map slab_bytes {self.slab_bytes}")
        self._slots[slot] = slab
        if replicas:
            for replica in replicas:
                if replica.size != self.slab_bytes:
                    raise ConfigError("replica slab size mismatch")
            self._replicas[slot] = list(replicas)
        else:
            self._replicas.pop(slot, None)

    def unbind(self, vfmem_addr: int) -> Tuple[Slab, List[Slab]]:
        """Remove a window's binding; returns (primary, replicas)."""
        slot = self._slot_of(vfmem_addr)
        try:
            slab = self._slots.pop(slot)
        except KeyError:
            raise TranslationError(f"VFMem slot {slot} not bound") from None
        return slab, self._replicas.pop(slot, [])

    def resolve(self, vfmem_addr: int) -> RemoteLocation:
        """Translate a VFMem byte address to its primary remote location."""
        slot = self._slot_of(vfmem_addr)
        slab = self._slots.get(slot)
        if slab is None:
            raise TranslationError(
                f"VFMem address {vfmem_addr:#x} has no remote backing")
        offset = (vfmem_addr - self.vfmem_base) % self.slab_bytes
        return RemoteLocation(node=slab.node,
                              remote_addr=slab.remote_range.start + offset)

    def resolve_replicas(self, vfmem_addr: int) -> List[RemoteLocation]:
        """All remote locations (primary first) for a VFMem address."""
        slot = self._slot_of(vfmem_addr)
        offset = (vfmem_addr - self.vfmem_base) % self.slab_bytes
        out = [self.resolve(vfmem_addr)]
        for replica in self._replicas.get(slot, []):
            out.append(RemoteLocation(
                node=replica.node,
                remote_addr=replica.remote_range.start + offset))
        return out

    @property
    def bound_slots(self) -> int:
        """Number of VFMem windows currently backed."""
        return len(self._slots)

    def bound_bytes(self) -> int:
        """Remote bytes reachable through the map (primary copies)."""
        return len(self._slots) * self.slab_bytes
