"""FMem: the FPGA-attached DRAM used as a page cache for VFMem.

Design points straight from the paper (section 4.4, "Local translation"):

* 4-way set associative, block size = page size — a tradeoff that keeps
  the VFMem->FMem translation metadata small and the lookup latency low;
* FMem always caches whole pages; CPU caches provide temporal locality,
  FMem provides spatial locality;
* the CPU never addresses FMem; only the FPGA's agent does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..common import units
from ..common.errors import ConfigError
from ..common.stats import Counter
from ..cache.setassoc import SetAssociativeCache
from ..mem.address import is_power_of_two


@dataclass(frozen=True)
class PageEviction:
    """A page pushed out of FMem to make room."""

    vfmem_page_addr: int     # byte address of the evicted page in VFMem


class FMemCache:
    """Page-granularity cache of VFMem contents held in FMem."""

    def __init__(self, capacity: int, page_size: int = units.PAGE_4K,
                 ways: int = 4, policy: str = "lru") -> None:
        if page_size % units.PAGE_4K:
            raise ConfigError(f"page size {page_size} not 4 KiB aligned")
        if capacity < page_size * ways:
            raise ConfigError(
                f"FMem capacity {capacity} too small for {ways} ways")
        sets = capacity // (page_size * ways)
        if not is_power_of_two(sets):
            # Shrink to the largest power-of-two set count; mirrors how
            # hardware would be provisioned.
            sets = 1 << (sets.bit_length() - 1)
            capacity = sets * page_size * ways
        self.page_size = page_size
        self._cache = SetAssociativeCache("FMem", capacity, page_size,
                                          ways, policy)
        self.counters = Counter()

    @property
    def capacity(self) -> int:
        """Usable FMem bytes (power-of-two set count enforced)."""
        return self._cache.capacity

    @property
    def num_frames(self) -> int:
        """Page frames available."""
        return self.capacity // self.page_size

    def lookup(self, vfmem_addr: int) -> bool:
        """Local translation: is the page holding ``vfmem_addr`` cached?

        Does not disturb replacement state (pure probe).
        """
        return self._cache.probe(vfmem_addr)

    def touch(self, vfmem_addr: int) -> Tuple[bool, Optional[PageEviction]]:
        """Access the page for ``vfmem_addr``; fill on miss.

        Returns ``(hit, eviction)``.  The dirty state of evicted pages
        is *not* tracked here — the dirty bitmap is authoritative at
        cache-line granularity, so FMem treats all fills as clean.
        """
        hit, eviction = self._cache.access(vfmem_addr, is_write=False)
        if hit:
            self.counters.add("hits")
            return True, None
        self.counters.add("fills")
        if eviction is not None:
            self.counters.add("evictions")
            return False, PageEviction(vfmem_page_addr=eviction.block_addr)
        return False, None

    def drop(self, vfmem_page_addr: int) -> bool:
        """Invalidate one cached page (after an explicit writeback)."""
        return self._cache.invalidate(vfmem_page_addr) is not None

    def resident_pages(self) -> List[int]:
        """VFMem byte addresses of all cached pages (sorted)."""
        return self._cache.resident_blocks()

    @property
    def occupancy_fraction(self) -> float:
        """Resident pages over total frames (watermark input)."""
        return self._cache.occupancy / self.num_frames

    def evict_lru(self, count: int) -> List[int]:
        """Drop up to ``count`` least-recently-used pages.

        Used by watermark-driven proactive eviction: making room ahead
        of demand keeps evictions off the fetch path entirely.  Returns
        the VFMem page addresses dropped (the caller writes back their
        dirty lines).
        """
        dropped: List[int] = []
        for lines, policy in zip(self._cache._lines, self._cache._policies):
            # Round-robin over sets, one LRU victim per pass, until the
            # budget is spent; good enough for a background reclaimer.
            if len(dropped) >= count:
                break
            if lines:
                victim = policy.evict()
                lines.pop(victim)
                self._cache._occupied -= 1
                dropped.append(victim * self.page_size)
                self.counters.add("proactive_evictions")
        remaining = count - len(dropped)
        if remaining > 0 and self._cache.occupancy > 0:
            dropped.extend(self.evict_lru(remaining))
        return dropped

    @property
    def occupancy(self) -> int:
        """Number of cached pages."""
        return self._cache.occupancy

    @property
    def hit_ratio(self) -> float:
        """Lifetime hit ratio of the page cache."""
        stats = self._cache.stats
        if stats.accesses == 0:
            return 0.0
        return stats.hits / stats.accesses
