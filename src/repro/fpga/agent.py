"""The FPGA memory agent: where coherence meets remote memory.

The agent owns the VFMem directory.  Every CPU cache-line request to
VFMem arrives here (paper section 4.3), and the agent implements the
two primitives:

* **cache-remote-data** — on a line FILL, consult FMem (local
  translation); on an FMem miss, resolve the page's remote location and
  fetch it over RDMA, with the *requested line returned to the CPU as
  soon as it arrives* while the rest of the page streams into FMem in
  the background.  No page faults, no TLB activity.
* **track-local-data** — on a DIRTY_WRITEBACK, set the line's bit in
  the dirty bitmap.  Optionally mark eagerly on UPGRADE.

FMem victims are handed to an eviction sink (Kona's Eviction Handler)
together with their dirty masks.  A next-page prefetcher models the
paper's observation that Kona re-enables hardware prefetching across
page boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..common import units
from ..common.clock import Account
from ..common.errors import ConfigError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.stats import Counter
from ..coherence.directory import Directory
from ..coherence.states import CoherenceEvent, EventKind, Protocol
from ..mem.address import AddressRange
from ..obs.trace import Tracer
from .bitmap import DirtyBitmap
from .fmem import FMemCache
from .prefetcher import NextPagePrefetcher, Prefetcher
from .translation import RemoteTranslationMap


#: Callback invoked when FMem evicts a page: (vfmem_page_addr, dirty_mask).
EvictionSink = Callable[[int, int], None]


@dataclass
class AgentConfig:
    """Tunables of the memory agent."""

    fetch_block: int = units.PAGE_4K   # bytes fetched per FMem fill (Fig 8d)
    prefetch_next_page: bool = False   # sequential next-page prefetcher
    eager_upgrade_tracking: bool = False  # mark dirty on UPGRADE, not PutM

    def __post_init__(self) -> None:
        if self.fetch_block < units.CACHE_LINE:
            raise ConfigError("fetch block smaller than a cache line")
        if self.fetch_block % units.CACHE_LINE:
            raise ConfigError("fetch block must be line aligned")


class MemoryAgent:
    """The FPGA bitstream: VFMem directory + FMem cache + dirty bitmap."""

    def __init__(self, vfmem: AddressRange, fmem: FMemCache,
                 translation: RemoteTranslationMap,
                 latency: LatencyModel = DEFAULT_LATENCY,
                 config: Optional[AgentConfig] = None,
                 remote_read_ns: Optional[Callable[[str, int], float]] = None,
                 locate: Optional[Callable[[int], "object"]] = None,
                 prefetcher: Optional[Prefetcher] = None,
                 protocol: Protocol = Protocol.MESI,
                 tracer: Optional[Tracer] = None) -> None:
        self.vfmem = vfmem
        self.fmem = fmem
        self.translation = translation
        self.latency = latency
        self.config = config if config is not None else AgentConfig()
        self.directory = Directory(vfmem, protocol=protocol)
        self.directory.subscribe(self._on_event,
                                 on_batch=self._on_event_batch)
        self.bitmap = DirtyBitmap(page_size=fmem.page_size)
        self.account = Account()
        self.counters = Counter()
        self.tracer = tracer
        self._eviction_sinks: List[EvictionSink] = []
        self._last_access_ns = 0.0
        # Causal fault capture (runtime.attach_causal_capture): the
        # demand-fill path emits one record per serve when attached.
        self._capture = None
        # Pluggable remote read cost (node, nbytes) -> ns; defaults to a
        # linked RDMA read on the latency model.
        self._remote_read_ns = (
            remote_read_ns if remote_read_ns is not None
            else lambda node, nbytes: latency.rdma_transfer_ns(
                nbytes, linked=True, signaled=True))
        # Pluggable location resolver: the runtime injects a
        # failure-aware resolver that fails over to replicas.
        self._locate = locate if locate is not None else translation.resolve
        # Pluggable prefetch policy; the config flag keeps the classic
        # next-page behaviour as the default when enabled.
        if prefetcher is not None:
            self._prefetcher: Optional[Prefetcher] = prefetcher
        elif self.config.prefetch_next_page:
            self._prefetcher = NextPagePrefetcher()
        else:
            self._prefetcher = None

    # -- wiring ---------------------------------------------------------------------

    def on_page_eviction(self, sink: EvictionSink) -> None:
        """Register an eviction sink (the runtime's Eviction Handler)."""
        self._eviction_sinks.append(sink)

    @property
    def last_access_ns(self) -> float:
        """Critical-path latency of the most recent directory event."""
        return self._last_access_ns

    # -- event handling --------------------------------------------------------------

    def _on_event(self, event: CoherenceEvent) -> None:
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        if event.kind is EventKind.FILL:
            if tracing:
                # The fill span nests its RDMA read and any eviction it
                # triggers; the critical-path cost is charged explicitly
                # because the sim clock does not advance in here.
                with tracer.span("fetch.fill", "fetch",
                                 line=event.line_addr) as span:
                    cost = self._serve_fill(event.line_addr)
                    span.extend(cost)
                    span.set(critical_ns=round(cost, 1))
                self._last_access_ns = cost
            else:
                self._last_access_ns = self._serve_fill(event.line_addr)
        elif event.kind is EventKind.DIRTY_WRITEBACK:
            self.bitmap.mark_line(event.line_addr)
            self.counters.add("writebacks_tracked")
            if tracing:
                tracer.instant("coherence.writeback", "coherence",
                               line=event.line_addr)
            self._last_access_ns = 0.0   # off the critical path
        elif event.kind is EventKind.UPGRADE:
            if self.config.eager_upgrade_tracking:
                self.bitmap.mark_line(event.line_addr)
            self.counters.add("upgrades_seen")
            if tracing:
                tracer.instant("coherence.upgrade", "coherence",
                               line=event.line_addr)
            self._last_access_ns = self.latency.coherence_msg_ns
        elif event.kind is EventKind.SNOOPED:
            self.bitmap.mark_line(event.line_addr)
            self.counters.add("lines_snooped")
            self._last_access_ns = self.latency.snoop_ns

    def _on_event_batch(self, events: List[CoherenceEvent]) -> None:
        """Bulk handler for the directory's batched writeback drain.

        ``put_modified_many`` only batches DIRTY_WRITEBACK events, which
        lets tracking take the bulk bitmap path; anything else falls
        back to the per-event handler.
        """
        if any(e.kind is not EventKind.DIRTY_WRITEBACK for e in events):
            for event in events:
                self._on_event(event)
            return
        self.bitmap.mark_lines([e.line_addr for e in events])
        self.counters.add("writebacks_tracked", len(events))
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            for event in events:
                tracer.instant("coherence.writeback", "coherence",
                               line=event.line_addr)
        self._last_access_ns = 0.0   # off the critical path

    def _serve_fill(self, line_addr: int) -> float:
        """Serve a CPU line request from FMem or remote memory."""
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        if self.fmem.lookup(line_addr):
            self.fmem.touch(line_addr)   # LRU promotion
            self.counters.add("fmem_hits")
            cost = self.latency.fmem_ns
            self.account.charge("fmem_hit", cost)
            cap = self._capture
            if cap is not None:
                cap.record(cap.seq, line_addr, None, 0, 0.0, 0.0, cost)
            if tracing:
                tracer.emit("fetch.fmem_hit", cost, "fetch")
            # Stream detection also fires on hits — that is what keeps
            # a sequential scan ahead of the fetch engine.
            self._maybe_prefetch(line_addr)
            return cost
        # FMem miss: fetch the page's block from its memory node.  The
        # remote location is resolved *before* allocating an FMem frame
        # so a failed fetch cannot leave a dataless page resident.  The
        # requested line unblocks the CPU after one line-sized transfer;
        # the remainder of the block streams in behind it.
        self.counters.add("remote_fetches")
        location = self._locate(line_addr)
        _, eviction = self.fmem.touch(line_addr)
        if eviction is not None:
            self._evict_page(eviction.vfmem_page_addr)
        read_ns = self._remote_read_ns(location.node, units.CACHE_LINE)
        critical = self.latency.coherence_msg_ns + read_ns
        cap = self._capture
        if cap is not None:
            cap.record(cap.seq, line_addr, location.node, 1,
                       self.latency.coherence_msg_ns, read_ns, 0.0)
        if tracing:
            tracer.emit("rdma.read", read_ns, "rdma", node=location.node,
                        nbytes=units.CACHE_LINE)
        remainder = max(self.config.fetch_block - units.CACHE_LINE, 0)
        if remainder:
            fill = self.latency.rdma_per_byte_ns * remainder
            self.account.charge("fill_background", fill)
        self.account.charge("remote_fetch", critical)
        self._maybe_prefetch(line_addr)
        return critical

    def _maybe_prefetch(self, line_addr: int) -> None:
        if self._prefetcher is None:
            return
        page_index = line_addr // self.fmem.page_size
        for target in self._prefetcher.on_access(page_index):
            self._prefetch_page(target)

    def _prefetch_page(self, page_index: int) -> None:
        page_addr = page_index * self.fmem.page_size
        if page_addr not in self.vfmem:
            return
        if self.fmem.lookup(page_addr):
            return
        try:
            self.translation.resolve(page_addr)
        except Exception:
            return   # page not backed; nothing to prefetch
        _, eviction = self.fmem.touch(page_addr)
        if eviction is not None:
            self._evict_page(eviction.vfmem_page_addr)
        self.counters.add("pages_prefetched")
        fill = self.latency.rdma_per_byte_ns * self.config.fetch_block
        self.account.charge("prefetch_background", fill)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit("fetch.prefetch", fill, "fetch",
                             page=page_index)

    def proactive_evict(self, count: int,
                        evict_page: Optional[Callable[[int], None]] = None
                        ) -> int:
        """Background reclaim: drop ``count`` LRU pages from FMem.

        Keeps occupancy below the high watermark so demand fills never
        wait for a victim.  ``evict_page`` substitutes the per-page
        drain (the batched engine passes its fused, behaviourally
        identical one).  Returns pages reclaimed.
        """
        if evict_page is None:
            evict_page = self._evict_page
        dropped = self.fmem.evict_lru(count)
        for page_addr in dropped:
            evict_page(page_addr)
        self.counters.add("proactive_reclaims", len(dropped))
        return len(dropped)

    def _evict_page(self, vfmem_page_addr: int) -> None:
        page = vfmem_page_addr // self.fmem.page_size
        # Snoop any still-cached modified lines so the writeback carries
        # the latest data (paper section 4.4).  The bulk drain performs
        # the same per-line transitions as 64 ``Directory.snoop`` calls
        # but skips the Python call overhead on untracked lines.
        self.directory.snoop_page(vfmem_page_addr, self.fmem.page_size)
        mask = self.bitmap.clear_page(page)
        self.counters.add("pages_evicted")
        for sink in self._eviction_sinks:
            sink(vfmem_page_addr, mask)
