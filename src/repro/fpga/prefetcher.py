"""Prefetch policies for the FPGA fetch engine.

The paper's observation (sections 3, 4.4): page faults serialize
execution and hardware prefetchers cannot cross a faulting page
boundary, so page-based remote memory forfeits prefetching entirely.
Kona's fault-free path re-enables it — and then the *policy* matters.

Three policies, ordered by sophistication:

* :class:`NextPagePrefetcher` — fetch page N+1 on an access to page N
  (the classic next-line scheme; what the agent's built-in flag does);
* :class:`StridePrefetcher` — detect a constant page stride from the
  last accesses and fetch ahead along it;
* :class:`LeapPrefetcher` — the majority-trend algorithm of Leap
  (Maruf & Chowdhury, ATC'20, the paper's reference [57]): keep a
  window of recent deltas, find the majority delta, and prefetch a
  growing number of pages along it while the trend holds.

Policies see the page-access stream and return page indices to
prefetch; the agent fills FMem with them off the critical path.
"""

from __future__ import annotations

from collections import Counter as _Counter
from collections import deque
from typing import Deque, List, Optional, Protocol

from ..common.errors import ConfigError


class Prefetcher(Protocol):
    """Page-prefetch policy interface."""

    def on_access(self, page: int) -> List[int]:
        """Observe an accessed page; return pages to prefetch."""


class NoPrefetcher:
    """The do-nothing policy (what page-based systems are stuck with)."""

    def on_access(self, page: int) -> List[int]:
        return []


class NextPagePrefetcher:
    """Fetch page N+1 whenever page N is accessed."""

    def __init__(self, depth: int = 1) -> None:
        if depth < 1:
            raise ConfigError("depth must be >= 1")
        self.depth = depth
        self._last: Optional[int] = None

    def on_access(self, page: int) -> List[int]:
        if page == self._last:
            return []
        self._last = page
        return [page + i for i in range(1, self.depth + 1)]


class StridePrefetcher:
    """Constant-stride detection over the last few accesses."""

    def __init__(self, depth: int = 2, confirm: int = 2) -> None:
        if depth < 1 or confirm < 1:
            raise ConfigError("depth and confirm must be >= 1")
        self.depth = depth
        self.confirm = confirm
        self._last: Optional[int] = None
        self._stride: Optional[int] = None
        self._confidence = 0

    def on_access(self, page: int) -> List[int]:
        out: List[int] = []
        if self._last is not None:
            delta = page - self._last
            if delta != 0:
                if delta == self._stride:
                    self._confidence = min(self._confidence + 1,
                                           self.confirm)
                else:
                    self._stride = delta
                    self._confidence = 1
                if self._confidence >= self.confirm:
                    out = [page + self._stride * i
                           for i in range(1, self.depth + 1)]
        self._last = page
        return out


class LeapPrefetcher:
    """Majority-trend prefetching (Leap, ATC'20).

    Keeps a sliding window of recent access deltas; if one delta holds
    a strict majority of the window, prefetches along it with a window
    that doubles while the trend keeps winning (capped), and resets on
    trend loss — this is what lets Leap survive the short irregular
    bursts that break a rigid stride detector.
    """

    def __init__(self, window: int = 8, max_depth: int = 8) -> None:
        if window < 2 or max_depth < 1:
            raise ConfigError("window must be >= 2 and max_depth >= 1")
        self.window = window
        self.max_depth = max_depth
        self._deltas: Deque[int] = deque(maxlen=window)
        self._last: Optional[int] = None
        self._depth = 1

    def on_access(self, page: int) -> List[int]:
        out: List[int] = []
        if self._last is not None:
            delta = page - self._last
            if delta != 0:
                self._deltas.append(delta)
                majority = self._majority_delta()
                if majority is not None:
                    out = [page + majority * i
                           for i in range(1, self._depth + 1)]
                    self._depth = min(self._depth * 2, self.max_depth)
                else:
                    self._depth = 1
        self._last = page
        return out

    def _majority_delta(self) -> Optional[int]:
        if len(self._deltas) < 2:
            return None
        delta, count = _Counter(self._deltas).most_common(1)[0]
        if count * 2 > len(self._deltas):
            return delta
        return None


PREFETCHERS = {
    "none": NoPrefetcher,
    "next-page": NextPagePrefetcher,
    "stride": StridePrefetcher,
    "leap": LeapPrefetcher,
}


def make_prefetcher(name: str, **kwargs) -> Prefetcher:
    """Instantiate a prefetch policy by name."""
    try:
        return PREFETCHERS[name](**kwargs)
    except KeyError:
        raise ConfigError(
            f"unknown prefetcher {name!r}; choose from "
            f"{sorted(PREFETCHERS)}") from None
