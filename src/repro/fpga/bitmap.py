"""Per-cache-line dirty bitmap — the `track-local-data` primitive's state.

A 4 KB page has exactly 64 cache lines, so one Python int per page is a
full bitmask.  The FPGA sets a bit on every dirty writeback it observes
(paper section 4.3); the eviction handler reads and clears masks when
it writes pages out.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..common import units
from ..common.errors import AddressError
from ..common.stats import Counter

_FULL_PAGE_MASK = (1 << units.LINES_PER_PAGE) - 1


class DirtyBitmap:
    """Cache-line-granularity dirty tracking over an address space."""

    def __init__(self, page_size: int = units.PAGE_4K) -> None:
        if page_size % units.PAGE_4K:
            raise AddressError(f"page size {page_size} not 4 KiB aligned")
        self.page_size = page_size
        self.lines_per_page = page_size // units.CACHE_LINE
        self._masks: Dict[int, int] = {}
        self.counters = Counter()

    def mark_line(self, line_addr: int) -> None:
        """Set the dirty bit for the line at byte address ``line_addr``."""
        if line_addr % units.CACHE_LINE:
            raise AddressError(f"{line_addr:#x} not line aligned")
        page, offset = divmod(line_addr, self.page_size)
        bit = 1 << (offset // units.CACHE_LINE)
        # setdefault resolves lookup and first-touch insert in one dict
        # operation; the second store only happens when the bit is new.
        prev = self._masks.setdefault(page, bit)
        if not prev & bit:
            self._masks[page] = prev | bit
        self.counters.add("lines_marked")

    def mark_lines(self, line_addrs) -> None:
        """Bulk :meth:`mark_line` over an iterable of byte addresses.

        One counter update and locally bound dict ops per call; the
        batched writeback drain (``Directory.put_modified_many``) feeds
        whole eviction/flush batches through here.
        """
        if isinstance(line_addrs, np.ndarray):
            line_addrs = line_addrs.tolist()
        masks = self._masks
        page_size = self.page_size
        line = units.CACHE_LINE
        count = 0
        for line_addr in line_addrs:
            if line_addr % line:
                raise AddressError(f"{line_addr:#x} not line aligned")
            page, offset = divmod(line_addr, page_size)
            bit = 1 << (offset // line)
            prev = masks.setdefault(page, bit)
            if not prev & bit:
                masks[page] = prev | bit
            count += 1
        if count:
            self.counters.add("lines_marked", count)

    def page_mask(self, page: int) -> int:
        """Dirty-line bitmask for page index ``page`` (0 if clean)."""
        return self._masks.get(page, 0)

    def dirty_lines_of(self, page: int) -> List[int]:
        """Byte addresses of the dirty lines in ``page`` (sorted)."""
        mask = self._masks.get(page, 0)
        base = page * self.page_size
        return [base + i * units.CACHE_LINE
                for i in range(self.lines_per_page) if mask & (1 << i)]

    def dirty_line_count(self, page: int) -> int:
        """Popcount of the page's dirty mask."""
        return self._masks.get(page, 0).bit_count()

    def is_fully_dirty(self, page: int) -> bool:
        """True if every line of the page is dirty (whole-page writeback
        is then cheaper than a cache-line log)."""
        return (self._masks.get(page, 0) & _FULL_PAGE_MASK) == _FULL_PAGE_MASK

    def clear_page(self, page: int) -> int:
        """Clear and return the page's mask (eviction consumed it)."""
        mask = self._masks.pop(page, 0)
        if mask:
            self.counters.add("pages_cleared")
        return mask

    def dirty_pages(self) -> Iterator[int]:
        """Page indices with at least one dirty line."""
        return (p for p, m in self._masks.items() if m)

    def total_dirty_lines(self) -> int:
        """Dirty lines across the whole bitmap."""
        return sum(m.bit_count() for m in self._masks.values())

    def total_dirty_bytes(self) -> int:
        """Dirty bytes at cache-line granularity."""
        return self.total_dirty_lines() * units.CACHE_LINE

    def segments_of(self, page: int) -> List[Tuple[int, int]]:
        """Contiguous dirty runs in a page as ``(first_line, length)``.

        Contiguity drives the RDMA transfer strategy (paper section 6.4
        and Figure 3).
        """
        mask = self._masks.get(page, 0)
        segments: List[Tuple[int, int]] = []
        i = 0
        while i < self.lines_per_page:
            if mask & (1 << i):
                start = i
                while i < self.lines_per_page and mask & (1 << i):
                    i += 1
                segments.append((start, i - start))
            else:
                i += 1
        return segments
