"""Chaos engineering for the Kona runtime (paper section 4.5).

Deterministic fault-injection campaigns: a seeded
:class:`~repro.chaos.engine.ChaosEngine` scripts node crashes,
recoveries, link delays, flaky links and partitions on the simulated
clock, drives an access stream through a live
:class:`~repro.kona.runtime.KonaRuntime`, and checks the recovery
invariants the paper's failure story promises — no acknowledged dirty
line lost, full drain on recovery, AMAT back to baseline.
"""

from .engine import CampaignResult, ChaosEngine
from .invariants import (
    InvariantCheck,
    amat_recovered,
    check_all,
    epochs_monotonic,
    fully_recovered,
    no_acknowledged_write_lost,
    no_scatter_loss,
    no_unrepaired_corruption,
    replication_restored,
    writeback_conservation,
)

__all__ = [
    "CampaignResult",
    "ChaosEngine",
    "InvariantCheck",
    "amat_recovered",
    "check_all",
    "epochs_monotonic",
    "fully_recovered",
    "no_acknowledged_write_lost",
    "no_scatter_loss",
    "no_unrepaired_corruption",
    "replication_restored",
    "writeback_conservation",
]
