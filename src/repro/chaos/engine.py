"""The fault-campaign engine: scripted chaos on the simulated clock.

A campaign is a :class:`~repro.net.fabric.FaultSchedule` of labelled
injections — node crashes and recoveries, link delays, flaky links,
partitions, slow-node jitter — plus an access stream to drive through
the runtime while the faults land.  Everything is keyed to the
*simulated* clock and every random draw (flaky drops, retry jitter)
comes from a seeded RNG, so a campaign replays byte-identically for the
same seed: the property the determinism tests pin down.

The engine advances the fabric clock by the application's compute time
per access (unlike :meth:`KonaRuntime.run_trace`, which bills compute
in one lump at the end) so that fault timestamps interleave with the
access stream the way wall-clock faults would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..common.errors import NodeFailure
from ..kona.failures import MachineCheckException
from ..kona.runtime import KonaRuntime
from ..kona.telemetry import TelemetrySnapshot, snapshot
from ..net.fabric import FaultSchedule
from .invariants import InvariantCheck, check_all


@dataclass
class CampaignResult:
    """Everything a finished campaign measured."""

    seed: int
    accesses: int
    faulted_accesses: int
    timeline: List[Tuple[float, str]]
    window_amat_ns: List[Tuple[float, float]]   # (window-end ns, AMAT ns)
    pre_fault_amat_ns: float
    post_recovery_amat_ns: float
    invariants: List[InvariantCheck] = field(default_factory=list)
    telemetry: Optional[TelemetrySnapshot] = None
    # (ns, state, context) per health transition.  Context comes from
    # any providers attached to the monitor (e.g. the SLO engine's
    # firing alerts); kept out of fingerprint() so alert wiring never
    # perturbs the determinism checks.
    health_transitions: List[Tuple[float, str, Dict[str, object]]] = \
        field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every recovery invariant held."""
        return all(check.passed for check in self.invariants)

    def fingerprint(self) -> str:
        """Canonical byte string of everything observable.

        Two runs of the same campaign with the same seed must produce
        identical fingerprints; different seeds must not (used by the
        determinism tests).
        """
        flat = self.telemetry.flat() if self.telemetry else {}
        parts = [f"seed={self.seed}", f"accesses={self.accesses}",
                 f"faulted={self.faulted_accesses}"]
        parts += [f"{t:.3f}:{label}" for t, label in self.timeline]
        parts += [f"{t:.3f}={amat:.6f}" for t, amat in self.window_amat_ns]
        parts += [f"{k}={v}" for k, v in sorted(flat.items())]
        return "\n".join(parts)

    def rows(self) -> List[Tuple[str, object]]:
        """(metric, value) rows for the CLI report."""
        out: List[Tuple[str, object]] = [
            ("accesses", self.accesses),
            ("faulted_accesses", self.faulted_accesses),
            ("pre_fault_amat_ns", round(self.pre_fault_amat_ns, 1)),
            ("post_recovery_amat_ns",
             round(self.post_recovery_amat_ns, 1)),
        ]
        for check in self.invariants:
            out.append((f"invariant:{check.name}",
                        "PASS" if check.passed else "FAIL"))
        return out


class ChaosEngine:
    """Drives one runtime through a scripted fault campaign."""

    def __init__(self, runtime: KonaRuntime, seed: int = 0,
                 amat_tolerance: float = 0.25) -> None:
        self.runtime = runtime
        self.seed = seed
        self.amat_tolerance = amat_tolerance
        self.schedule = FaultSchedule()
        self.timeline: List[Tuple[float, str]] = []
        self._first_fault_ns: Optional[float] = None
        self._recover_requested = False

    # -- campaign scripting ------------------------------------------------------

    def kill_node(self, at_ns: float, node: str) -> None:
        """Crash a memory node at ``at_ns`` (simulated).

        With replication on, the crash immediately triggers the
        controller's failover path: backups are promoted (after the
        lease fence) and parked writebacks are redirected.
        """
        def action() -> None:
            self.runtime.controller.node(node).fail()
            self.runtime.on_memnode_failure(node)
        self._mark_fault(at_ns)
        self.schedule.at(at_ns, f"kill:{node}", action)

    def corrupt_data(self, at_ns: float, node: str, lines: int) -> None:
        """Silently corrupt stored lines on a memnode (bit rot).

        Payload bits flip without updating checksums, so the damage is
        latent until a fetch-time verify or the recovery scrub catches
        it and read-repairs from a replica.
        """
        self._mark_fault(at_ns)
        self.schedule.at(
            at_ns, f"corrupt:{node}:{lines}",
            lambda: self.runtime.controller.node(node).corrupt_lines(
                lines, seed=self.seed))

    def recover_node(self, at_ns: float, node: str) -> None:
        """Restart a crashed node; the engine then runs recovery."""
        def action() -> None:
            self.runtime.controller.node(node).recover()
            self._recover_requested = True
        self.schedule.at(at_ns, f"recover:{node}", action)

    def delay_link(self, at_ns: float, src: str, dst: str,
                   extra_ns: float) -> None:
        """Inject fixed latency on a link direction."""
        self._mark_fault(at_ns)
        self.schedule.at(
            at_ns, f"delay:{src}->{dst}:{extra_ns:.0f}",
            lambda: self.runtime.fabric.delay_link(src, dst, extra_ns))

    def clear_delay(self, at_ns: float, src: str, dst: str) -> None:
        """Retract an injected link delay."""
        self.schedule.at(at_ns, f"clear_delay:{src}->{dst}",
                         lambda: self.runtime.fabric.clear_delay(src, dst))

    def flaky_link(self, at_ns: float, src: str, dst: str,
                   drop_rate: float) -> None:
        """Make a link drop transfers probabilistically (seeded)."""
        self._mark_fault(at_ns)
        self.schedule.at(
            at_ns, f"flaky:{src}->{dst}:{drop_rate}",
            lambda: self.runtime.fabric.set_flaky(src, dst, drop_rate,
                                                  seed=self.seed))

    def clear_flaky(self, at_ns: float, src: str, dst: str) -> None:
        """Make a flaky link reliable again."""
        def action() -> None:
            self.runtime.fabric.clear_flaky(src, dst)
            self._recover_requested = True
        self.schedule.at(at_ns, f"clear_flaky:{src}->{dst}", action)

    def slow_node(self, at_ns: float, node: str,
                  mean_extra_ns: float) -> None:
        """Add seeded exponential jitter to a node's transfers."""
        self._mark_fault(at_ns)
        self.schedule.at(
            at_ns, f"slow:{node}:{mean_extra_ns:.0f}",
            lambda: self.runtime.fabric.set_node_jitter(
                node, mean_extra_ns, seed=self.seed))

    def clear_slow_node(self, at_ns: float, node: str) -> None:
        """Remove slow-node jitter."""
        self.schedule.at(at_ns, f"clear_slow:{node}",
                         lambda: self.runtime.fabric.clear_node_jitter(node))

    def partition(self, at_ns: float, group_a: List[str],
                  group_b: List[str]) -> None:
        """Cut the fabric between two node groups."""
        self._mark_fault(at_ns)
        self.schedule.at(
            at_ns, f"partition:{'|'.join(group_a)}/{'|'.join(group_b)}",
            lambda: self.runtime.fabric.partition(group_a, group_b))

    def heal_partition(self, at_ns: float) -> None:
        """Heal every partition cut."""
        def action() -> None:
            self.runtime.fabric.heal_partition()
            self._recover_requested = True
        self.schedule.at(at_ns, "heal_partition", action)

    def pressure(self, at_ns: float, pages: int) -> None:
        """Force-evict ``pages`` LRU pages (a memory-pressure burst).

        Campaigns pair this with a node kill so the failure provably
        lands *mid-eviction*: dirty pages homed on the dead node must
        requeue rather than vanish.
        """
        self.schedule.at(
            at_ns, f"pressure:{pages}",
            lambda: self.runtime.agent.proactive_evict(pages))

    def _mark_fault(self, at_ns: float) -> None:
        if self._first_fault_ns is None or at_ns < self._first_fault_ns:
            self._first_fault_ns = at_ns

    # -- the drive loop ----------------------------------------------------------

    def run(self, addrs: np.ndarray, writes: np.ndarray,
            window: int = 1024) -> CampaignResult:
        """Execute the access stream under the scripted faults.

        Accesses that die on the fallback path (all replicas down) are
        charged the coherence-timeout penalty and counted, matching the
        paper's degrade-don't-wedge story.  AMAT is sampled per
        ``window`` accesses; the pre-fault baseline is the mean of the
        windows that completed before the first fault fired, and the
        post-recovery figure is the final window.
        """
        rt = self.runtime
        clock = rt.fabric.clock
        tracer = rt.obs.tracer
        faulted = 0
        window_stall = 0.0
        window_count = 0
        window_amat: List[Tuple[float, float]] = []
        for i, (addr, is_write) in enumerate(zip(addrs.tolist(),
                                                 writes.tolist())):
            for label in self.schedule.fire_due(clock.now):
                self.timeline.append((clock.now, label))
                if tracer.enabled:
                    tracer.instant(f"fault.{label}", "chaos")
            if self._recover_requested:
                self._recover_requested = False
                rt.recover()
                self.timeline.append((clock.now, "runtime_recovered"
                                      if rt.health.healthy
                                      else "runtime_recovering"))
            try:
                stall = rt.access(int(addr), bool(is_write))
            except (NodeFailure, MachineCheckException):
                # Degrade, don't wedge: software waits out the timeout.
                faulted += 1
                stall = rt.failures.coherence_timeout_ns
                clock.advance(stall)
                rt.account.charge("fault_fallback", stall)
            clock.advance(rt.app_ns_per_access)
            window_stall += stall + rt.app_ns_per_access
            window_count += 1
            if window_count == window:
                window_amat.append((clock.now, window_stall / window_count))
                window_stall = 0.0
                window_count = 0
            if i & 0xFF == 0:
                rt.maybe_evict()
                rt.obs.tick()
        if window_count:
            window_amat.append((clock.now, window_stall / window_count))
        # Fire any events scheduled past the end of the stream, then
        # settle: a recovery scheduled late must still drain.
        while self.schedule.pending:
            next_at = self.schedule.next_at()
            clock.advance_to(max(clock.now, next_at))
            for label in self.schedule.fire_due(clock.now):
                self.timeline.append((clock.now, label))
                if tracer.enabled:
                    tracer.instant(f"fault.{label}", "chaos")
        if self._recover_requested or not rt.health.healthy:
            self._recover_requested = False
            rt.recover()
            self.timeline.append((clock.now, "runtime_recovered"
                                  if rt.health.healthy
                                  else "runtime_recovering"))
        rt.account.charge("app_compute", rt.app_ns_per_access * addrs.size)
        pre, post = self._baseline_and_final(window_amat)
        result = CampaignResult(
            seed=self.seed,
            accesses=int(addrs.size),
            faulted_accesses=faulted,
            timeline=list(self.timeline),
            window_amat_ns=window_amat,
            pre_fault_amat_ns=pre,
            post_recovery_amat_ns=post,
        )
        result.invariants = check_all(rt, pre, post,
                                      tolerance=self.amat_tolerance)
        result.telemetry = snapshot(rt)
        result.health_transitions = list(rt.health.annotated_transitions)
        return result

    def _baseline_and_final(
            self, window_amat: List[Tuple[float, float]]) -> Tuple[float, float]:
        if not window_amat:
            return 0.0, 0.0
        first_fault = self._first_fault_ns
        pre = [amat for t, amat in window_amat
               if first_fault is None or t <= first_fault]
        if not pre:
            pre = [window_amat[0][1]]
        return sum(pre) / len(pre), window_amat[-1][1]
