"""Recovery invariants a chaos campaign must uphold (section 4.5).

Each check inspects a live runtime (or measured AMAT series) and
returns an :class:`InvariantCheck` with a human-readable detail string,
so a failing campaign explains *which* durability promise broke.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..kona.health import HealthState


@dataclass(frozen=True)
class InvariantCheck:
    """One verified (or violated) recovery property."""

    name: str
    passed: bool
    detail: str


def writeback_conservation(runtime) -> InvariantCheck:
    """Every dirty line enqueued is delivered, staged, or parked.

    This is the paper's "no data lost" claim in ledger form: lines
    enter the eviction handler exactly once and must be accounted for
    at all times — delivery to a memory node, the staging batch, or the
    pending-writeback park.  Any imbalance means a line fell on the
    floor.
    """
    eviction = runtime.eviction
    enqueued = eviction.counters["lines_enqueued"]
    delivered = eviction.counters["records_delivered"]
    accounted = delivered + eviction.pending_records + eviction.parked_records
    return InvariantCheck(
        name="writeback_conservation",
        passed=enqueued == accounted,
        detail=(f"enqueued={enqueued} delivered={delivered} "
                f"pending={eviction.pending_records} "
                f"parked={eviction.parked_records}"))


def no_scatter_loss(runtime) -> InvariantCheck:
    """Every record acknowledged by eviction was scattered remotely."""
    delivered = runtime.eviction.counters["records_delivered"]
    scattered = sum(
        runtime.controller.node(name).counters["records_scattered"]
        for name in runtime.controller.nodes)
    return InvariantCheck(
        name="no_scatter_loss",
        passed=scattered == delivered,
        detail=f"delivered={delivered} scattered={scattered}")


def fully_recovered(runtime) -> InvariantCheck:
    """The runtime returned to HEALTHY with nothing left parked."""
    health = runtime.health
    parked = runtime.eviction.parked_records
    degraded = len(runtime.failures.degraded_pages)
    passed = (health.state is HealthState.HEALTHY
              and parked == 0 and degraded == 0)
    return InvariantCheck(
        name="fully_recovered",
        passed=passed,
        detail=(f"state={health.state.name} parked={parked} "
                f"degraded_pages={degraded} "
                f"mttr_ns={health.mttr_ns:.0f}"))


def amat_recovered(pre_fault_amat_ns: float, post_recovery_amat_ns: float,
                   tolerance: float = 0.25) -> InvariantCheck:
    """Post-recovery AMAT is within ``tolerance`` of the baseline."""
    if pre_fault_amat_ns <= 0:
        return InvariantCheck(name="amat_recovered", passed=False,
                              detail="no pre-fault baseline measured")
    ratio = post_recovery_amat_ns / pre_fault_amat_ns
    return InvariantCheck(
        name="amat_recovered",
        passed=ratio <= 1.0 + tolerance,
        detail=(f"pre={pre_fault_amat_ns:.1f}ns "
                f"post={post_recovery_amat_ns:.1f}ns ratio={ratio:.3f} "
                f"tolerance={tolerance:.2f}"))


def check_all(runtime, pre_fault_amat_ns: float,
              post_recovery_amat_ns: float,
              tolerance: float = 0.25) -> List[InvariantCheck]:
    """Run the full recovery-invariant suite against a runtime."""
    return [
        writeback_conservation(runtime),
        no_scatter_loss(runtime),
        fully_recovered(runtime),
        amat_recovered(pre_fault_amat_ns, post_recovery_amat_ns,
                       tolerance=tolerance),
    ]
