"""Recovery invariants a chaos campaign must uphold (section 4.5).

Each check inspects a live runtime (or measured AMAT series) and
returns an :class:`InvariantCheck` with a human-readable detail string,
so a failing campaign explains *which* durability promise broke.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..kona.health import HealthState


@dataclass(frozen=True)
class InvariantCheck:
    """One verified (or violated) recovery property."""

    name: str
    passed: bool
    detail: str


def writeback_conservation(runtime) -> InvariantCheck:
    """Every dirty line enqueued is delivered, staged, or parked.

    This is the paper's "no data lost" claim in ledger form: lines
    enter the eviction handler exactly once and must be accounted for
    at all times — delivery to a memory node, the staging batch, or the
    pending-writeback park.  Any imbalance means a line fell on the
    floor.
    """
    eviction = runtime.eviction
    enqueued = eviction.counters["lines_enqueued"]
    delivered = eviction.counters["records_delivered"]
    accounted = delivered + eviction.pending_records + eviction.parked_records
    return InvariantCheck(
        name="writeback_conservation",
        passed=enqueued == accounted,
        detail=(f"enqueued={enqueued} delivered={delivered} "
                f"pending={eviction.pending_records} "
                f"parked={eviction.parked_records}"))


def no_scatter_loss(runtime) -> InvariantCheck:
    """Every record acknowledged by eviction was scattered remotely."""
    delivered = runtime.eviction.counters["records_delivered"]
    scattered = sum(
        runtime.controller.node(name).counters["records_scattered"]
        for name in runtime.controller.nodes)
    return InvariantCheck(
        name="no_scatter_loss",
        passed=scattered == delivered,
        detail=f"delivered={delivered} scattered={scattered}")


def fully_recovered(runtime) -> InvariantCheck:
    """The runtime returned to HEALTHY with nothing left parked."""
    health = runtime.health
    parked = runtime.eviction.parked_records
    degraded = len(runtime.failures.degraded_pages)
    passed = (health.state is HealthState.HEALTHY
              and parked == 0 and degraded == 0)
    return InvariantCheck(
        name="fully_recovered",
        passed=passed,
        detail=(f"state={health.state.name} parked={parked} "
                f"degraded_pages={degraded} "
                f"mttr_ns={health.mttr_ns:.0f}"))


def amat_recovered(pre_fault_amat_ns: float, post_recovery_amat_ns: float,
                   tolerance: float = 0.25) -> InvariantCheck:
    """Post-recovery AMAT is within ``tolerance`` of the baseline."""
    if pre_fault_amat_ns <= 0:
        return InvariantCheck(name="amat_recovered", passed=False,
                              detail="no pre-fault baseline measured")
    ratio = post_recovery_amat_ns / pre_fault_amat_ns
    return InvariantCheck(
        name="amat_recovered",
        passed=ratio <= 1.0 + tolerance,
        detail=(f"pre={pre_fault_amat_ns:.1f}ns "
                f"post={post_recovery_amat_ns:.1f}ns ratio={ratio:.3f} "
                f"tolerance={tolerance:.2f}"))


def epochs_monotonic(runtime) -> InvariantCheck:
    """Every replica set's epoch history only ever increased.

    A non-monotonic epoch would mean two nodes could both believe they
    are primary for the same window — split brain, the failure the
    lease fence exists to rule out.
    """
    replication = runtime.replication
    return InvariantCheck(
        name="epochs_monotonic",
        passed=replication.epochs_monotonic(),
        detail=(f"max_epoch={replication.max_epoch} "
                f"promotions={replication.counters['promotions']}"))


def replication_restored(runtime) -> InvariantCheck:
    """The replication factor was rebuilt on live nodes everywhere."""
    replication = runtime.replication
    passed = (replication.fully_replicated()
              and replication.backlog_slots == 0)
    return InvariantCheck(
        name="replication_restored",
        passed=passed,
        detail=(f"factor={replication.replication_factor} "
                f"backlog_slots={replication.backlog_slots} "
                f"rereplicated={replication.counters['slots_rereplicated']}"))


def no_unrepaired_corruption(runtime) -> InvariantCheck:
    """Every checksum mismatch was read-repaired from a replica."""
    replication = runtime.replication
    mismatches = replication.counters["checksum_mismatches"]
    repairs = replication.counters["read_repairs"]
    unrepaired = replication.counters["unrepaired_corruption"]
    return InvariantCheck(
        name="no_unrepaired_corruption",
        passed=unrepaired == 0,
        detail=(f"mismatches={mismatches} repairs={repairs} "
                f"unrepaired={unrepaired}"))


def no_acknowledged_write_lost(runtime) -> InvariantCheck:
    """Every acknowledged writeback survives in the cluster image.

    The data plane remembers, per line, the highest version whose
    writeback a memory node acknowledged; the current primaries must
    hold each such line at that version or newer, with the payload the
    version implies.  This is the durability ledger the paper's
    replication design promises (section 4.5).
    """
    content = runtime.content
    replication = runtime.replication
    if content is None:
        return InvariantCheck(name="no_acknowledged_write_lost",
                              passed=True,
                              detail="no data plane attached (vacuous)")
    image = replication.image()
    lost = 0
    checked = 0
    for addr, acked_version in content.acknowledged.items():
        if acked_version < 1:
            continue
        checked += 1
        stored = image.get(addr)
        if stored is None or stored[0] < acked_version:
            lost += 1
    return InvariantCheck(
        name="no_acknowledged_write_lost",
        passed=lost == 0,
        detail=f"acked_lines={checked} lost={lost}")


def check_all(runtime, pre_fault_amat_ns: float,
              post_recovery_amat_ns: float,
              tolerance: float = 0.25) -> List[InvariantCheck]:
    """Run the full recovery-invariant suite against a runtime.

    The replication invariants only apply when the runtime actually
    carries a replication manager; an unreplicated runtime is judged on
    the base durability ledger alone.
    """
    checks = [
        writeback_conservation(runtime),
        no_scatter_loss(runtime),
        fully_recovered(runtime),
        amat_recovered(pre_fault_amat_ns, post_recovery_amat_ns,
                       tolerance=tolerance),
    ]
    if getattr(runtime, "replication", None) is not None:
        checks.extend([
            epochs_monotonic(runtime),
            replication_restored(runtime),
            no_unrepaired_corruption(runtime),
            no_acknowledged_write_lost(runtime),
        ])
    return checks
