"""Memory substrate: addresses, physical regions, page tables, TLBs."""

from .address import (
    AddressRange,
    align_down,
    align_up,
    is_power_of_two,
    line_in_page,
    line_index,
    line_indices,
    page_index,
    page_indices,
    word_indices,
)
from .pagetable import (
    FaultInfo,
    PageTable,
    PageTableEntry,
    Protection,
    raise_for_fault,
)
from .physical import AddressSpaceLayout, MemoryKind, PhysicalRegion
from .tlb import TLB, ShootdownModel

__all__ = [
    "AddressRange",
    "AddressSpaceLayout",
    "FaultInfo",
    "MemoryKind",
    "PageTable",
    "PageTableEntry",
    "PhysicalRegion",
    "Protection",
    "ShootdownModel",
    "TLB",
    "align_down",
    "align_up",
    "is_power_of_two",
    "line_in_page",
    "line_index",
    "line_indices",
    "page_index",
    "page_indices",
    "raise_for_fault",
    "word_indices",
]
