"""A set-associative TLB model with shootdown accounting.

Page-based remote-memory systems pay TLB costs twice: every protection
change (dirty-tracking round) and every eviction requires invalidating
entries, and on multi-core hosts that means inter-processor-interrupt
shootdowns.  Kona's data path never touches translations, so its TLB
behaviour is that of an ordinary local-memory application.

The TLB here is a single-level model; multi-level TLBs only change
constants, not the comparison the paper makes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..common import units
from ..common.errors import ConfigError
from ..common.stats import Counter
from .address import is_power_of_two


class TLB:
    """Set-associative translation lookaside buffer (LRU per set)."""

    def __init__(self, entries: int = 1536, ways: int = 12,
                 page_size: int = units.PAGE_4K) -> None:
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ConfigError(
                f"entries={entries} must be a positive multiple of ways={ways}")
        self.num_sets = entries // ways
        if not is_power_of_two(self.num_sets):
            raise ConfigError(f"number of sets {self.num_sets} must be a power of two")
        self.ways = ways
        self.page_size = page_size
        # Each set is an LRU-ordered list of VPNs (most recent last).
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._where: Dict[int, int] = {}
        self.counters = Counter()

    def _set_of(self, vpn: int) -> int:
        return vpn & (self.num_sets - 1)

    def lookup(self, vpn: int) -> bool:
        """Probe the TLB; True on hit.  Hits are LRU-promoted."""
        idx = self._where.get(vpn)
        if idx is None:
            self.counters.add("misses")
            return False
        entries = self._sets[idx]
        entries.remove(vpn)
        entries.append(vpn)
        self.counters.add("hits")
        return True

    def insert(self, vpn: int) -> Optional[int]:
        """Fill after a walk; returns the evicted VPN if a victim was chosen."""
        idx = self._set_of(vpn)
        entries = self._sets[idx]
        victim: Optional[int] = None
        if vpn in self._where:
            entries.remove(vpn)
        elif len(entries) >= self.ways:
            victim = entries.pop(0)
            del self._where[victim]
            self.counters.add("evictions")
        entries.append(vpn)
        self._where[vpn] = idx
        self.counters.add("fills")
        return victim

    def invalidate(self, vpn: int) -> bool:
        """Drop one translation (after a PTE change); True if it was cached."""
        idx = self._where.pop(vpn, None)
        self.counters.add("invalidations")
        if idx is None:
            return False
        self._sets[idx].remove(vpn)
        return True

    def flush(self) -> int:
        """Flush everything (full shootdown); returns entries dropped."""
        dropped = len(self._where)
        self._sets = [[] for _ in range(self.num_sets)]
        self._where.clear()
        self.counters.add("flushes")
        return dropped

    @property
    def occupancy(self) -> int:
        """Number of live translations."""
        return len(self._where)


class ShootdownModel:
    """Prices TLB shootdowns across the cores of a host.

    A shootdown interrupts every core that might cache the translation.
    The cost model is the initiating core's IPI send plus a per-core
    acknowledgment wait, matching measured Linux behaviour where cost
    scales with core count.
    """

    def __init__(self, num_cores: int = 8, ipi_base_ns: float = 1_500.0,
                 per_core_ns: float = 350.0) -> None:
        if num_cores <= 0:
            raise ConfigError(f"num_cores must be positive, got {num_cores}")
        self.num_cores = num_cores
        self.ipi_base_ns = ipi_base_ns
        self.per_core_ns = per_core_ns
        self.counters = Counter()

    def shootdown_ns(self, num_pages: int = 1) -> float:
        """Cost of invalidating ``num_pages`` translations everywhere.

        Batched invalidations share one IPI round; each page still pays
        an INVLPG on each core.
        """
        if num_pages <= 0:
            return 0.0
        self.counters.add("shootdowns")
        self.counters.add("pages_shot_down", num_pages)
        per_core = self.per_core_ns + 110.0 * num_pages
        return self.ipi_base_ns + per_core * (self.num_cores - 1)
