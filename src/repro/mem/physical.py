"""Physical memory regions: CMem, FMem, and the fake VFMem.

The reference architecture (paper section 4.3) distinguishes three
physical address spaces on the compute node:

* **CMem** — CPU-attached DRAM, holds everything Kona does not manage
  (stacks, code, kernel) plus the baselines' local page cache;
* **FMem** — FPGA-attached DRAM, used by Kona as a page-granularity
  cache for remote data (never exposed to the OS);
* **VFMem** — a *fake* physical address space exported by the FPGA,
  larger than FMem and backed by remote memory.  Applications' remote
  data is mapped here, so every CPU access to it passes through the
  FPGA's coherence directory.

:class:`PhysicalRegion` also supports carrying actual byte content
(a numpy array) so tools like KTracker can diff real data.  Content is
allocated lazily — most simulations only need the address math.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from ..common import units
from ..common.errors import AddressError, ConfigError
from .address import AddressRange


class MemoryKind(Enum):
    """Which of the architecture's physical memories a region models."""

    CMEM = "cmem"
    FMEM = "fmem"
    VFMEM = "vfmem"
    REMOTE = "remote"


@dataclass
class PhysicalRegion:
    """A contiguous physical memory region, optionally with backing bytes."""

    kind: MemoryKind
    range: AddressRange
    backed: bool = False
    _data: Optional[np.ndarray] = field(default=None, repr=False)

    @staticmethod
    def create(kind: MemoryKind, start: int, size: int,
               backed: bool = False) -> "PhysicalRegion":
        """Build a region of ``size`` bytes at physical address ``start``."""
        if size <= 0:
            raise ConfigError(f"region size must be positive, got {size}")
        if start % units.PAGE_4K != 0:
            raise ConfigError(f"region start {start:#x} not page aligned")
        return PhysicalRegion(kind=kind, range=AddressRange(start, size),
                              backed=backed)

    @property
    def size(self) -> int:
        """Capacity in bytes."""
        return self.range.size

    @property
    def num_pages(self) -> int:
        """Number of 4 KB pages the region holds."""
        return self.size // units.PAGE_4K

    def _ensure_data(self) -> np.ndarray:
        if not self.backed:
            raise AddressError(
                f"{self.kind.value} region is not content-backed")
        if self._data is None:
            self._data = np.zeros(self.size, dtype=np.uint8)
        return self._data

    def read(self, addr: int, size: int) -> np.ndarray:
        """Read ``size`` bytes of backing content starting at ``addr``."""
        offset = self.range.offset_of(addr)
        if offset + size > self.size:
            raise AddressError(f"read of {size} bytes at {addr:#x} overruns region")
        return self._ensure_data()[offset:offset + size]

    def write(self, addr: int, data: np.ndarray) -> None:
        """Write bytes into the backing content starting at ``addr``."""
        offset = self.range.offset_of(addr)
        data = np.asarray(data, dtype=np.uint8)
        if offset + data.size > self.size:
            raise AddressError(
                f"write of {data.size} bytes at {addr:#x} overruns region")
        self._ensure_data()[offset:offset + data.size] = data

    def snapshot(self) -> np.ndarray:
        """Copy of the whole backing content (KTracker-style snapshot)."""
        return self._ensure_data().copy()

    def view(self) -> np.ndarray:
        """Zero-copy view of the backing content."""
        return self._ensure_data()


class AddressSpaceLayout:
    """The compute node's physical layout: CMem low, VFMem high.

    VFMem is placed above CMem, mirroring how a ccFPGA would claim a
    window of the physical address map.  FMem has its own private space
    (the CPU never addresses it directly, paper section 4.3).
    """

    def __init__(self, cmem_size: int, fmem_size: int, vfmem_size: int,
                 backed: bool = False) -> None:
        for name, value in (("cmem", cmem_size), ("fmem", fmem_size),
                            ("vfmem", vfmem_size)):
            if value <= 0 or value % units.PAGE_4K:
                raise ConfigError(f"{name}_size must be a positive multiple "
                                  f"of 4 KiB, got {value}")
        if vfmem_size < fmem_size:
            raise ConfigError("VFMem must be at least as large as FMem "
                              "(it is the space FMem caches)")
        self.cmem = PhysicalRegion.create(MemoryKind.CMEM, 0, cmem_size,
                                          backed=backed)
        vf_start = AddressSpaceLayout._next_aligned(cmem_size)
        self.vfmem = PhysicalRegion.create(MemoryKind.VFMEM, vf_start,
                                           vfmem_size, backed=backed)
        # FMem lives behind the FPGA; give it a disjoint private space.
        f_start = AddressSpaceLayout._next_aligned(vf_start + vfmem_size)
        self.fmem = PhysicalRegion.create(MemoryKind.FMEM, f_start, fmem_size,
                                          backed=backed)

    @staticmethod
    def _next_aligned(addr: int) -> int:
        gb = units.GB
        return -(-addr // gb) * gb

    def region_of(self, addr: int) -> PhysicalRegion:
        """Find which region a physical address belongs to."""
        for region in (self.cmem, self.vfmem, self.fmem):
            if addr in region.range:
                return region
        raise AddressError(f"physical address {addr:#x} unmapped")

    def is_tracked(self, addr: int) -> bool:
        """True if the FPGA directory observes accesses to ``addr``.

        Only VFMem is coherence-tracked; the FPGA cannot see CMem
        traffic (paper section 4.3 calls this out as the approach's
        limitation).
        """
        return addr in self.vfmem.range
