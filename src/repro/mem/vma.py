"""Virtual memory areas: the kernel-side region bookkeeping.

The paper's latency analysis repeatedly blames "finding and allocating
virtual memory areas (VMAs)" as one of the small operations that add up
on the page-fault path (sections 2.1, 6.1).  This module models that
bookkeeping: a sorted map of VMAs with find/insert/split/merge, plus an
rbtree-like lookup cost model so the fault path can charge for the
walk.

Kona touches the VMA layer only at allocation time (mmap of VFMem
windows); page-based systems walk it on *every* fault.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional

from ..common import units
from ..common.errors import AddressError, ConfigError
from ..common.stats import Counter
from .address import AddressRange
from .pagetable import Protection


@dataclass(frozen=True)
class VMA:
    """One virtual memory area (a contiguous mapping with one policy)."""

    range: AddressRange
    protection: Protection = Protection.READ_WRITE
    name: str = "anon"
    #: Whether this VMA is backed by Kona's remote memory (VFMem) or
    #: ordinary local memory.
    remote: bool = False


class VMAMap:
    """Sorted, non-overlapping set of VMAs with kernel-like operations."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._vmas: List[VMA] = []
        self.counters = Counter()

    def __len__(self) -> int:
        return len(self._vmas)

    def __iter__(self):
        return iter(self._vmas)

    # -- lookup ---------------------------------------------------------------

    def find(self, addr: int) -> Optional[VMA]:
        """The VMA containing ``addr``, or None (a fault-path walk)."""
        self.counters.add("lookups")
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        vma = self._vmas[idx]
        return vma if addr in vma.range else None

    def find_cost_ns(self) -> float:
        """Cost of one rbtree-ish walk: O(log n) pointer chases."""
        n = max(len(self._vmas), 1)
        depth = max(n.bit_length(), 1)
        return 18.0 * depth    # ~cache-miss-ish per level

    # -- mutation ----------------------------------------------------------------

    def insert(self, vma: VMA) -> None:
        """Insert a VMA; rejects overlap with any existing area."""
        for existing in self._vmas:
            if existing.range.overlaps(vma.range):
                raise AddressError(
                    f"VMA {vma.range} overlaps existing {existing.range}")
        idx = bisect.bisect_left(self._starts, vma.range.start)
        self._starts.insert(idx, vma.range.start)
        self._vmas.insert(idx, vma)
        self.counters.add("inserts")

    def remove(self, addr: int) -> VMA:
        """Remove the VMA containing ``addr``."""
        vma = self.find(addr)
        if vma is None:
            raise AddressError(f"no VMA contains {addr:#x}")
        idx = self._vmas.index(vma)
        del self._vmas[idx]
        del self._starts[idx]
        self.counters.add("removals")
        return vma

    def split(self, addr: int) -> tuple:
        """Split the containing VMA at a page boundary ``addr``.

        Splitting happens when protection changes apply to part of a
        mapping — e.g. write-protecting a subrange for dirty tracking.
        """
        if addr % units.PAGE_4K:
            raise ConfigError(f"split point {addr:#x} not page aligned")
        vma = self.find(addr)
        if vma is None:
            raise AddressError(f"no VMA contains {addr:#x}")
        if addr == vma.range.start:
            return (vma,)    # nothing to split
        left = VMA(AddressRange(vma.range.start, addr - vma.range.start),
                   vma.protection, vma.name, vma.remote)
        right = VMA(AddressRange(addr, vma.range.end - addr),
                    vma.protection, vma.name, vma.remote)
        self.remove(addr)
        self.insert(left)
        self.insert(right)
        self.counters.add("splits")
        return left, right

    def merge_adjacent(self) -> int:
        """Coalesce adjacent VMAs with identical attributes.

        Returns the number of merges performed.  The kernel does this
        opportunistically; fragmentation from protection games is yet
        another hidden cost of write-protection tracking.
        """
        merged = 0
        i = 0
        while i + 1 < len(self._vmas):
            a, b = self._vmas[i], self._vmas[i + 1]
            compatible = (a.range.end == b.range.start
                          and a.protection == b.protection
                          and a.name == b.name and a.remote == b.remote)
            if compatible:
                joined = VMA(AddressRange(a.range.start,
                                          a.range.size + b.range.size),
                             a.protection, a.name, a.remote)
                del self._vmas[i:i + 2]
                del self._starts[i:i + 2]
                self._starts.insert(i, joined.range.start)
                self._vmas.insert(i, joined)
                merged += 1
            else:
                i += 1
        if merged:
            self.counters.add("merges", merged)
        return merged

    # -- gap search (mmap placement) -----------------------------------------------

    def find_gap(self, size: int, floor: int = 0) -> int:
        """Lowest page-aligned start >= floor with ``size`` free bytes."""
        if size <= 0:
            raise ConfigError(f"gap size must be positive, got {size}")
        candidate = -(-floor // units.PAGE_4K) * units.PAGE_4K
        for vma in self._vmas:
            if vma.range.end <= candidate:
                continue
            if vma.range.start >= candidate + size:
                break
            candidate = -(-vma.range.end // units.PAGE_4K) * units.PAGE_4K
        return candidate

    def remote_bytes(self) -> int:
        """Total bytes mapped to remote (VFMem-backed) areas."""
        return sum(v.range.size for v in self._vmas if v.remote)
