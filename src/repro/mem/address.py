"""Address arithmetic: pages, cache lines, and address ranges.

Everything in the simulator speaks byte addresses (Python ints or numpy
uint64 arrays).  This module centralizes the page/line index math so the
granularity constants live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..common import units
from ..common.errors import AddressError, ConfigError


def is_power_of_two(n: int) -> bool:
    """True for positive powers of two."""
    return n > 0 and (n & (n - 1)) == 0


def align_down(addr: int, granularity: int) -> int:
    """Round ``addr`` down to a multiple of ``granularity``."""
    return addr - (addr % granularity)


def align_up(addr: int, granularity: int) -> int:
    """Round ``addr`` up to a multiple of ``granularity``."""
    return -(-addr // granularity) * granularity


def page_index(addr: int, page_size: int = units.PAGE_4K) -> int:
    """Index of the page containing ``addr``."""
    return addr // page_size


def line_index(addr: int) -> int:
    """Global index of the 64 B cache line containing ``addr``."""
    return addr // units.CACHE_LINE


def line_in_page(addr: int, page_size: int = units.PAGE_4K) -> int:
    """Index (0..63 for 4 KB pages) of the line within its page."""
    return (addr % page_size) // units.CACHE_LINE


def page_indices(addrs: np.ndarray, page_size: int = units.PAGE_4K) -> np.ndarray:
    """Vectorized :func:`page_index` over a uint64 address array."""
    return addrs // np.uint64(page_size)


def line_indices(addrs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`line_index`."""
    return addrs // np.uint64(units.CACHE_LINE)


def word_indices(addrs: np.ndarray) -> np.ndarray:
    """Vectorized index of the 8 B word containing each address."""
    return addrs // np.uint64(units.WORD)


@dataclass(frozen=True)
class AddressRange:
    """A half-open byte range ``[start, start + size)``."""

    start: int
    size: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.size < 0:
            raise ConfigError(f"invalid range start={self.start} size={self.size}")

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.start + self.size

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def contains_range(self, other: "AddressRange") -> bool:
        """True if ``other`` lies entirely within this range."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "AddressRange") -> bool:
        """True if the two ranges share at least one byte."""
        return self.start < other.end and other.start < self.end

    def offset_of(self, addr: int) -> int:
        """Byte offset of ``addr`` from the start of the range."""
        if addr not in self:
            raise AddressError(f"address {addr:#x} outside {self}")
        return addr - self.start

    def pages(self, page_size: int = units.PAGE_4K) -> Iterator[int]:
        """Iterate over the page indices the range touches."""
        if self.size == 0:
            return iter(())
        first = page_index(self.start, page_size)
        last = page_index(self.end - 1, page_size)
        return iter(range(first, last + 1))

    def split(self, chunk: int) -> Iterator["AddressRange"]:
        """Split into consecutive sub-ranges of at most ``chunk`` bytes."""
        if chunk <= 0:
            raise ConfigError(f"chunk must be positive, got {chunk}")
        offset = self.start
        while offset < self.end:
            size = min(chunk, self.end - offset)
            yield AddressRange(offset, size)
            offset += size

    def __repr__(self) -> str:
        return f"AddressRange[{self.start:#x}, {self.end:#x})"
