"""Page tables and protection bits for the virtual-memory model.

The baselines (Infiniswap, LegoOS, Kona-VM) depend on virtual-memory
machinery: present bits for fetch-on-fault, write-protection for dirty
tracking, and PTE churn plus TLB shootdowns for eviction.  Kona instead
maps all remote data as *always present* in VFMem, so its page table is
set up once and never touched on the data path (paper section 4.4).

The model stores one :class:`PageTableEntry` per mapped virtual page
and counts every operation so cost models can charge for PTE updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Flag, auto
from typing import Dict, Iterator, Optional, Tuple

from ..common import units
from ..common.errors import ProtectionError, TranslationError
from ..common.stats import Counter


class Protection(Flag):
    """Page protection bits."""

    NONE = 0
    READ = auto()
    WRITE = auto()
    READ_WRITE = READ | WRITE


@dataclass
class PageTableEntry:
    """One virtual-to-physical page mapping."""

    vpn: int                    # virtual page number
    pfn: int                    # physical frame number
    present: bool = True
    protection: Protection = Protection.READ_WRITE
    dirty: bool = False
    accessed: bool = False

    def allows(self, is_write: bool) -> bool:
        """Whether an access of the given kind is permitted."""
        needed = Protection.WRITE if is_write else Protection.READ
        return bool(self.protection & needed)


@dataclass(frozen=True)
class FaultInfo:
    """Describes why a virtual access faulted."""

    vpn: int
    is_write: bool
    missing: bool        # page not present (major-fault class)
    protection: bool     # present but protection violated (minor fault)


class PageTable:
    """A flat page table for one process address space.

    ``page_size`` is configurable so the huge-page experiments (Table 2's
    2 MB column) can reuse the same machinery.
    """

    def __init__(self, page_size: int = units.PAGE_4K) -> None:
        if page_size % units.PAGE_4K:
            raise TranslationError(f"page size {page_size} not 4 KiB aligned")
        self.page_size = page_size
        self._entries: Dict[int, PageTableEntry] = {}
        self.counters = Counter()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PageTableEntry]:
        return iter(self._entries.values())

    def vpn_of(self, vaddr: int) -> int:
        """Virtual page number containing ``vaddr``."""
        return vaddr // self.page_size

    def map(self, vpn: int, pfn: int, *, present: bool = True,
            protection: Protection = Protection.READ_WRITE) -> PageTableEntry:
        """Install a mapping, replacing any previous entry for ``vpn``."""
        entry = PageTableEntry(vpn=vpn, pfn=pfn, present=present,
                               protection=protection)
        self._entries[vpn] = entry
        self.counters.add("pte_installs")
        return entry

    def unmap(self, vpn: int) -> PageTableEntry:
        """Remove a mapping (eviction path in page-based systems)."""
        try:
            entry = self._entries.pop(vpn)
        except KeyError:
            raise TranslationError(f"unmap of unmapped vpn {vpn}") from None
        self.counters.add("pte_removals")
        return entry

    def entry(self, vpn: int) -> Optional[PageTableEntry]:
        """The entry for ``vpn``, or None if unmapped."""
        return self._entries.get(vpn)

    def protect(self, vpn: int, protection: Protection) -> None:
        """Change protection bits (write-protect round of dirty tracking)."""
        entry = self._require(vpn)
        entry.protection = protection
        self.counters.add("pte_protect_changes")

    def mark_not_present(self, vpn: int) -> None:
        """Clear the present bit (page-based eviction)."""
        entry = self._require(vpn)
        entry.present = False
        self.counters.add("pte_present_clears")

    def mark_present(self, vpn: int, pfn: int) -> None:
        """Set the present bit after a fetch completes."""
        entry = self._entries.get(vpn)
        if entry is None:
            self.map(vpn, pfn)
        else:
            entry.present = True
            entry.pfn = pfn
        self.counters.add("pte_present_sets")

    def translate(self, vaddr: int, is_write: bool) -> Tuple[int, Optional[FaultInfo]]:
        """Translate an access; return (paddr, fault) where fault is None on success.

        On success the accessed/dirty bits are updated the way hardware
        page-table walkers do.
        """
        vpn = self.vpn_of(vaddr)
        entry = self._entries.get(vpn)
        if entry is None or not entry.present:
            self.counters.add("faults_missing")
            return 0, FaultInfo(vpn=vpn, is_write=is_write,
                                missing=True, protection=False)
        if not entry.allows(is_write):
            self.counters.add("faults_protection")
            return 0, FaultInfo(vpn=vpn, is_write=is_write,
                                missing=False, protection=True)
        entry.accessed = True
        if is_write:
            entry.dirty = True
        paddr = entry.pfn * self.page_size + vaddr % self.page_size
        self.counters.add("translations")
        return paddr, None

    def dirty_vpns(self) -> Iterator[int]:
        """Virtual pages with the hardware dirty bit set."""
        return (e.vpn for e in self._entries.values() if e.dirty)

    def clear_dirty(self, vpn: int) -> None:
        """Clear the dirty bit (after writeback)."""
        self._require(vpn).dirty = False
        self.counters.add("pte_dirty_clears")

    def _require(self, vpn: int) -> PageTableEntry:
        entry = self._entries.get(vpn)
        if entry is None:
            raise TranslationError(f"vpn {vpn} is not mapped")
        return entry


def raise_for_fault(fault: FaultInfo) -> None:
    """Turn a :class:`FaultInfo` into the corresponding exception."""
    if fault.missing:
        raise TranslationError(
            f"page {fault.vpn} not present ({'write' if fault.is_write else 'read'})")
    raise ProtectionError(
        f"page {fault.vpn} write-protected" if fault.is_write
        else f"page {fault.vpn} not readable")
