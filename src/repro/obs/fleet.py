"""Fleet observability: federated telemetry with component identity.

One runtime's :class:`~repro.obs.recorder.FlightRecorder` tells one
component's story.  A disaggregated-memory cluster has many stories —
N compute-node runtimes, M memory blades, the fabric between them —
and debugging the cluster needs them *joined*: the same metric names
across components, one timeline, one trace, per-tenant attribution.

This module is that join:

* :func:`ComponentSnapshot.from_recorder` freezes one producer's
  telemetry — final metric values, histogram states, sampled series,
  tracer events, health transitions, the causal fault log, SLO
  verdicts — under a **component identity** label (``runtime:shard3``,
  ``memnode:5``, ``fabric``, ``controller``) plus an optional
  **tenant** label.  Snapshots are plain data: picklable (multiprocess
  shard workers ship them through a ``Pool``) and JSON round-trippable
  (:meth:`ComponentSnapshot.to_json`).
* :class:`FleetRecorder` aggregates snapshots into the cluster view
  using the *exact* merge algebras the single-runtime layer already
  guarantees: integer counter sums, aligned-bucket
  :meth:`~repro.obs.registry.HistogramMetric.merge`, tie-stable
  :meth:`~repro.obs.tsdb.TimeSeriesStore.merge` on the shared
  sim-clock, and partition-invariant
  :meth:`~repro.obs.causal.FaultLog.merge` — so fleet aggregation over
  page-modulo shards or streamed chunks equals the monolithic
  aggregate bit for bit.
* :meth:`FleetRecorder.chrome_trace` renders the unified timeline:
  every component gets its own deterministic Chrome pid
  (:func:`~repro.obs.export.component_pid` of its label — stable
  across runs and processes) and the slowest faults' causal chains
  become flow arrows *across* component tracks — directory hop on the
  capturing runtime's track, fabric hop on the fabric track,
  FMem/replication service on the owning memnode's track, linked by
  the access seq as the correlation id.
* :meth:`FleetRecorder.save` / :meth:`FleetRecorder.load` round-trip
  the whole fleet as one JSON artifact — the input ``repro dashboard``
  renders.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..common.errors import ConfigError
from .causal import FaultLog
from .export import chrome_trace, component_pid
from .registry import HistogramMetric, MetricsRegistry
from .tsdb import TimeSeriesStore

#: Fault-chain hop -> (exemplar column, component resolver key).
#: ``dir`` bills to the capturing runtime, ``fab`` to the fabric,
#: ``mem``/``repl`` to the serving memnode.
_HOP_COLUMNS = (("dir", 8), ("fab", 9), ("mem", 10), ("repl", 11))

#: Track ids inside one component's process: spans, gauges, faults.
_SPAN_TID = 1
_COUNTER_TID = 2
_FAULT_TID = 3


def _flat_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


@dataclass
class ComponentSnapshot:
    """One telemetry producer's frozen story, identity attached.

    Plain picklable/JSON-able data — every field is builtins-only
    except ``None`` defaults.  ``metrics`` holds the final flattened
    counter/gauge values (the sampler's key shape), ``kinds`` maps
    family base names to their registry kind so the fleet can rebuild
    a labeled registry, ``histograms`` holds exact
    :meth:`~repro.obs.registry.HistogramMetric.state` dicts, and
    ``points`` the tsdb series on the producer's sim-clock.
    """

    component: str
    tenant: Optional[str] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    kinds: Dict[str, str] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    points: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    health: List[List[Any]] = field(default_factory=list)
    fault_log: Optional[Dict[str, Any]] = None
    slo: List[Dict[str, Any]] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        """The component class: label text before the first colon."""
        return self.component.split(":", 1)[0]

    @property
    def pid(self) -> int:
        """This component's deterministic Chrome trace pid."""
        return component_pid(self.component)

    @classmethod
    def from_recorder(cls, recorder, component: Optional[str] = None,
                      tenant: Optional[str] = None,
                      health: Any = None,
                      fault_log: Any = None,
                      slo: Any = None,
                      meta: Optional[Dict[str, Any]] = None
                      ) -> "ComponentSnapshot":
        """Freeze a :class:`~repro.obs.recorder.FlightRecorder`.

        ``component``/``tenant`` default to the recorder's own
        identity labels.  ``health`` is a
        :class:`~repro.kona.health.HealthMonitor` (its annotated
        transitions are copied), ``fault_log`` a
        :class:`~repro.obs.causal.FaultLog` or ``CausalCapture``
        (drained lazily via ``.log``), ``slo`` an
        :class:`~repro.obs.slo.SLOEngine` (its :meth:`report`) or an
        already-shaped verdict list.
        """
        snap = cls(
            component=component if component is not None
            else recorder.component,
            tenant=tenant if tenant is not None else recorder.tenant,
            metrics=dict(recorder.registry.flat_samples()),
            kinds={fam.name: fam.kind
                   for fam in recorder.registry.families()},
            events=[dict(e) for e in recorder.tracer.events],
            meta=dict(meta) if meta else {},
        )
        for fam in recorder.registry.families():
            if fam.kind != "histogram":
                continue
            for labels, child in fam.children():
                snap.histograms[_flat_key(fam.name, labels)] = child.state()
        if recorder.tsdb is not None:
            snap.points = {name: [list(p) for p in pts] for name, pts
                           in recorder.tsdb.as_dict().items()}
        if health is not None:
            annotated = getattr(health, "annotated_transitions", None)
            raw = annotated if annotated is not None else health.transitions
            snap.health = [list(t) for t in raw]
        if fault_log is not None:
            log = getattr(fault_log, "log", fault_log)
            snap.fault_log = log.to_json()
        if slo is not None:
            snap.slo = (slo.report() if hasattr(slo, "report")
                        else [dict(v) for v in slo])
        return snap

    # -- persistence --------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """JSON-serializable form (exact round-trip via from_json)."""
        return {
            "component": self.component, "tenant": self.tenant,
            "metrics": self.metrics, "kinds": self.kinds,
            "histograms": self.histograms,
            "points": {name: [list(p) for p in pts]
                       for name, pts in self.points.items()},
            "events": self.events, "health": self.health,
            "fault_log": self.fault_log, "slo": self.slo,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, state: Dict[str, Any]) -> "ComponentSnapshot":
        """Rebuild a snapshot from :meth:`to_json` output."""
        return cls(
            component=state["component"], tenant=state.get("tenant"),
            metrics=dict(state.get("metrics", {})),
            kinds=dict(state.get("kinds", {})),
            histograms=dict(state.get("histograms", {})),
            points={name: [tuple(p) for p in pts] for name, pts
                    in state.get("points", {}).items()},
            events=list(state.get("events", [])),
            health=[list(t) for t in state.get("health", [])],
            fault_log=state.get("fault_log"),
            slo=list(state.get("slo", [])),
            meta=dict(state.get("meta", {})),
        )


class FleetRecorder:
    """Aggregates component snapshots into one cluster view.

    Every derived view is computed from the member snapshots on
    demand, with the single-runtime layer's exact merge algebras —
    nothing here re-derives statistics approximately.
    """

    def __init__(self, name: str = "fleet") -> None:
        self.name = name
        self.members: List[ComponentSnapshot] = []

    # -- membership ---------------------------------------------------------------

    def add(self, snapshot: ComponentSnapshot) -> "FleetRecorder":
        """Add one member snapshot (component labels must be unique)."""
        if not isinstance(snapshot, ComponentSnapshot):
            raise ConfigError(f"cannot add {type(snapshot).__name__} "
                              f"to a FleetRecorder")
        if any(m.component == snapshot.component for m in self.members):
            raise ConfigError(
                f"duplicate component label {snapshot.component!r}")
        self.members.append(snapshot)
        return self

    def add_recorder(self, recorder, **kwargs: Any) -> ComponentSnapshot:
        """Snapshot a flight recorder and add it; returns the snapshot."""
        snap = ComponentSnapshot.from_recorder(recorder, **kwargs)
        self.add(snap)
        return snap

    def components(self) -> List[str]:
        """All member component labels, in join order."""
        return [m.component for m in self.members]

    def tenants(self) -> List[str]:
        """Distinct tenant labels (sorted; unlabeled members excluded)."""
        return sorted({m.tenant for m in self.members
                       if m.tenant is not None})

    def member(self, component: str) -> ComponentSnapshot:
        """The member with that exact component label."""
        for m in self.members:
            if m.component == component:
                return m
        raise ConfigError(f"no component {component!r} in fleet "
                          f"{sorted(self.components())}")

    # -- merged registry views ----------------------------------------------------

    def registry(self) -> MetricsRegistry:
        """A merged registry keyed by ``component``/``tenant`` labels.

        Every member sample becomes a labeled child of a family named
        by its flattened key — counters stay counters, everything else
        lands as a gauge; histograms rebuild from their exact states.
        """
        reg = MetricsRegistry()
        labels = ("component", "tenant")
        for m in self.members:
            tenant = m.tenant if m.tenant is not None else ""
            for key, value in m.metrics.items():
                base = key.split("{", 1)[0]
                if m.kinds.get(base) == "counter":
                    fam = reg.counter(key, labels=labels)
                    fam.labels(component=m.component,
                               tenant=tenant).inc(int(value))
                else:
                    fam = reg.gauge(key, labels=labels)
                    fam.labels(component=m.component,
                               tenant=tenant).set(value)
            for key, state in m.histograms.items():
                fam = reg.histogram(key, labels=labels)
                child = fam.labels(component=m.component, tenant=tenant)
                child.merge(HistogramMetric.from_state(state))
        return reg

    def totals(self, tenant: Optional[str] = None) -> Dict[str, int]:
        """Exact integer totals of count-shaped metrics fleet-wide.

        Sums every integer-valued (non-bool) member metric by
        flattened name — the partition-invariant roll-up: over a
        page-modulo sharded run these totals equal the monolithic
        runtime's values exactly for every partitioned counter.
        ``tenant`` restricts the sum to one tenant's components.
        """
        out: Dict[str, int] = {}
        for m in self.members:
            if tenant is not None and m.tenant != tenant:
                continue
            for key, value in m.metrics.items():
                if isinstance(value, bool) or not isinstance(value, int):
                    continue
                out[key] = out.get(key, 0) + value
        return out

    def histogram_totals(self) -> Dict[str, HistogramMetric]:
        """Exact merged histograms by flattened name, fleet-wide."""
        out: Dict[str, HistogramMetric] = {}
        for m in self.members:
            for key, state in m.histograms.items():
                merged = out.setdefault(key, HistogramMetric())
                merged.merge(HistogramMetric.from_state(state))
        return out

    def tsdb(self, per_component: bool = True) -> TimeSeriesStore:
        """The merged time-series store on the shared sim-clock.

        With ``per_component`` (the dashboard view) each member's
        series merge under a ``<component>/`` prefix so producers stay
        distinct; without it, same-named series interleave exactly —
        the bit-exact union a monolithic store of all points would
        hold (members must share the sim-clock timebase).
        """
        store = TimeSeriesStore()
        for m in self.members:
            member_store = TimeSeriesStore()
            for series, pts in m.points.items():
                for ts, value in pts:
                    member_store.append(ts, series, value)
            store.merge(member_store,
                        prefix=f"{m.component}/" if per_component else None)
        return store

    def fault_log(self) -> Optional[FaultLog]:
        """The exact fleet-wide merged fault log (None when no member
        captured one)."""
        merged: Optional[FaultLog] = None
        for m in self.members:
            if m.fault_log is None:
                continue
            log = FaultLog.from_json(m.fault_log)
            if merged is None:
                merged = log
            else:
                merged.merge(log)
        return merged

    # -- cross-cutting views ------------------------------------------------------

    def health_timeline(self) -> List[Tuple[float, str, str, Any]]:
        """(ts, component, state, context) fleet-wide, time-ordered.

        Ties order by component label so the timeline is deterministic
        regardless of member join order.
        """
        out: List[Tuple[float, str, str, Any]] = []
        for m in self.members:
            for t in m.health:
                ts, state = t[0], t[1]
                ctx = t[2] if len(t) > 2 else None
                out.append((ts, m.component, state, ctx))
        out.sort(key=lambda row: (row[0], row[1]))
        return out

    def slo_status(self) -> List[Dict[str, Any]]:
        """Every member's SLO verdicts, component label attached."""
        out: List[Dict[str, Any]] = []
        for m in self.members:
            for verdict in m.slo:
                out.append({"component": m.component,
                            "tenant": m.tenant, **verdict})
        return out

    def tenant_attribution(self) -> List[Dict[str, Any]]:
        """Per-tenant stall and fault accounting, exact.

        One row per tenant (components without a tenant label fold
        into ``"-"``): member count, captured faults, exact total
        stall ns (spectrum sums), remote fetches, and each tenant's
        share of the fleet-wide stall.
        """
        rows: Dict[str, Dict[str, Any]] = {}
        for m in self.members:
            tenant = m.tenant if m.tenant is not None else "-"
            row = rows.setdefault(tenant, {
                "tenant": tenant, "components": 0, "faults": 0,
                "remote_fetches": 0, "stall_ns": 0.0})
            row["components"] += 1
            if m.fault_log is not None:
                log = FaultLog.from_json(m.fault_log)
                row["faults"] += log.n
                row["remote_fetches"] += log.kinds[1]
                row["stall_ns"] += log.total_stall_ns()
        total = sum(row["stall_ns"] for row in rows.values())
        for row in rows.values():
            row["stall_share"] = (row["stall_ns"] / total) if total else 0.0
        return sorted(rows.values(), key=lambda r: (-r["stall_ns"],
                                                    r["tenant"]))

    # -- unified Chrome trace -----------------------------------------------------

    def correlation_events(self, top: int = 16) -> List[Dict[str, Any]]:
        """Cross-component fault-chain events with flow arrows.

        For each runtime member's slowest fault exemplars: one ``X``
        slice per non-zero hop, placed on the *owning* component's
        process — directory on the capturing runtime, fabric read on
        the ``fabric`` component, FMem/replication service on
        ``memnode:<node>`` — linked ``s``/``t``/``f`` by the access
        seq as the flow id, so one remote fetch's journey renders as
        an arrow chain runtime → fabric → memnode.  Component pids are
        :func:`~repro.obs.export.component_pid` — deterministic even
        for components with no snapshot of their own.  Chains lay out
        on the synthetic ordinal timeline (``seq`` µs) exactly like
        single-runtime fault chains.
        """
        events: List[Dict[str, Any]] = []
        labels = set(self.components())
        for m in self.members:
            if m.fault_log is None:
                continue
            log = FaultLog.from_json(m.fault_log)
            # Shard-qualified fleets label their components
            # ``fabric:shard3`` / ``memnode:shard3.mem0``; resolve hop
            # targets to an existing member label when one matches so
            # the arrows land on real tracks, else fall back to the
            # bare identity (deterministic pid either way).
            qualifier = (m.component.split(":", 1)[1]
                         if ":" in m.component else "")
            fabric_label = "fabric"
            if f"fabric:{qualifier}" in labels:
                fabric_label = f"fabric:{qualifier}"
            for ex in log.exemplars[:top]:
                total, seq, line, page, node, kind = ex[:6]
                t = float(seq) * 1e3
                args = {"seq": seq, "line": line, "page": page,
                        "node": node, "component": m.component,
                        "total_ns": round(total, 2)}
                if m.tenant is not None:
                    args["tenant"] = m.tenant
                mem_label = f"memnode:{node}"
                if (mem_label not in labels
                        and f"memnode:{qualifier}.{node}" in labels):
                    mem_label = f"memnode:{qualifier}.{node}"
                mem_pid = component_pid(mem_label)
                hop_pids = {"dir": m.pid,
                            "fab": component_pid(fabric_label),
                            "mem": mem_pid, "repl": mem_pid}
                first = True
                for hop, idx in _HOP_COLUMNS:
                    dur = ex[idx]
                    if dur <= 0.0:
                        continue
                    pid = hop_pids[hop]
                    events.append({"name": f"fault#{seq} {hop}",
                                   "ph": "X", "ts": t, "dur": dur,
                                   "cat": "fault", "pid": pid,
                                   "tid": _FAULT_TID,
                                   "args": dict(args, hop=hop)})
                    events.append({"name": f"fault#{seq}",
                                   "ph": "s" if first else "t",
                                   "ts": t, "cat": "fault", "pid": pid,
                                   "tid": _FAULT_TID, "id": seq})
                    first = False
                    t += dur
                if not first:
                    last = events[-1]
                    events.append({"name": f"fault#{seq}", "ph": "f",
                                   "ts": t, "cat": "fault",
                                   "pid": last["pid"],
                                   "tid": _FAULT_TID, "id": seq,
                                   "bp": "e"})
        return events

    def chrome_trace(self, top_faults: int = 16) -> Dict[str, Any]:
        """The unified fleet timeline as one Chrome trace payload.

        Each component is its own process (deterministic pid, named
        track metadata); member span/counter events keep their
        recorded timestamps; the cross-component fault chains ride on
        a dedicated per-process track.  Two exports of the same fleet
        are byte-identical.
        """
        events: List[Dict[str, Any]] = []
        chain_events = self.correlation_events(top=top_faults)
        chain_pids = {e["pid"] for e in chain_events}
        named: Dict[int, str] = {}
        for m in self.members:
            named[m.pid] = m.component
            events.append({"name": "process_name", "ph": "M",
                           "pid": m.pid, "tid": _SPAN_TID, "ts": 0,
                           "args": {"name": m.component}})
            events.append({"name": "thread_name", "ph": "M",
                           "pid": m.pid, "tid": _SPAN_TID, "ts": 0,
                           "args": {"name": "sim timeline (spans)"}})
            events.append({"name": "thread_name", "ph": "M",
                           "pid": m.pid, "tid": _COUNTER_TID, "ts": 0,
                           "args": {"name": "gauge samples"}})
            for event in m.events:
                converted = dict(event)
                converted.setdefault("pid", m.pid)
                converted.setdefault(
                    "tid", _COUNTER_TID if event.get("ph") == "C"
                    else _SPAN_TID)
                events.append(converted)
        # Name the processes fault chains touch but no member owns
        # (fabric, memnodes referenced only by exemplars) and the
        # fault-chain track on every participating process.
        candidates: Dict[int, str] = {component_pid("fabric"): "fabric"}
        for m in self.members:
            if m.fault_log is None:
                continue
            log = FaultLog.from_json(m.fault_log)
            for ex in log.exemplars:
                cand = f"memnode:{ex[4]}"
                candidates.setdefault(component_pid(cand), cand)
        for pid in sorted(chain_pids):
            if pid not in named:
                label = candidates.get(pid, f"pid:{pid}")
                named[pid] = label
                events.append({"name": "process_name", "ph": "M",
                               "pid": pid, "tid": _FAULT_TID, "ts": 0,
                               "args": {"name": label}})
            events.append({"name": "thread_name", "ph": "M",
                           "pid": pid, "tid": _FAULT_TID, "ts": 0,
                           "args": {"name": "fault chains"}})
        events.extend(chain_events)
        return chrome_trace(events, process_name=self.name,
                            pid=component_pid(self.name))

    # -- artifact -----------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """The whole fleet as one JSON-serializable artifact object."""
        return {"format": "repro-fleet", "version": 1, "name": self.name,
                "members": [m.to_json() for m in self.members]}

    @classmethod
    def from_json(cls, state: Dict[str, Any]) -> "FleetRecorder":
        """Rebuild a fleet from :meth:`to_json` output."""
        if state.get("format") != "repro-fleet":
            raise ConfigError("not a repro-fleet artifact "
                              f"(format={state.get('format')!r})")
        fleet = cls(name=state.get("name", "fleet"))
        for member in state.get("members", []):
            fleet.add(ComponentSnapshot.from_json(member))
        return fleet

    def save(self, path: str) -> str:
        """Write the fleet artifact as JSON; returns the path."""
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "FleetRecorder":
        """Read a fleet artifact written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_json(json.load(fh))
