"""Periodic gauge sampling on the simulated clock.

The sampler turns the registry's point-in-time gauges into a time
series: every ``interval_ns`` of simulated time it snapshots all
numeric gauges, appends a row to :attr:`Sampler.samples`, feeds the
attached :class:`~repro.obs.tsdb.TimeSeriesStore` (when one is bound),
and (when a tracer is recording) emits Chrome counter events so the
series shows up as graphs in Perfetto alongside the spans.

The sampler never schedules anything itself — the runtime's existing
periodic maintenance tick calls :meth:`maybe_sample`, which is a cheap
clock comparison when no sample is due.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.clock import SimClock
from ..common.errors import ConfigError
from .registry import MetricsRegistry
from .trace import Tracer
from .tsdb import TimeSeriesStore


class Sampler:
    """Emits registry gauge rows every ``interval_ns`` of sim time."""

    def __init__(self, registry: MetricsRegistry,
                 tracer: Optional[Tracer] = None,
                 interval_ns: float = 1_000_000.0,
                 clock: Optional[SimClock] = None,
                 tsdb: Optional[TimeSeriesStore] = None) -> None:
        if interval_ns <= 0:
            raise ConfigError(f"sample interval must be positive, "
                              f"got {interval_ns}")
        self.registry = registry
        self.tracer = tracer
        self.interval_ns = interval_ns
        self.clock = clock if clock is not None else registry.clock
        self.tsdb = tsdb
        self.samples: List[Tuple[float, Dict[str, float]]] = []
        self._next_due = 0.0

    def maybe_sample(self) -> bool:
        """Sample if an interval elapsed; returns whether it did."""
        now = self.clock.now
        if now < self._next_due:
            return False
        self.sample()
        # Reschedule on the fixed interval grid rather than sliding to
        # ``now + interval``: a tick that lands late (e.g. after a
        # streamed chunk boundary rebases its replay base mid-interval)
        # must neither push every later due time out (cadence drift)
        # nor leave a passed grid point armed (double fire on the next
        # tick).  Skipping whole intervals with no tick is fine — the
        # grid stays anchored.
        elapsed = now - self._next_due
        self._next_due += (elapsed // self.interval_ns + 1) * self.interval_ns
        return True

    def sample(self) -> Dict[str, float]:
        """Snapshot all numeric gauges right now (unconditionally)."""
        row = {key: float(value) for key, value
               in self.registry.flat_samples(numeric_only=True).items()}
        self.samples.append((self.clock.now, row))
        if self.tsdb is not None:
            self.tsdb.append_row(self.clock.now, row)
        if self.tracer is not None and self.tracer.enabled:
            for key, value in row.items():
                self.tracer.counter(key, value=value)
        return row
