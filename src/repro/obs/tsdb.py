"""An append-only time-series store over the sampler's gauge rows.

The flight recorder's :class:`~repro.obs.sampler.Sampler` snapshots
every numeric gauge on a fixed simulated-time cadence; this module
turns those rows into something *queryable*: per-series point lists
ordered by timestamp, windowed rollups (``avg``/``max``/``min``/
``last``/``delta``), and counter **rates** per simulated second.  The
store is deliberately tiny — an in-memory dict of ``(ts, value)``
lists plus a JSONL round-trip — because campaigns are bounded and
deterministic; there is no eviction, no compaction, and appends must
be time-ordered per series (out-of-order appends raise, preserving
the invariant every query relies on).

The JSONL format is one ``{"type": "point", "ts": ..., "name": ...,
"value": ...}`` object per line, compatible with ``jq`` and with the
run-diff loader in :mod:`repro.obs.diff`.
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..common.errors import ConfigError

#: One stored sample: (simulated-clock ns, value).
Point = Tuple[float, float]

#: Per-simulated-second scale for :meth:`TimeSeriesStore.rate`.
_NS_PER_S = 1e9


def _agg_fn(agg: str) -> Callable[[List[float]], float]:
    table: Dict[str, Callable[[List[float]], float]] = {
        "avg": lambda vs: sum(vs) / len(vs),
        "max": max,
        "min": min,
        "last": lambda vs: vs[-1],
        "first": lambda vs: vs[0],
        "sum": sum,
        "delta": lambda vs: vs[-1] - vs[0],
    }
    fn = table.get(agg)
    if fn is None:
        raise ConfigError(f"unknown aggregation {agg!r}; "
                          f"choose one of {sorted(table)}")
    return fn


class TimeSeriesStore:
    """Append-only in-memory series of (sim-time ns, value) points."""

    def __init__(self) -> None:
        self._series: Dict[str, List[Point]] = {}

    # -- ingest ------------------------------------------------------------------

    def append(self, ts: float, name: str, value: float) -> None:
        """Append one point; ``ts`` must not precede the series tail."""
        points = self._series.setdefault(name, [])
        if points and ts < points[-1][0]:
            raise ConfigError(
                f"out-of-order append to {name!r}: {ts} < {points[-1][0]}")
        points.append((ts, float(value)))

    def append_row(self, ts: float, row: Dict[str, float]) -> None:
        """Append one sampler row (every gauge at one timestamp)."""
        for name, value in row.items():
            self.append(ts, name, value)

    def merge(self, other: "TimeSeriesStore",
              base_ns: float = 0.0,
              prefix: Optional[str] = None) -> "TimeSeriesStore":
        """Fold another store's series into this one; returns self.

        ``base_ns`` realigns the other store's timeline: every one of
        its timestamps is shifted by ``base_ns`` before merging, which
        is the chunk-base realignment a streamed/sharded run needs
        when each chunk's store recorded time relative to its own
        start.  Per series, the two (individually time-ordered) point
        lists are interleaved by timestamp with ties keeping this
        store's points first — exactly the order a single store would
        have recorded, so merged and monolithic stores compare equal
        via :meth:`as_dict`.  The per-series monotonic-append
        invariant is preserved by construction.

        ``prefix`` renames every incoming series to
        ``f"{prefix}{name}"`` — the fleet view uses a component label
        prefix (``runtime:shard3/…``) to keep each producer's series
        distinct; leave it None for the exact cross-component merge.
        """
        if not isinstance(other, TimeSeriesStore):
            raise ConfigError(f"cannot merge TimeSeriesStore with "
                              f"{type(other).__name__}")
        for name, points in other._series.items():
            if prefix is not None:
                name = prefix + name
            shifted = ([(ts + base_ns, v) for ts, v in points]
                       if base_ns else list(points))
            mine = self._series.get(name)
            if not mine:
                self._series[name] = shifted
            elif not shifted or shifted[0][0] >= mine[-1][0]:
                mine.extend(shifted)
            else:
                merged: List[Point] = []
                i = j = 0
                while i < len(mine) and j < len(shifted):
                    if shifted[j][0] < mine[i][0]:
                        merged.append(shifted[j])
                        j += 1
                    else:
                        merged.append(mine[i])
                        i += 1
                merged.extend(mine[i:])
                merged.extend(shifted[j:])
                self._series[name] = merged
        return self

    # -- introspection ------------------------------------------------------------

    def names(self) -> List[str]:
        """All series names, sorted."""
        return sorted(self._series)

    def __len__(self) -> int:
        return sum(len(p) for p in self._series.values())

    def __contains__(self, name: str) -> bool:
        return name in self._series

    @property
    def span_ns(self) -> Tuple[float, float]:
        """(earliest, latest) timestamp across every series (0,0 empty)."""
        firsts = [p[0][0] for p in self._series.values() if p]
        lasts = [p[-1][0] for p in self._series.values() if p]
        if not firsts:
            return 0.0, 0.0
        return min(firsts), max(lasts)

    def as_dict(self) -> Dict[str, List[Point]]:
        """A deterministic copy of every series (for equality checks)."""
        return {name: list(self._series[name])
                for name in sorted(self._series)}

    # -- queries ------------------------------------------------------------------

    def series(self, name: str, start_ns: float = 0.0,
               end_ns: float = float("inf")) -> List[Point]:
        """Points of ``name`` with ``start_ns <= ts <= end_ns``."""
        points = self._series.get(name, [])
        if not points:
            return []
        ts = [p[0] for p in points]
        lo = bisect_left(ts, start_ns)
        hi = bisect_right(ts, end_ns)
        return points[lo:hi]

    def latest(self, name: str) -> Optional[Point]:
        """The most recent point of ``name``, or None."""
        points = self._series.get(name)
        return points[-1] if points else None

    def aggregate(self, name: str, start_ns: float = 0.0,
                  end_ns: float = float("inf"),
                  agg: str = "avg") -> float:
        """One aggregate over a time range; ``nan`` when empty.

        ``agg`` is one of ``avg``/``max``/``min``/``first``/``last``/
        ``sum``/``delta`` (``delta`` = last minus first, the windowed
        increase of a cumulative counter).
        """
        fn = _agg_fn(agg)
        values = [v for _, v in self.series(name, start_ns, end_ns)]
        if not values:
            return float("nan")
        return fn(values)

    def rate(self, name: str, start_ns: float = 0.0,
             end_ns: float = float("inf")) -> float:
        """Counter increase per *simulated second* over a range.

        Uses the first and last point inside the range; returns
        ``nan`` with fewer than two points (no rate is observable).
        """
        window = self.series(name, start_ns, end_ns)
        if len(window) < 2:
            return float("nan")
        (t0, v0), (t1, v1) = window[0], window[-1]
        if t1 <= t0:
            return float("nan")
        return (v1 - v0) / (t1 - t0) * _NS_PER_S

    def rollup(self, name: str, window_ns: float,
               agg: str = "avg") -> List[Point]:
        """Fixed-window rollup: one (window-end ns, aggregate) per bin.

        Bins are aligned to multiples of ``window_ns`` from t=0 and
        empty bins are skipped, so rollups of sparse series stay
        sparse.
        """
        if window_ns <= 0:
            raise ConfigError(f"rollup window must be positive, "
                              f"got {window_ns}")
        fn = _agg_fn(agg)
        out: List[Point] = []
        bucket: List[float] = []
        current: Optional[int] = None
        for ts, value in self._series.get(name, []):
            idx = int(ts // window_ns)
            if current is not None and idx != current:
                out.append(((current + 1) * window_ns, fn(bucket)))
                bucket = []
            current = idx
            bucket.append(value)
        if current is not None and bucket:
            out.append(((current + 1) * window_ns, fn(bucket)))
        return out

    # -- persistence --------------------------------------------------------------

    def dump_jsonl(self, path: str) -> str:
        """Write every point as one JSON object per line; returns path."""
        with open(path, "w") as fh:
            for name in sorted(self._series):
                for ts, value in self._series[name]:
                    fh.write(json.dumps({"type": "point", "ts": ts,
                                         "name": name, "value": value},
                                        sort_keys=True))
                    fh.write("\n")
        return path

    @classmethod
    def load_jsonl(cls, path: str) -> "TimeSeriesStore":
        """Rebuild a store from :meth:`dump_jsonl` output.

        Lines with other ``type`` values (the flight recorder's mixed
        JSONL logs carry ``event``/``sample``/``metric`` lines too) are
        tolerated: ``sample`` rows are ingested, the rest skipped.
        """
        store = cls()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                kind = obj.get("type")
                if kind == "point":
                    store.append(obj["ts"], obj["name"], obj["value"])
                elif kind == "sample":
                    store.append_row(obj["ts"], obj.get("gauges", {}))
        return store

    @classmethod
    def from_rows(cls, rows: Iterable[Tuple[float, Dict[str, float]]]
                  ) -> "TimeSeriesStore":
        """Build a store from sampler-shaped ``(ts, {gauge: value})``."""
        store = cls()
        for ts, row in rows:
            store.append_row(ts, row)
        return store
