"""Causal fault tracing: per-access latency attribution.

Every CPU-cache miss that reaches the memory agent is a *fault* whose
critical-path stall decomposes into hops — the coherence directory
message, the RDMA fabric read, the FMem service time, and (during an
outage) the replication/failover wait.  The flight recorder only sees
these in aggregate; this module captures them **per access** without
perturbing the simulation:

* :class:`CausalCapture` is the hot-path sink.  The engine's replay
  loops call :meth:`CausalCapture.record` once per miss with the hop
  breakdown already in hand; the record lands in preallocated numpy
  column arrays (no per-event Python objects).  When the staging block
  fills, a vectorized drain folds it into the :class:`FaultLog`
  aggregate — ``np.unique`` spectra, window rollups, ``argpartition``
  top-K — so always-on capture stays within the bench overhead gate.
* :class:`FaultLog` is the mergeable aggregate.  Its core state is
  integer counts plus *stall spectra* (exact ``value -> count`` maps
  per hop), so :meth:`FaultLog.merge` over any partition of the record
  stream — page-modulo shards, streamed chunks — reproduces the
  monolithic aggregate **bit-exactly**, even though the hop constants
  are fractional floats (sums are derived from the spectra in sorted
  order, never accumulated in stream order).  The seeded reservoir and
  the top-K exemplar store keep full causal chains for the slowest
  faults; top-K selection uses the total order ``(-total_ns, seq)`` so
  it too is partition-invariant.
* :func:`tail_anomalies` flags latency-outlier windows with a
  median-absolute-deviation (MAD) score and names each window's
  dominant hop — the attribution the SLO engine attaches to health
  transitions.

Invariant: capture only *reads* simulation state and writes its own
buffers with its own RNG.  Counters, accounts, clocks and the
simulation RNG streams are never touched, so a capture-enabled run is
bit-identical to a capture-off run in every runtime-visible way.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..common.errors import ConfigError
from .registry import HistogramMetric

#: Hop names, in record-column order.  ``dir`` is the coherence
#: directory message, ``fab`` the RDMA fabric read, ``mem`` the FMem
#: service time, ``repl`` the replication failover wait.
HOPS: Tuple[str, ...] = ("dir", "fab", "mem", "repl")

#: Miss kinds.
KIND_FMEM = 0       # served from the FMem cache
KIND_REMOTE = 1     # remote fetch over the fabric

#: Record flag bits (chaos state at fault time).
FLAG_FABRIC_DOWN = 1
FLAG_REPLICA_READ = 2

#: Node code for FMem hits (no remote node involved).
_LOCAL = -1

#: One exemplar: a full causal chain for one fault.
#: (total_ns, seq, line, page, node, kind, health, flags,
#:  dir_ns, fab_ns, mem_ns, repl_ns)
Exemplar = Tuple[float, int, int, int, str, int, int, int,
                 float, float, float, float]

#: Sort key for exemplars: slowest first, then earliest.  A total
#: order, so top-K over a union equals top-K over partition top-Ks.
def _exemplar_key(ex: Exemplar):
    return (-ex[0], ex[1])


def _exemplar_from_list(ex: List[Any]) -> Exemplar:
    """One JSON-decoded exemplar list back to its typed tuple."""
    return (float(ex[0]), int(ex[1]), int(ex[2]), int(ex[3]),
            str(ex[4]), int(ex[5]), int(ex[6]), int(ex[7]),
            float(ex[8]), float(ex[9]), float(ex[10]), float(ex[11]))


def _spectrum_sum(spectrum: Dict[float, int]) -> float:
    """Exact-order sum of a stall spectrum: ``sum(v * c)`` ascending.

    Evaluated in sorted-value order, so the result is a deterministic
    function of the spectrum alone — merged and monolithic logs agree
    bit for bit.
    """
    return sum(v * c for v, c in sorted(spectrum.items()))


def _merge_spectrum(into: Dict[float, int],
                    other: Dict[float, int]) -> None:
    for v, c in other.items():
        into[v] = into.get(v, 0) + c


class FaultLog:
    """Mergeable aggregate of captured fault records.

    All core state merges exactly: counts are integers, spectra are
    integer counts per distinct float value, window maxima merge with
    ``max``, and exemplars re-select under a total order.  Only the
    seeded reservoir is sampling-dependent (deterministic for a fixed
    capture, but not partition-invariant) and is therefore excluded
    from :meth:`aggregate`.
    """

    __slots__ = ("window_size", "top_k", "reservoir_size", "seed",
                 "n", "kinds", "health_counts", "fabric_down_faults",
                 "replica_faults", "spectra", "pages", "nodes",
                 "windows", "exemplars", "reservoir", "reservoir_seen")

    def __init__(self, window_size: int = 1 << 14, top_k: int = 32,
                 reservoir_size: int = 256, seed: int = 0) -> None:
        if window_size <= 0:
            raise ConfigError(f"window_size {window_size} must be positive")
        self.window_size = window_size
        self.top_k = top_k
        self.reservoir_size = reservoir_size
        self.seed = seed
        self.n = 0
        self.kinds = [0, 0]                      # [fmem, remote]
        self.health_counts = [0, 0, 0]           # healthy/degraded/recovering
        self.fabric_down_faults = 0
        self.replica_faults = 0
        #: hop -> {stall value -> record count}; ``total`` spans all hops.
        self.spectra: Dict[str, Dict[float, int]] = {
            "dir": {}, "fab": {}, "mem": {}, "repl": {}, "total": {}}
        self.pages: Dict[int, int] = {}          # page index -> fault count
        #: node name -> total-stall spectrum of its remote fetches.
        self.nodes: Dict[str, Dict[float, int]] = {}
        #: window -> [count, max_total, dom_dir, dom_fab, dom_mem,
        #:            dom_repl, degraded_count]
        self.windows: Dict[int, List] = {}
        self.exemplars: List[Exemplar] = []
        self.reservoir: List[Exemplar] = []
        self.reservoir_seen = 0

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "FaultLog") -> "FaultLog":
        """Fold another shard's/chunk's log into this one; returns self.

        Logs must share a window size (windows are keyed by
        ``seq // window_size``; mixing bases would mis-bin).  Every
        aggregate field merges exactly — see the class docstring.
        """
        if not isinstance(other, FaultLog):
            raise ConfigError(f"cannot merge FaultLog with "
                              f"{type(other).__name__}")
        if other.window_size != self.window_size:
            raise ConfigError(
                f"window_size mismatch: {self.window_size} != "
                f"{other.window_size}")
        self.n += other.n
        for i in range(2):
            self.kinds[i] += other.kinds[i]
        for i in range(3):
            self.health_counts[i] += other.health_counts[i]
        self.fabric_down_faults += other.fabric_down_faults
        self.replica_faults += other.replica_faults
        for hop, spec in other.spectra.items():
            _merge_spectrum(self.spectra[hop], spec)
        for page, c in other.pages.items():
            self.pages[page] = self.pages.get(page, 0) + c
        for node, spec in other.nodes.items():
            _merge_spectrum(self.nodes.setdefault(node, {}), spec)
        for win, stats in other.windows.items():
            mine = self.windows.get(win)
            if mine is None:
                self.windows[win] = list(stats)
            else:
                mine[0] += stats[0]
                if stats[1] > mine[1]:
                    mine[1] = stats[1]
                for i in range(2, 6):
                    mine[i] += stats[i]
                mine[6] += stats[6]
        self.exemplars = sorted(self.exemplars + list(other.exemplars),
                                key=_exemplar_key)[:self.top_k]
        self._merge_reservoir(other)
        return self

    def _merge_reservoir(self, other: "FaultLog") -> None:
        combined = self.reservoir + other.reservoir
        self.reservoir_seen += other.reservoir_seen
        if len(combined) > self.reservoir_size:
            rng = np.random.default_rng(self.seed)
            keep = rng.choice(len(combined), size=self.reservoir_size,
                              replace=False)
            combined = [combined[i] for i in sorted(keep.tolist())]
        self.reservoir = combined

    # -- persistence --------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """Full mergeable state as a JSON-serializable dict.

        Spectra serialize as sorted ``[[value, count], ...]`` lists,
        window keys as pairs, exemplar tuples as lists — everything
        :meth:`from_json` needs to rebuild a log whose :meth:`merge`
        and :meth:`aggregate` behave identically.  Floats round-trip
        exactly (JSON carries shortest-repr doubles).
        """
        return {
            "window_size": self.window_size,
            "top_k": self.top_k,
            "reservoir_size": self.reservoir_size,
            "seed": self.seed,
            "n": self.n,
            "kinds": list(self.kinds),
            "health_counts": list(self.health_counts),
            "fabric_down_faults": self.fabric_down_faults,
            "replica_faults": self.replica_faults,
            "spectra": {hop: sorted(spec.items())
                        for hop, spec in self.spectra.items()},
            "pages": sorted(self.pages.items()),
            "nodes": {node: sorted(spec.items())
                      for node, spec in sorted(self.nodes.items())},
            "windows": sorted((w, list(s))
                              for w, s in self.windows.items()),
            "exemplars": [list(ex) for ex in self.exemplars],
            "reservoir": [list(ex) for ex in self.reservoir],
            "reservoir_seen": self.reservoir_seen,
        }

    @classmethod
    def from_json(cls, state: Dict[str, Any]) -> "FaultLog":
        """Rebuild a log from :meth:`to_json` output."""
        log = cls(window_size=int(state.get("window_size", 1 << 14)),
                  top_k=int(state.get("top_k", 32)),
                  reservoir_size=int(state.get("reservoir_size", 256)),
                  seed=int(state.get("seed", 0)))
        log.n = int(state.get("n", 0))
        log.kinds = [int(c) for c in state.get("kinds", [0, 0])]
        log.health_counts = [int(c) for c
                             in state.get("health_counts", [0, 0, 0])]
        log.fabric_down_faults = int(state.get("fabric_down_faults", 0))
        log.replica_faults = int(state.get("replica_faults", 0))
        for hop, pairs in state.get("spectra", {}).items():
            log.spectra[hop] = {float(v): int(c) for v, c in pairs}
        log.pages = {int(p): int(c) for p, c in state.get("pages", [])}
        log.nodes = {node: {float(v): int(c) for v, c in pairs}
                     for node, pairs in state.get("nodes", {}).items()}
        log.windows = {int(w): list(s)
                       for w, s in state.get("windows", [])}
        log.exemplars = [_exemplar_from_list(ex)
                         for ex in state.get("exemplars", [])]
        log.reservoir = [_exemplar_from_list(ex)
                         for ex in state.get("reservoir", [])]
        log.reservoir_seen = int(state.get("reservoir_seen", 0))
        return log

    # -- derived views ------------------------------------------------------------

    def aggregate(self) -> Dict[str, Any]:
        """The exact, partition-invariant aggregate (for differential
        tests): everything except the sampling-dependent reservoir."""
        return {
            "n": self.n,
            "kinds": list(self.kinds),
            "health": list(self.health_counts),
            "fabric_down_faults": self.fabric_down_faults,
            "replica_faults": self.replica_faults,
            "spectra": {hop: sorted(spec.items())
                        for hop, spec in self.spectra.items()},
            "pages": sorted(self.pages.items()),
            "nodes": {node: sorted(spec.items())
                      for node, spec in sorted(self.nodes.items())},
            "windows": sorted((w, list(s))
                              for w, s in self.windows.items()),
            "exemplars": list(self.exemplars),
        }

    def hop_totals(self) -> Dict[str, float]:
        """Exact total stall ns attributed to each hop."""
        return {hop: _spectrum_sum(self.spectra[hop]) for hop in HOPS}

    def total_stall_ns(self) -> float:
        """Exact total stall across all captured faults."""
        return _spectrum_sum(self.spectra["total"])

    def dominant_hop(self) -> Optional[str]:
        """The hop with the largest total stall (None when empty)."""
        if self.n == 0:
            return None
        totals = self.hop_totals()
        return max(HOPS, key=lambda hop: (totals[hop], -HOPS.index(hop)))

    def histogram(self) -> HistogramMetric:
        """The total-stall distribution, rebuilt from the spectrum.

        Derived (not accumulated), so a merged log's histogram equals
        the monolithic one bit for bit — including ``sum``, which is
        computed in sorted-value order.
        """
        hist = HistogramMetric()
        for v, c in sorted(self.spectra["total"].items()):
            b = hist._bucket_of(v)
            hist._buckets[b] = hist._buckets.get(b, 0) + c
            hist.count += c
            hist.sum += v * c
            if v < hist.min:
                hist.min = v
            if v > hist.max:
                hist.max = v
        return hist

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile of total stall (from the spectrum)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile {q} outside [0, 1]")
        if self.n == 0:
            return float("nan")
        target = q * self.n
        seen = 0
        for v, c in sorted(self.spectra["total"].items()):
            seen += c
            if seen >= target:
                return v
        return max(self.spectra["total"])

    def hot_pages(self, top: int = 10) -> List[Tuple[int, int]]:
        """(page, fault count) hottest-first, count then page order."""
        return sorted(self.pages.items(),
                      key=lambda kv: (-kv[1], kv[0]))[:top]

    def node_table(self) -> List[Tuple[str, int, float]]:
        """(node, fetches, exact total stall ns) per remote node."""
        return [(node, sum(spec.values()), _spectrum_sum(spec))
                for node, spec in sorted(self.nodes.items())]

    def degraded_hop_counts(self) -> Dict[str, int]:
        """Dominant-hop record counts inside degraded/recovering
        windows — the outage-tail attribution."""
        out = {hop: 0 for hop in HOPS}
        for stats in self.windows.values():
            if stats[6] == 0:
                continue
            for i, hop in enumerate(HOPS):
                out[hop] += stats[2 + i]
        return out

    def summary(self) -> Dict[str, Any]:
        """Report-shaped roll-up (JSON-serializable)."""
        return {
            "faults": self.n,
            "fmem_hits": self.kinds[KIND_FMEM],
            "remote_fetches": self.kinds[KIND_REMOTE],
            "health": {"healthy": self.health_counts[0],
                       "degraded": self.health_counts[1],
                       "recovering": self.health_counts[2]},
            "fabric_down_faults": self.fabric_down_faults,
            "replica_faults": self.replica_faults,
            "hop_totals_ns": {h: round(v, 3)
                              for h, v in self.hop_totals().items()},
            "dominant_hop": self.dominant_hop(),
            "total_stall_ns": round(self.total_stall_ns(), 3),
            "p50_ns": self.quantile(0.50) if self.n else 0.0,
            "p99_ns": self.quantile(0.99) if self.n else 0.0,
            "max_ns": self.exemplars[0][0] if self.exemplars else 0.0,
            "windows": len(self.windows),
        }


class CausalCapture:
    """Columnar per-miss record sink for one runtime.

    The engine stores each miss into preallocated numpy column arrays
    (one scalar store per column); when ``capacity`` records are
    staged, :meth:`_drain` folds the block into the :class:`FaultLog`
    with vectorized numpy reductions.  ``seq`` — the global access
    ordinal of the miss being served — is maintained by the engine
    (``base`` counts accesses completed before the current run/chunk,
    so streamed and monolithic replays number records identically).
    """

    def __init__(self, page_size: int = 4096, capacity: int = 1 << 15,
                 window_size: int = 1 << 14, top_k: int = 32,
                 reservoir_size: int = 256, seed: int = 0) -> None:
        if capacity <= 0:
            raise ConfigError(f"capacity {capacity} must be positive")
        self.page_size = page_size
        self.log_ = FaultLog(window_size=window_size, top_k=top_k,
                             reservoir_size=reservoir_size, seed=seed)
        self.seq = 0          # access ordinal of the fault being served
        self.base = 0         # accesses completed before the current run
        self._capacity = capacity
        self._i = 0
        self._c_seq = np.zeros(capacity, dtype=np.int64)
        self._c_line = np.zeros(capacity, dtype=np.int64)
        self._c_node = np.zeros(capacity, dtype=np.int16)
        self._c_kind = np.zeros(capacity, dtype=np.uint8)
        self._c_health = np.zeros(capacity, dtype=np.uint8)
        self._c_flags = np.zeros(capacity, dtype=np.uint8)
        self._c_dir = np.zeros(capacity, dtype=np.float64)
        self._c_fab = np.zeros(capacity, dtype=np.float64)
        self._c_mem = np.zeros(capacity, dtype=np.float64)
        self._c_repl = np.zeros(capacity, dtype=np.float64)
        self._node_codes: Dict[str, int] = {}
        self._node_names: List[str] = []
        self._health = 0
        self._repl_ns = 0.0
        self._used_replica = False
        self._fabric_down: Any = ()    # live set ref once attached
        # Capture-private RNG (reservoir sampling): never the sim's.
        self._rng = np.random.default_rng(seed)

    # -- wiring -------------------------------------------------------------------

    def bind_fabric(self, down) -> None:
        """Bind the fabric's live down-link set (chaos flag source)."""
        self._fabric_down = down

    def on_health(self, state_name: str) -> Dict[str, Any]:
        """Health-monitor context provider: tracks the current state.

        Registered via ``HealthMonitor.add_context_provider``; returns
        an empty dict (it contributes no transition context, it only
        observes the state for the records that follow).
        """
        self._health = {"HEALTHY": 0, "DEGRADED": 1,
                        "RECOVERING": 2}.get(state_name, 0)
        return {}

    @property
    def log(self) -> FaultLog:
        """The fault log with all staged records drained."""
        if self._i:
            self._drain()
        return self.log_

    def flush(self) -> None:
        """Drain any staged records into the log."""
        if self._i:
            self._drain()

    # -- hot path -----------------------------------------------------------------

    def record(self, seq: int, line: int, node: Optional[str], kind: int,
               dir_ns: float, fab_ns: float, mem_ns: float) -> None:
        """Store one fault record (engine hot path: keep it lean).

        ``node`` is the serving memnode's name (None for FMem hits);
        the replication hop and chaos flags are folded in from the
        pending locate outcome stashed by the runtime's failover path.
        """
        i = self._i
        self._c_seq[i] = seq
        self._c_line[i] = line
        if node is None:
            self._c_node[i] = _LOCAL
        else:
            code = self._node_codes.get(node)
            if code is None:
                code = len(self._node_names)
                self._node_codes[node] = code
                self._node_names.append(node)
            self._c_node[i] = code
        self._c_kind[i] = kind
        self._c_health[i] = self._health
        flags = FLAG_FABRIC_DOWN if self._fabric_down else 0
        repl = self._repl_ns
        if repl or self._used_replica:
            self._repl_ns = 0.0
            if self._used_replica:
                flags |= FLAG_REPLICA_READ
                self._used_replica = False
        self._c_flags[i] = flags
        self._c_dir[i] = dir_ns
        self._c_fab[i] = fab_ns
        self._c_mem[i] = mem_ns
        self._c_repl[i] = repl
        self._i = i + 1
        if self._i == self._capacity:
            self._drain()

    def record_block(self, rows: List[tuple]) -> None:
        """Store a batch of fault records (the coalesced engine's sink).

        ``rows`` holds ``(seq, line, node, kind, dir_ns, fab_ns,
        mem_ns)`` tuples in ``seq`` order.  Equivalent to one
        :meth:`record` call per row — the staging columns fill by
        slice assignment and :meth:`_drain` fires at the exact same
        capacity crossings, so the reservoir sampler consumes an
        identical RNG stream.  The equivalence requires that no
        capture state (health, chaos flags, the pending replication
        outcome) mutated between the deferred calls; the engine
        guarantees that by deferring only within one replay segment
        on a healthy rack (state flips land on maintenance ticks, and
        generic detours flush the block first).  Any pending
        replication outcome is folded into the first row, exactly
        where the sequential path would consume it.
        """
        m = len(rows)
        if not m:
            return
        seqs, lines, nodes, kinds, dirs, fabs, mems = zip(*rows)
        codes = self._node_codes
        names = self._node_names
        ncol = []
        for nd in nodes:
            if nd is None:
                ncol.append(_LOCAL)
            else:
                code = codes.get(nd)
                if code is None:
                    code = len(names)
                    codes[nd] = code
                    names.append(nd)
                ncol.append(code)
        flags = FLAG_FABRIC_DOWN if self._fabric_down else 0
        first_flags = flags
        repl0 = self._repl_ns
        if repl0 or self._used_replica:
            self._repl_ns = 0.0
            if self._used_replica:
                first_flags |= FLAG_REPLICA_READ
                self._used_replica = False
        pos = 0
        while pos < m:
            i = self._i
            k = min(self._capacity - i, m - pos)
            end = pos + k
            j = i + k
            self._c_seq[i:j] = seqs[pos:end]
            self._c_line[i:j] = lines[pos:end]
            self._c_node[i:j] = ncol[pos:end]
            self._c_kind[i:j] = kinds[pos:end]
            self._c_health[i:j] = self._health
            self._c_flags[i:j] = flags
            self._c_dir[i:j] = dirs[pos:end]
            self._c_fab[i:j] = fabs[pos:end]
            self._c_mem[i:j] = mems[pos:end]
            self._c_repl[i:j] = 0.0
            if pos == 0:
                self._c_flags[i] = first_flags
                self._c_repl[i] = repl0
            pos = end
            self._i = j
            if j == self._capacity:
                self._drain()

    # -- vectorized drain ---------------------------------------------------------

    def _drain(self) -> None:
        n = self._i
        self._i = 0
        seq = self._c_seq[:n]
        line = self._c_line[:n]
        node = self._c_node[:n]
        kind = self._c_kind[:n]
        health = self._c_health[:n]
        flags = self._c_flags[:n]
        d = self._c_dir[:n]
        f = self._c_fab[:n]
        m = self._c_mem[:n]
        r = self._c_repl[:n]
        # Elementwise, so each record's total is the same float no
        # matter which shard or chunk computed it.
        total = d + f + m + r
        log = self.log_
        log.n += n
        kc = np.bincount(kind, minlength=2)
        log.kinds[0] += int(kc[0])
        log.kinds[1] += int(kc[1])
        hc = np.bincount(health, minlength=3)
        for j in range(3):
            log.health_counts[j] += int(hc[j])
        log.fabric_down_faults += int(
            np.count_nonzero(flags & FLAG_FABRIC_DOWN))
        log.replica_faults += int(
            np.count_nonzero(flags & FLAG_REPLICA_READ))
        for col, hop in ((d, "dir"), (f, "fab"), (m, "mem"),
                         (r, "repl"), (total, "total")):
            vals, counts = np.unique(col, return_counts=True)
            spec = log.spectra[hop]
            for v, c in zip(vals.tolist(), counts.tolist()):
                spec[v] = spec.get(v, 0) + c
        pages = line // self.page_size
        pv, pc = np.unique(pages, return_counts=True)
        for p, c in zip(pv.tolist(), pc.tolist()):
            log.pages[p] = log.pages.get(p, 0) + c
        remote = node >= 0
        if remote.any():
            r_nodes = node[remote]
            r_total = total[remote]
            for code in np.unique(r_nodes).tolist():
                name = self._node_names[code]
                spec = log.nodes.setdefault(name, {})
                vals, counts = np.unique(r_total[r_nodes == code],
                                         return_counts=True)
                for v, c in zip(vals.tolist(), counts.tolist()):
                    spec[v] = spec.get(v, 0) + c
        # Window rollups: per-window count, max total, dominant-hop
        # counts (argmax ties resolve to the first hop — deterministic)
        # and the count of faults taken while not fully healthy.
        win = seq // self.log_.window_size
        dom = np.argmax(np.stack((d, f, m, r)), axis=0)
        degraded = health > 0
        for wv in np.unique(win).tolist():
            sel = win == wv
            stats = log.windows.get(wv)
            if stats is None:
                stats = [0, -math.inf, 0, 0, 0, 0, 0]
                log.windows[wv] = stats
            stats[0] += int(np.count_nonzero(sel))
            block_max = float(total[sel].max())
            if block_max > stats[1]:
                stats[1] = block_max
            dc = np.bincount(dom[sel], minlength=4)
            for j in range(4):
                stats[2 + j] += int(dc[j])
            stats[6] += int(np.count_nonzero(degraded[sel]))
        self._fold_exemplars(total, seq, line, pages, node, kind,
                             health, flags, d, f, m, r, n)
        self._fold_reservoir(total, seq, line, pages, node, kind,
                             health, flags, d, f, m, r, n)

    def _tuples(self, idx, total, seq, line, pages, node, kind, health,
                flags, d, f, m, r) -> List[Exemplar]:
        out: List[Exemplar] = []
        for j in idx:
            code = int(node[j])
            out.append((
                float(total[j]), int(seq[j]), int(line[j]),
                int(pages[j]),
                self._node_names[code] if code >= 0 else "fmem",
                int(kind[j]), int(health[j]), int(flags[j]),
                float(d[j]), float(f[j]), float(m[j]), float(r[j])))
        return out

    def _fold_exemplars(self, total, seq, line, pages, node, kind,
                        health, flags, d, f, m, r, n: int) -> None:
        log = self.log_
        k = log.top_k
        if n > k:
            # Ties at the cut must resolve under the same (-total, seq)
            # total order the merge uses, or chunked captures would keep
            # a different tied subset than a monolithic one.
            idx = np.lexsort((seq, -total))[:k].tolist()
        else:
            idx = range(n)
        cand = self._tuples(idx, total, seq, line, pages, node, kind,
                            health, flags, d, f, m, r)
        log.exemplars = sorted(log.exemplars + cand,
                               key=_exemplar_key)[:k]

    def _fold_reservoir(self, total, seq, line, pages, node, kind,
                        health, flags, d, f, m, r, n: int) -> None:
        # Vectorized Algorithm-R-style acceptance: record t (0-based
        # global) is admitted with probability R/(t+1); admitted
        # records displace a uniformly random slot.  Seeded and
        # deterministic for a fixed capture configuration.
        log = self.log_
        size = log.reservoir_size
        t = log.reservoir_seen + np.arange(n)
        log.reservoir_seen += n
        accept = self._rng.random(n) * (t + 1) < size
        accept[t < size] = True
        idx = np.nonzero(accept)[0].tolist()
        if not idx:
            return
        cand = self._tuples(idx, total, seq, line, pages, node, kind,
                            health, flags, d, f, m, r)
        for ex in cand:
            if len(log.reservoir) < size:
                log.reservoir.append(ex)
            else:
                log.reservoir[int(self._rng.integers(size))] = ex


def tail_anomalies(log: FaultLog, threshold: float = 3.5,
                   min_windows: int = 4) -> List[Dict[str, Any]]:
    """MAD-based latency-outlier windows, worst first.

    Each window's statistic is its max total stall; the modified
    z-score ``0.6745 * (x - median) / MAD`` flags windows whose tail
    latency is anomalous against the whole run.  With zero MAD (all
    windows identical) any strictly larger window is anomalous.
    Returns dicts with the window's id, seq range, score, fault count,
    dominant hop and degraded-fault count.
    """
    wins = sorted(log.windows.items())
    if len(wins) < min_windows:
        return []
    maxes = [stats[1] for _, stats in wins]
    srt = sorted(maxes)
    mid = len(srt) // 2
    med = (srt[mid] if len(srt) % 2
           else 0.5 * (srt[mid - 1] + srt[mid]))
    devs = sorted(abs(x - med) for x in maxes)
    mad = (devs[mid] if len(devs) % 2
           else 0.5 * (devs[mid - 1] + devs[mid]))
    out: List[Dict[str, Any]] = []
    for (wv, stats), x in zip(wins, maxes):
        if mad > 0:
            score = 0.6745 * (x - med) / mad
        else:
            score = math.inf if x > med else 0.0
        if score <= threshold:
            continue
        dom_counts = stats[2:6]
        dom = max(range(4), key=lambda i: (dom_counts[i], -i))
        out.append({
            "window": wv,
            "start_seq": wv * log.window_size,
            "end_seq": (wv + 1) * log.window_size,
            "max_ns": x,
            "score": score,
            "count": stats[0],
            "dominant_hop": HOPS[dom],
            "degraded_faults": stats[6],
        })
    out.sort(key=lambda a: (-a["score"], a["window"]))
    return out
