"""Sim-clock span tracing: nested spans, instants, counter series.

The tracer records Chrome-trace-style events against the *simulated*
clock.  Two realities of this codebase shape the design:

* Components usually **compute** a latency and return it instead of
  advancing the shared clock (the runtime bills stalls to an
  :class:`~repro.common.clock.Account`).  A naive tracer would collapse
  every span to zero width at the same timestamp.  The tracer therefore
  keeps a **cursor**: a monotone virtual timeline that starts at the
  sim clock, advances by every explicitly-charged duration, and snaps
  forward whenever the real clock overtakes it.  Spans opened while a
  parent is live start at the parent's cursor, so charged child costs
  lay out sequentially inside the parent — a readable flame graph even
  when the clock is frozen.

* Tracing must be **near-zero cost when disabled**: ``span()`` returns
  a shared no-op singleton and ``instant``/``emit`` return immediately,
  so a disabled tracer costs one attribute check per call site.

Events are bounded by ``max_events``; once full, new events are counted
as dropped rather than recorded, so a runaway campaign cannot eat the
heap.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List, Optional

from ..common.clock import SimClock

#: One trace event, Chrome trace-event flavoured, timestamps in ns.
Event = Dict[str, Any]


class _NullSpan:
    """Shared no-op span handed out by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def extend(self, ns: float) -> None:
        """No-op."""

    def set(self, **args: Any) -> None:
        """No-op."""


NULL_SPAN = _NullSpan()


class Span:
    """One live span; close it by exiting the ``with`` block."""

    __slots__ = ("_tracer", "name", "cat", "args", "start_ns",
                 "cursor", "_extra_ns")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.start_ns = 0.0
        self.cursor = 0.0       # where the next child starts
        self._extra_ns = 0.0

    def extend(self, ns: float) -> None:
        """Charge ``ns`` of duration not visible on the sim clock."""
        if ns > 0:
            self._extra_ns += ns

    def set(self, **args: Any) -> None:
        """Attach (or update) argument key/values on the span."""
        if self.args is None:
            self.args = {}
        self.args.update(args)

    def __enter__(self) -> "Span":
        self.start_ns = self._tracer._open(self)
        self.cursor = self.start_ns
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._close(self)


class Tracer:
    """Records spans and instants on a simulated timeline."""

    def __init__(self, clock: Optional[SimClock] = None,
                 enabled: bool = False, max_events: int = 500_000) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.enabled = enabled
        self.max_events = max_events
        self.events: List[Event] = []
        self.dropped = 0
        self._stack: List[Span] = []
        self._cursor = 0.0

    # -- lifecycle ---------------------------------------------------------------

    def enable(self) -> None:
        """Start recording."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording (already-recorded events are kept)."""
        self.enabled = False

    def clear(self) -> None:
        """Drop all recorded events and reset the drop counter."""
        self.events.clear()
        self.dropped = 0
        self._stack.clear()

    # -- timeline ----------------------------------------------------------------

    def _now(self) -> float:
        """Current virtual time: sim clock, floored by the cursor."""
        cursor = self._stack[-1].cursor if self._stack else self._cursor
        now = self.clock.now
        return now if now > cursor else cursor

    def _advance(self, to_ns: float) -> None:
        if self._stack:
            if to_ns > self._stack[-1].cursor:
                self._stack[-1].cursor = to_ns
        elif to_ns > self._cursor:
            self._cursor = to_ns

    def _record(self, event: Event) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    # -- span API ----------------------------------------------------------------

    def span(self, name: str, cat: str = "",
             **args: Any):
        """Open a span as a context manager (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, cat, args or None)

    def _open(self, span: Span) -> float:
        start = self._now()
        self._stack.append(span)
        return start

    def _close(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        end = max(self.clock.now, span.cursor,
                  span.start_ns + span._extra_ns)
        event: Event = {"name": span.name, "cat": span.cat or "span",
                        "ph": "X", "ts": span.start_ns,
                        "dur": end - span.start_ns}
        if span.args:
            event["args"] = dict(span.args)
        self._record(event)
        self._advance(end)

    def emit(self, name: str, dur_ns: float, cat: str = "",
             **args: Any) -> None:
        """Record a complete child span of ``dur_ns`` at the cursor."""
        if not self.enabled:
            return
        start = self._now()
        event: Event = {"name": name, "cat": cat or "span", "ph": "X",
                        "ts": start, "dur": max(dur_ns, 0.0)}
        if args:
            event["args"] = args
        self._record(event)
        self._advance(start + max(dur_ns, 0.0))

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        """Record an instant event at the current virtual time."""
        if not self.enabled:
            return
        event: Event = {"name": name, "cat": cat or "instant", "ph": "i",
                        "ts": self._now(), "s": "p"}
        if args:
            event["args"] = args
        self._record(event)

    def counter(self, name: str, **values: float) -> None:
        """Record a counter sample (a time-series point in the UI)."""
        if not self.enabled:
            return
        self._record({"name": name, "cat": "counter", "ph": "C",
                      "ts": self._now(), "args": dict(values)})

    def flow(self, name: str, flow_id: int, phase: str = "s",
             cat: str = "flow", ts: Optional[float] = None,
             **args: Any) -> None:
        """Record a flow event (Chrome ``s``/``t``/``f`` arrows).

        Flow events with the same ``flow_id`` render as arrows between
        the enclosing slices across tracks — the cross-component
        correlation primitive.  ``phase`` is ``s`` (start), ``t``
        (step) or ``f`` (finish); ``ts`` overrides the virtual clock
        when replaying a known timeline (e.g. fleet fault chains).
        """
        if not self.enabled:
            return
        if phase not in ("s", "t", "f"):
            raise ValueError(f"flow phase must be s/t/f, got {phase!r}")
        event: Event = {"name": name, "cat": cat, "ph": phase,
                        "ts": self._now() if ts is None else ts,
                        "id": int(flow_id)}
        if phase == "f":
            event["bp"] = "e"
        if args:
            event["args"] = args
        self._record(event)


def traced(name: Optional[str] = None, cat: str = "",
           attr: str = "tracer") -> Callable:
    """Decorator: wrap a method in a span from ``self.<attr>``.

    The wrapped object may have no tracer (or a disabled one); the
    call then runs undecorated at the cost of one attribute lookup.
    """
    def decorator(fn: Callable) -> Callable:
        span_name = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(self, *args: Any, **kwargs: Any):
            tracer = getattr(self, attr, None)
            if tracer is None or not tracer.enabled:
                return fn(self, *args, **kwargs)
            with tracer.span(span_name, cat):
                return fn(self, *args, **kwargs)
        return wrapper
    return decorator
