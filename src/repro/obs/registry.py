"""A labeled metrics registry: counters, gauges, latency histograms.

The registry is the single read surface for runtime metrics.  Hot
paths keep incrementing their existing :class:`~repro.common.stats.Counter`
bags (zero added cost); the registry overlays them with *callable
gauges* so every reader — telemetry snapshots, the periodic sampler,
the Prometheus exporter — sees one coherent, labeled namespace instead
of reaching into ``runtime.counters`` / ``agent.counters`` ad hoc.

Metric families follow the Prometheus data model: a family has a name,
a help string and a fixed set of label names; ``labels(...)`` returns
the child for one label-value combination.  Families with no labels
act as their own single child, so ``registry.counter("x").inc()`` works
directly.

Histograms are log-bucketed (power-of-two bucket bounds), which gives
constant-time ``observe`` and good relative error for the latency
ranges the simulation spans (tens of ns to tens of ms).  Quantiles are
estimated at the geometric midpoint of the target bucket and clamped
to the observed min/max, so a single-sample histogram reports that
sample exactly and an empty one reports ``nan``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..common.clock import SimClock
from ..common.errors import ConfigError

#: One exported sample: (metric name, ((label, value), ...), value).
Sample = Tuple[str, Tuple[Tuple[str, str], ...], Any]


def _label_key(label_names: Tuple[str, ...],
               kwargs: Dict[str, str]) -> Tuple[str, ...]:
    if set(kwargs) != set(label_names):
        raise ConfigError(
            f"labels {sorted(kwargs)} do not match declared "
            f"label names {sorted(label_names)}")
    return tuple(str(kwargs[name]) for name in label_names)


class CounterMetric:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Increase by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ConfigError(f"counter decrement ({amount}) not allowed")
        self.value += amount


class GaugeMetric:
    """A point-in-time value: settable or backed by a callable."""

    __slots__ = ("_value", "_fn")

    def __init__(self, fn: Optional[Callable[[], Any]] = None) -> None:
        self._value: Any = 0
        self._fn = fn

    def set(self, value: Any) -> None:
        """Set the gauge (only for gauges without a callback)."""
        if self._fn is not None:
            raise ConfigError("cannot set a callback-backed gauge")
        self._value = value

    @property
    def value(self) -> Any:
        """Current value (calls the callback when one is bound)."""
        if self._fn is not None:
            return self._fn()
        return self._value


class HistogramMetric:
    """Log-bucketed distribution with cheap quantile estimates.

    Buckets are powers of two: an observation ``v`` falls in the bucket
    with upper bound ``2**ceil(log2(v))``.  Values ``<= 0`` land in an
    underflow bucket with bound 0.

    Exactness contract: ``sum``, ``count``, ``min`` and ``max`` are
    tracked exactly per observation, so :attr:`mean` is *exact* — only
    :meth:`quantile` is bucket-estimated.  Its error bound: the true
    quantile lies in ``(upper/2, upper]`` for the selected bucket and
    the estimate is the geometric midpoint ``0.75 * upper``, so the
    relative error is at most 50% (estimate vs a true value of
    ``upper/2``) and at most 25% against the bucket's upper bound;
    clamping to the observed min/max makes single-sample and
    single-bucket-edge histograms exact.
    """

    __slots__ = ("_buckets", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}   # exponent -> count
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    @staticmethod
    def _bucket_of(value: float) -> int:
        if value <= 0:
            return -(2 ** 30)   # underflow bucket, sorts first
        # Smallest e with value <= 2**e.
        e = math.frexp(value)[1]
        if value == 2.0 ** (e - 1):   # exact power of two: own bound
            return e - 1
        return e

    def observe(self, value: float) -> None:
        """Record one observation."""
        b = self._bucket_of(value)
        self._buckets[b] = self._buckets.get(b, 0) + 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def buckets(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs in increasing order."""
        out: List[Tuple[float, int]] = []
        cumulative = 0
        for exp in sorted(self._buckets):
            cumulative += self._buckets[exp]
            bound = 0.0 if exp <= -(2 ** 29) else 2.0 ** exp
            out.append((bound, cumulative))
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile; ``nan`` for an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        cumulative = 0
        for exp in sorted(self._buckets):
            cumulative += self._buckets[exp]
            if cumulative >= target:
                if exp <= -(2 ** 29):
                    estimate = 0.0
                else:
                    upper = 2.0 ** exp
                    estimate = 0.75 * upper   # midpoint of (upper/2, upper]
                return min(max(estimate, self.min), self.max)
        return self.max

    def merge(self, other: "HistogramMetric") -> "HistogramMetric":
        """Fold another histogram's observations into this one.

        Both histograms must use the same bucketing scheme — for the
        log-bucketed scheme that means integer power-of-two exponents
        (checked), so bucket boundaries are structurally aligned and
        merged bucket counts equal those of a single histogram that
        observed both streams.  ``count`` and the buckets merge
        exactly; ``min``/``max`` are exact; ``sum`` adds the two exact
        partial sums (bit-exact whenever the partial sums are exactly
        representable, e.g. integer-valued observations).  Because the
        buckets merge exactly, :meth:`quantile` on the merged
        histogram carries the same error bound as on a sequentially
        built one.  Returns self.
        """
        if not isinstance(other, HistogramMetric):
            raise ConfigError(
                f"cannot merge HistogramMetric with "
                f"{type(other).__name__}")
        for exp in other._buckets:
            if not isinstance(exp, int):
                raise ConfigError(
                    f"misaligned histogram bucket bound {exp!r}: "
                    f"expected an integer power-of-two exponent")
        for exp, c in other._buckets.items():
            self._buckets[exp] = self._buckets.get(exp, 0) + c
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def state(self) -> Dict[str, Any]:
        """The full histogram state as a JSON-serializable dict.

        Round-trips exactly through :meth:`from_state`: buckets are
        ``[exponent, count]`` pairs (integer exponents, so no float
        re-bucketing happens on load) and ``sum``/``min``/``max`` are
        carried verbatim — a restored histogram reports the same
        counts, quantiles and mean bit for bit.  Infinities (the
        empty-histogram min/max sentinels) are encoded as None.
        """
        def _num(v: float) -> Any:
            return None if v in (math.inf, -math.inf) else v
        return {"buckets": [[exp, c] for exp, c
                            in sorted(self._buckets.items())],
                "count": self.count, "sum": self.sum,
                "min": _num(self.min), "max": _num(self.max)}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "HistogramMetric":
        """Rebuild a histogram from :meth:`state` output."""
        hist = cls()
        hist._buckets = {int(exp): int(c)
                         for exp, c in state.get("buckets", [])}
        hist.count = int(state.get("count", 0))
        hist.sum = float(state.get("sum", 0.0))
        lo, hi = state.get("min"), state.get("max")
        hist.min = math.inf if lo is None else float(lo)
        hist.max = -math.inf if hi is None else float(hi)
        return hist

    @property
    def p50(self) -> float:
        """Median estimate."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """95th-percentile estimate."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """99th-percentile estimate."""
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        """Exact mean of all observations (``nan`` when empty)."""
        if self.count == 0:
            return float("nan")
        return self.sum / self.count

    def snapshot(self) -> Dict[str, float]:
        """One flat dict of the summary stats (for diffs/artifacts).

        ``count``/``sum``/``mean``/``min``/``max`` are exact;
        ``p50``/``p95``/``p99`` carry the bucket-estimate error bound
        documented on the class.  Empty histograms report zeros so the
        snapshot stays JSON-serializable.
        """
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {"count": self.count, "sum": self.sum, "mean": self.mean,
                "min": self.min, "max": self.max,
                "p50": self.p50, "p95": self.p95, "p99": self.p99}


class MetricFamily:
    """A named metric plus its labeled children."""

    def __init__(self, name: str, kind: str, help: str,
                 label_names: Tuple[str, ...],
                 factory: Callable[[], Any]) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._factory = factory
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not label_names:
            self._children[()] = factory()

    def labels(self, **kwargs: str):
        """The child metric for one label-value combination."""
        key = _label_key(self.label_names, kwargs)
        child = self._children.get(key)
        if child is None:
            child = self._factory()
            self._children[key] = child
        return child

    def children(self) -> Iterable[Tuple[Tuple[Tuple[str, str], ...], Any]]:
        """(labels, child) pairs in insertion order."""
        for key, child in self._children.items():
            yield tuple(zip(self.label_names, key)), child

    # Convenience passthroughs for unlabeled families.

    def _sole(self):
        if self.label_names:
            raise ConfigError(
                f"metric {self.name!r} has labels {self.label_names}; "
                f"use .labels(...)")
        return self._children[()]

    def inc(self, amount: int = 1) -> None:
        """Unlabeled counter increment."""
        self._sole().inc(amount)

    def set(self, value: Any) -> None:
        """Unlabeled gauge set."""
        self._sole().set(value)

    def observe(self, value: float) -> None:
        """Unlabeled histogram observation."""
        self._sole().observe(value)

    @property
    def value(self) -> Any:
        """Unlabeled counter/gauge value."""
        return self._sole().value

    def __getattr__(self, item: str) -> Any:
        # Quantile shortcuts etc. on unlabeled histograms.
        if item.startswith("_"):
            raise AttributeError(item)
        return getattr(self._sole(), item)


class MetricsRegistry:
    """All metric families of one runtime, keyed by name.

    Re-registering a name returns the existing family (so components
    can be rebuilt against a shared registry), but re-registering with
    a different kind is an error.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._families: Dict[str, MetricFamily] = {}

    def _register(self, name: str, kind: str, help: str,
                  labels: Tuple[str, ...],
                  factory: Callable[[], Any]) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ConfigError(
                    f"metric {name!r} already registered as {family.kind}")
            return family
        family = MetricFamily(name, kind, help, labels, factory)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Tuple[str, ...] = ()) -> MetricFamily:
        """Get or create a counter family."""
        return self._register(name, "counter", help, tuple(labels),
                              CounterMetric)

    def gauge(self, name: str, help: str = "",
              labels: Tuple[str, ...] = (),
              fn: Optional[Callable[[], Any]] = None) -> MetricFamily:
        """Get or create a gauge family (optionally callback-backed)."""
        return self._register(name, "gauge", help, tuple(labels),
                              lambda: GaugeMetric(fn))

    def histogram(self, name: str, help: str = "",
                  labels: Tuple[str, ...] = ()) -> MetricFamily:
        """Get or create a log-bucketed histogram family."""
        return self._register(name, "histogram", help, tuple(labels),
                              HistogramMetric)

    def families(self) -> List[MetricFamily]:
        """All families in registration order."""
        return list(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or None."""
        return self._families.get(name)

    def samples(self) -> List[Sample]:
        """Flat (name, labels, value) samples for counters and gauges.

        Histograms are skipped here (they are multi-valued); exporters
        walk them explicitly via :meth:`families`.
        """
        out: List[Sample] = []
        for family in self._families.values():
            if family.kind == "histogram":
                continue
            for labels, child in family.children():
                out.append((family.name, labels, child.value))
        return out

    def flat_samples(self, numeric_only: bool = False) -> Dict[str, Any]:
        """Counter/gauge samples flattened to ``name{k=v,...}`` keys.

        The key shape matches the sampler's rows (and therefore the
        tsdb series names), so final registry values and sampled
        series join on the same identifiers.  ``numeric_only`` drops
        non-numeric gauges (and bools), which is exactly the sampler's
        filter.  Insertion order follows registration order.
        """
        out: Dict[str, Any] = {}
        for name, labels, value in self.samples():
            if numeric_only and (not isinstance(value, (int, float))
                                 or isinstance(value, bool)):
                continue
            key = name if not labels else (
                name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}")
            out[key] = value
        return out

    def sections(self) -> Dict[str, Dict[str, Any]]:
        """Gauge values grouped by dotted-name prefix.

        ``memory.fmem_bytes`` lands in section ``memory`` under key
        ``fmem_bytes``; this is the shape
        :class:`~repro.kona.telemetry.TelemetrySnapshot` serves.
        Sections and keys come back sorted for determinism.
        """
        grouped: Dict[str, Dict[str, Any]] = {}
        for family in self._families.values():
            if family.kind != "gauge" or "." not in family.name:
                continue
            section, key = family.name.split(".", 1)
            for labels, child in family.children():
                name = key if not labels else (
                    key + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}")
                grouped.setdefault(section, {})[name] = child.value
        return {section: dict(sorted(grouped[section].items()))
                for section in sorted(grouped)}
