"""repro.obs — the flight-recorder and control-tower subsystem.

Labeled metrics registry, sim-clock span tracing, periodic gauge
sampling, and Chrome-trace / Prometheus / JSONL exporters; on top of
them the analysis layer: the trace profiler (:mod:`repro.obs.analysis`),
the run-to-run diff (:mod:`repro.obs.diff`), the time-series store
(:mod:`repro.obs.tsdb`) and the SLO/burn-rate engine
(:mod:`repro.obs.slo`).  See ``docs/architecture.md`` (Observability
and Control tower) for the span model, export formats and data flow.
"""

from .causal import CausalCapture, FaultLog, tail_anomalies
from .analysis import (
    ProfileReport,
    SpanNode,
    SpanStat,
    build_forest,
    critical_path,
    profile,
    stall_windows,
    top_stalls,
)
from .diff import (
    BenchDelta,
    DiffEntry,
    DiffReport,
    bench_regressions,
    diff_bench,
    diff_runs,
    load_artifact,
    run_artifact,
    save_artifact,
)
from .export import (
    chrome_trace,
    component_pid,
    fault_chain_trace,
    iter_jsonl,
    jsonl_lines,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from .dashboard import dashboard_html, dashboard_text
from .fleet import ComponentSnapshot, FleetRecorder
from .recorder import FlightRecorder
from .registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricFamily,
    MetricsRegistry,
)
from .sampler import Sampler
from .slo import Alert, SLOEngine, SLORule
from .trace import NULL_SPAN, Span, Tracer, traced
from .tsdb import TimeSeriesStore

__all__ = [
    "Alert",
    "BenchDelta",
    "CausalCapture",
    "ComponentSnapshot",
    "CounterMetric",
    "DiffEntry",
    "DiffReport",
    "FaultLog",
    "FleetRecorder",
    "FlightRecorder",
    "GaugeMetric",
    "HistogramMetric",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_SPAN",
    "ProfileReport",
    "SLOEngine",
    "SLORule",
    "Sampler",
    "Span",
    "SpanNode",
    "SpanStat",
    "TimeSeriesStore",
    "Tracer",
    "bench_regressions",
    "build_forest",
    "chrome_trace",
    "component_pid",
    "critical_path",
    "dashboard_html",
    "dashboard_text",
    "diff_bench",
    "diff_runs",
    "fault_chain_trace",
    "iter_jsonl",
    "jsonl_lines",
    "load_artifact",
    "profile",
    "prometheus_text",
    "run_artifact",
    "save_artifact",
    "stall_windows",
    "tail_anomalies",
    "top_stalls",
    "traced",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
