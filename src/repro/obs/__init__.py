"""repro.obs — the flight-recorder subsystem.

Labeled metrics registry, sim-clock span tracing, periodic gauge
sampling, and Chrome-trace / Prometheus / JSONL exporters.  See
``docs/architecture.md`` (Observability) for the span model and
export formats.
"""

from .export import (
    chrome_trace,
    jsonl_lines,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from .recorder import FlightRecorder
from .registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricFamily,
    MetricsRegistry,
)
from .sampler import Sampler
from .trace import NULL_SPAN, Span, Tracer, traced

__all__ = [
    "CounterMetric",
    "FlightRecorder",
    "GaugeMetric",
    "HistogramMetric",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_SPAN",
    "Sampler",
    "Span",
    "Tracer",
    "chrome_trace",
    "jsonl_lines",
    "prometheus_text",
    "traced",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
