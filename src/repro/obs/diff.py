"""Run-to-run performance diff with configurable noise thresholds.

Two halves, one report shape:

* **Run artifacts** — :func:`run_artifact` freezes one finished run
  (a :class:`~repro.obs.recorder.FlightRecorder`, optionally plus its
  :class:`~repro.obs.analysis.ProfileReport`) into a plain JSON dict:
  every numeric counter/gauge, every histogram's summary snapshot, and
  per-span/per-category self times.  :func:`diff_runs` compares two
  artifacts — scalar vs batched engine, before vs after a PR, two
  seeds — and classifies each delta as significant or noise against
  relative/absolute thresholds.  Two identical-seed runs must diff to
  *zero* significant entries; that property is the regression tests'
  anchor.

* **Benchmark baselines** — :func:`diff_bench` compares a freshly
  measured bench payload (or a ``history.jsonl`` record; see
  :func:`repro.experiments.bench.append_history`) against a committed
  ``BENCH_*.json`` baseline, case by case, and returns the regressions
  beyond a speedup tolerance.  This is the CI perf gate.

Only *relative* wall-clock quantities (speedups) are gated — absolute
seconds vary across hosts; the committed baseline carries its host
fingerprint so a cross-host comparison is visible in the report.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..common.errors import ConfigError
from .registry import HistogramMetric, MetricsRegistry

#: Artifact schema version written by :func:`run_artifact`.
ARTIFACT_VERSION = 1

#: Histogram snapshot keys compared by :func:`diff_runs`.
_HIST_KEYS = ("count", "sum", "mean", "p50", "p95", "p99")


def _sample_key(name: str, labels) -> str:
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def run_artifact(recorder, profile=None,
                 meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Freeze a recorder (and optional profile) into a JSON-able dict."""
    registry: MetricsRegistry = recorder.registry
    metrics: Dict[str, float] = {}
    for name, labels, value in registry.samples():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        metrics[_sample_key(name, labels)] = float(value)
    histograms: Dict[str, Dict[str, float]] = {}
    for family in registry.families():
        if family.kind != "histogram":
            continue
        for labels, child in family.children():
            assert isinstance(child, HistogramMetric)
            histograms[_sample_key(family.name, labels)] = child.snapshot()
    artifact: Dict[str, Any] = {
        "format": "repro-run-artifact",
        "version": ARTIFACT_VERSION,
        "metrics": metrics,
        "histograms": histograms,
        "meta": dict(meta or {}),
    }
    if profile is not None:
        artifact["self_time_ns"] = {
            s.key: s.self_ns for s in profile.by_name.values()}
        artifact["category_self_time_ns"] = {
            s.key: s.self_ns for s in profile.by_category.values()}
        artifact["total_ns"] = profile.total_ns
    return artifact


def save_artifact(artifact: Dict[str, Any], path: str) -> str:
    """Write an artifact as JSON; returns the path."""
    with open(path, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_artifact(path: str) -> Dict[str, Any]:
    """Load an artifact written by :func:`save_artifact`."""
    with open(path) as fh:
        artifact = json.load(fh)
    if artifact.get("format") != "repro-run-artifact":
        raise ConfigError(f"{path} is not a repro run artifact")
    return artifact


@dataclass(frozen=True)
class DiffEntry:
    """One compared quantity between two runs."""

    kind: str          # "metric" | "histogram" | "self-time" | "category"
    name: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        """Absolute change, after minus before."""
        return self.after - self.before

    @property
    def rel_change(self) -> float:
        """Relative change against ``before`` (inf for 0 -> nonzero)."""
        if self.before == 0:
            return 0.0 if self.after == 0 else math.inf
        return self.delta / abs(self.before)

    def row(self) -> Tuple[str, str, float, float, float, str]:
        """A render-ready table row."""
        rel = self.rel_change
        rel_str = "new" if math.isinf(rel) else f"{rel:+.1%}"
        return (self.kind, self.name, round(self.before, 3),
                round(self.after, 3), round(self.delta, 3), rel_str)


@dataclass
class DiffReport:
    """Classified deltas between two runs."""

    rel_tol: float
    abs_tol: float
    significant: List[DiffEntry] = field(default_factory=list)
    noise: List[DiffEntry] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)   # keys in only one run

    @property
    def clean(self) -> bool:
        """True when nothing significant moved and nothing vanished."""
        return not self.significant and not self.missing

    def to_json(self) -> Dict[str, Any]:
        """A JSON-able summary (for CI artifacts)."""
        def rows(entries: List[DiffEntry]) -> List[Dict[str, Any]]:
            return [{"kind": e.kind, "name": e.name, "before": e.before,
                     "after": e.after, "delta": e.delta} for e in entries]
        return {"rel_tol": self.rel_tol, "abs_tol": self.abs_tol,
                "clean": self.clean,
                "significant": rows(self.significant),
                "noise_count": len(self.noise),
                "missing": list(self.missing)}


def _compare(report: DiffReport, kind: str,
             before: Dict[str, float], after: Dict[str, float]) -> None:
    for key in sorted(set(before) | set(after)):
        if key not in before or key not in after:
            report.missing.append(f"{kind}:{key}")
            continue
        entry = DiffEntry(kind, key, float(before[key]), float(after[key]))
        moved = abs(entry.delta) > report.abs_tol and (
            math.isinf(entry.rel_change)
            or abs(entry.rel_change) > report.rel_tol)
        (report.significant if moved else report.noise).append(entry)


def diff_runs(before: Dict[str, Any], after: Dict[str, Any],
              rel_tol: float = 0.01, abs_tol: float = 1e-9) -> DiffReport:
    """Compare two run artifacts; classify every delta.

    A delta is *significant* when it exceeds both the absolute floor
    (``abs_tol``, default ~0: any real movement) and the relative
    threshold (``rel_tol``, default 1%).  Keys present in only one
    artifact are reported under ``missing`` — a renamed counter is a
    finding, not noise.
    """
    if rel_tol < 0 or abs_tol < 0:
        raise ConfigError("diff tolerances must be non-negative")
    report = DiffReport(rel_tol=rel_tol, abs_tol=abs_tol)
    _compare(report, "metric",
             before.get("metrics", {}), after.get("metrics", {}))
    hist_a = {f"{name}.{k}": snap.get(k, 0.0)
              for name, snap in before.get("histograms", {}).items()
              for k in _HIST_KEYS}
    hist_b = {f"{name}.{k}": snap.get(k, 0.0)
              for name, snap in after.get("histograms", {}).items()
              for k in _HIST_KEYS}
    _compare(report, "histogram", hist_a, hist_b)
    _compare(report, "self-time",
             before.get("self_time_ns", {}), after.get("self_time_ns", {}))
    _compare(report, "category",
             before.get("category_self_time_ns", {}),
             after.get("category_self_time_ns", {}))
    return report


# -- benchmark baseline gate ---------------------------------------------------


def _bench_cases(payload: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Per-workload case dicts of a bench payload or history record."""
    return {case["workload"]: case for case in payload.get("cases", [])}


@dataclass(frozen=True)
class BenchDelta:
    """One workload's speedup, measured vs baseline."""

    workload: str
    baseline_speedup: float
    current_speedup: float
    tolerance: float

    @property
    def floor(self) -> float:
        """Minimum acceptable speedup for this workload."""
        return self.baseline_speedup * (1.0 - self.tolerance)

    @property
    def regressed(self) -> bool:
        """Whether the measured speedup fell below the floor."""
        return self.current_speedup < self.floor

    def row(self) -> Tuple[str, float, float, float, str]:
        """A render-ready table row."""
        return (self.workload, round(self.baseline_speedup, 2),
                round(self.current_speedup, 2), round(self.floor, 2),
                "REGRESSED" if self.regressed else "ok")


def diff_bench(baseline: Dict[str, Any], current: Dict[str, Any],
               tolerance: float = 0.5) -> List[BenchDelta]:
    """Compare per-case speedups of two bench payloads.

    ``tolerance`` is the allowed *fractional drop* from the committed
    baseline — 0.5 tolerates shared-runner noise down to half the
    committed speedup; 0.0 demands parity.  Workloads present only in
    one payload are skipped (suites may grow cases over time); the
    benchmark names must match, because comparing the kcachesim suite
    against the runtime suite is never meaningful.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ConfigError(f"tolerance must be in [0, 1), got {tolerance}")
    name_a = baseline.get("benchmark")
    name_b = current.get("benchmark")
    if name_a != name_b:
        raise ConfigError(
            f"benchmark mismatch: baseline is {name_a!r}, "
            f"current is {name_b!r}")
    base_cases = _bench_cases(baseline)
    cur_cases = _bench_cases(current)
    deltas = []
    for workload in sorted(set(base_cases) & set(cur_cases)):
        deltas.append(BenchDelta(
            workload=workload,
            baseline_speedup=float(base_cases[workload]["speedup"]),
            current_speedup=float(cur_cases[workload]["speedup"]),
            tolerance=tolerance))
    if not deltas:
        raise ConfigError("no common workloads between baseline and "
                          "current bench payloads")
    return deltas


def bench_regressions(deltas: List[BenchDelta]) -> List[str]:
    """Failure messages for regressed cases (empty = gate passes)."""
    return [f"{d.workload}: speedup {d.current_speedup:.2f}x below "
            f"floor {d.floor:.2f}x (baseline {d.baseline_speedup:.2f}x, "
            f"tolerance {d.tolerance:.0%})"
            for d in deltas if d.regressed]
