"""The flight recorder: one handle bundling registry, tracer, sampler.

Every :class:`~repro.kona.runtime.KonaRuntime` owns a recorder.  By
default only the metrics registry is live (callable gauges over the
components' counters — no hot-path cost); constructing with
``tracing=True`` (or calling :meth:`FlightRecorder.start`) turns on
span recording, and a ``sample_interval_ns`` adds the periodic gauge
sampler.  Exports delegate to :mod:`repro.obs.export`.
"""

from __future__ import annotations

from typing import Optional

from ..common.clock import SimClock
from . import export
from .registry import MetricsRegistry
from .sampler import Sampler
from .trace import Tracer
from .tsdb import TimeSeriesStore


class FlightRecorder:
    """Observability bundle for one runtime."""

    def __init__(self, clock: Optional[SimClock] = None,
                 tracing: bool = False,
                 sample_interval_ns: Optional[float] = None,
                 max_events: int = 500_000,
                 component: str = "runtime",
                 tenant: Optional[str] = None) -> None:
        # Component identity: who this telemetry belongs to in a fleet
        # view ("runtime:shard3", "memnode:5", "fabric", ...), plus an
        # optional tenant label for per-tenant attribution.  Pure
        # labels — they cost nothing on the hot path and are only read
        # at merge/export time.
        self.component = component
        self.tenant = tenant
        self.clock = clock if clock is not None else SimClock()
        self.registry = MetricsRegistry(clock=self.clock)
        self.tracer = Tracer(self.clock, enabled=tracing,
                             max_events=max_events)
        self.sampler: Optional[Sampler] = None
        self.tsdb: Optional[TimeSeriesStore] = None
        if sample_interval_ns is not None:
            self.tsdb = TimeSeriesStore()
            self.sampler = Sampler(self.registry, tracer=self.tracer,
                                   interval_ns=sample_interval_ns,
                                   clock=self.clock, tsdb=self.tsdb)

    # -- wiring -------------------------------------------------------------------

    def bind_clock(self, clock: SimClock) -> None:
        """Rebind every component to ``clock`` (the runtime's fabric
        clock), so timestamps agree no matter which was built first."""
        self.clock = clock
        self.registry.clock = clock
        self.tracer.clock = clock
        if self.sampler is not None:
            self.sampler.clock = clock

    @property
    def enabled(self) -> bool:
        """Whether span tracing is recording."""
        return self.tracer.enabled

    def start(self) -> None:
        """Begin span recording."""
        self.tracer.enable()

    def stop(self) -> None:
        """Stop span recording (events are kept for export)."""
        self.tracer.disable()

    def tick(self) -> None:
        """Periodic maintenance hook: drives the gauge sampler."""
        if self.sampler is not None:
            self.sampler.maybe_sample()

    # -- exports ------------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The span timeline as a Chrome trace-event object."""
        return export.chrome_trace(self.tracer.events,
                                   process_name=self.component)

    def write_chrome_trace(self, path: str) -> str:
        """Write the Chrome trace JSON; returns the path."""
        return export.write_chrome_trace(self, path)

    def prometheus_text(self) -> str:
        """The registry in Prometheus text format."""
        return export.prometheus_text(self.registry)

    def write_prometheus(self, path: str) -> str:
        """Write the Prometheus dump; returns the path."""
        return export.write_prometheus(self, path)

    def write_jsonl(self, path: str) -> str:
        """Write the JSONL event log; returns the path."""
        return export.write_jsonl(self, path)
