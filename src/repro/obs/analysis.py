"""Trace-analysis profiler: self time, critical paths, stall windows.

The tracer records a flat list of Chrome-style complete events
(``ph: "X"``) on one virtual timeline — children strictly inside their
parents, siblings laid out sequentially by the cursor discipline (see
:mod:`repro.obs.trace`).  This module rebuilds the span forest from
that flat list and answers the questions the raw timeline cannot:

* **Self time vs total time** — a ``fetch.fill`` span *contains* its
  ``rdma.read`` child, so summing durations double-counts.  Self time
  is a span's duration minus its direct children's durations; summed
  over the whole forest, self times reconstruct each root's duration
  *exactly* (the profiler asserts this conservation and reports it as
  ``coverage``).
* **Critical-path extraction** — the chain from the longest root down
  through each level's longest child: where an optimizer should look
  first.
* **Windowed stall attribution** — self time bucketed by span category
  (``fetch``/``evict``/``rdma``/...) per fixed window of simulated
  time, so a campaign's phases (healthy, degraded, recovering) show
  as shifts in where the time goes.

Nesting is reconstructed by a single sweep over events sorted by
``(start, -duration)`` with a containment stack, so the profiler works
on any schema-valid trace — including ones loaded back from a
``trace.json`` written by an earlier run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..common.errors import ConfigError

#: A raw tracer/Chrome event (timestamps in ns at this layer).
Event = Dict[str, Any]


@dataclass
class SpanNode:
    """One span in the reconstructed forest."""

    name: str
    cat: str
    start_ns: float
    dur_ns: float
    depth: int = 0
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def end_ns(self) -> float:
        """Span end timestamp."""
        return self.start_ns + self.dur_ns

    @property
    def child_ns(self) -> float:
        """Total duration of direct children."""
        return sum(c.dur_ns for c in self.children)

    @property
    def self_ns(self) -> float:
        """Duration not covered by direct children (clamped at 0)."""
        return max(self.dur_ns - self.child_ns, 0.0)


@dataclass
class SpanStat:
    """Aggregated totals for one span name (or category)."""

    key: str
    count: int = 0
    total_ns: float = 0.0
    self_ns: float = 0.0

    def add(self, node: SpanNode) -> None:
        """Fold one node into the aggregate."""
        self.count += 1
        self.total_ns += node.dur_ns
        self.self_ns += node.self_ns


def build_forest(events: Iterable[Event]) -> List[SpanNode]:
    """Reconstruct the span forest from flat complete (``X``) events.

    Events are sorted by start time with longer spans first on ties
    (a parent opens at or before its children and outlives them), then
    swept with a containment stack.  Non-``X`` events (instants,
    counters, metadata) are ignored.
    """
    spans = [SpanNode(name=e["name"], cat=e.get("cat", "") or "span",
                      start_ns=float(e["ts"]), dur_ns=float(e.get("dur", 0.0)))
             for e in events if e.get("ph") == "X"]
    spans.sort(key=lambda s: (s.start_ns, -s.dur_ns))
    roots: List[SpanNode] = []
    stack: List[SpanNode] = []
    for span in spans:
        while stack and span.start_ns >= stack[-1].end_ns:
            stack.pop()
        if stack:
            span.depth = stack[-1].depth + 1
            stack[-1].children.append(span)
        else:
            roots.append(span)
        stack.append(span)
    return roots


def _walk(roots: List[SpanNode]) -> Iterable[SpanNode]:
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


@dataclass
class ProfileReport:
    """Everything the profiler computed over one trace."""

    roots: List[SpanNode]
    by_name: Dict[str, SpanStat]
    by_category: Dict[str, SpanStat]
    total_ns: float          # sum of root durations (the traced time)
    self_total_ns: float     # sum of every span's self time

    @property
    def coverage(self) -> float:
        """Self-time conservation: ``self_total / total`` (1.0 when
        the forest reconstructed cleanly; an empty trace reports 1.0)."""
        if self.total_ns <= 0:
            return 1.0
        return self.self_total_ns / self.total_ns

    def top_spans(self, n: int = 10,
                  key: str = "self_ns") -> List[SpanStat]:
        """The ``n`` heaviest span names by ``self_ns`` or ``total_ns``."""
        if key not in ("self_ns", "total_ns"):
            raise ConfigError(f"unknown sort key {key!r}")
        return sorted(self.by_name.values(),
                      key=lambda s: -getattr(s, key))[:n]

    def top_categories(self, n: int = 10) -> List[SpanStat]:
        """The ``n`` heaviest categories by self time."""
        return sorted(self.by_category.values(),
                      key=lambda s: -s.self_ns)[:n]


def profile(events: Iterable[Event]) -> ProfileReport:
    """Profile a flat event list into per-span and per-category stats."""
    roots = build_forest(events)
    by_name: Dict[str, SpanStat] = {}
    by_cat: Dict[str, SpanStat] = {}
    self_total = 0.0
    for node in _walk(roots):
        by_name.setdefault(node.name, SpanStat(node.name)).add(node)
        by_cat.setdefault(node.cat, SpanStat(node.cat)).add(node)
        self_total += node.self_ns
    return ProfileReport(
        roots=roots,
        by_name=by_name,
        by_category=by_cat,
        total_ns=sum(r.dur_ns for r in roots),
        self_total_ns=self_total,
    )


#: One critical-path step: (depth, name, cat, start ns, dur ns, self ns).
PathStep = Tuple[int, str, str, float, float, float]


def critical_path(roots: List[SpanNode]) -> List[PathStep]:
    """The heaviest chain through the forest: longest root, then the
    longest direct child at every level down to a leaf."""
    if not roots:
        return []
    node: Optional[SpanNode] = max(roots, key=lambda r: r.dur_ns)
    path: List[PathStep] = []
    while node is not None:
        path.append((node.depth, node.name, node.cat, node.start_ns,
                     node.dur_ns, node.self_ns))
        node = (max(node.children, key=lambda c: c.dur_ns)
                if node.children else None)
    return path


#: One attribution window: (window-end ns, {category: self ns}).
Window = Tuple[float, Dict[str, float]]


def stall_windows(roots: List[SpanNode], window_ns: float,
                  categories: Optional[Iterable[str]] = None
                  ) -> List[Window]:
    """Per-window self-time attribution by span category.

    Each span's self time is attributed to the window containing its
    *start* timestamp (spans here are orders of magnitude shorter than
    a useful window, so prorating adds noise, not accuracy).  Pass
    ``categories`` to restrict attribution to the stall-relevant
    tracks, e.g. ``("fetch", "evict", "rdma", "net")``.  Windows with
    no attributed time are skipped.
    """
    if window_ns <= 0:
        raise ConfigError(f"attribution window must be positive, "
                          f"got {window_ns}")
    wanted = set(categories) if categories is not None else None
    bins: Dict[int, Dict[str, float]] = {}
    for node in _walk(roots):
        if wanted is not None and node.cat not in wanted:
            continue
        ns = node.self_ns
        if ns <= 0:
            continue
        idx = int(node.start_ns // window_ns)
        bucket = bins.setdefault(idx, {})
        bucket[node.cat] = bucket.get(node.cat, 0.0) + ns
    return [((idx + 1) * window_ns, bins[idx]) for idx in sorted(bins)]


def top_stalls(windows: List[Window], n: int = 3
               ) -> List[Tuple[float, List[Tuple[str, float]]]]:
    """Top-``n`` stall categories per window, heaviest first."""
    out = []
    for end_ns, by_cat in windows:
        ranked = sorted(by_cat.items(), key=lambda kv: -kv[1])[:n]
        out.append((end_ns, ranked))
    return out
