"""Declarative SLOs with burn-rate alerting over the time-series store.

An :class:`SLORule` names a metric, how to read it (``level`` — the
gauge value itself; ``rate`` — a cumulative counter's increase per
simulated second; ``quantile`` — a registry histogram's estimated
quantile), and the *good* condition (``op``/``bound``).  The
:class:`SLOEngine` evaluates rules against the
:class:`~repro.obs.tsdb.TimeSeriesStore` the sampler populates and
raises :class:`Alert` objects using the error-budget **burn rate**
discipline: over a lookback window the fraction of bad samples is
divided by the rule's error budget (``1 - objective``), and an alert
fires when both the short and the long window burn faster than
``burn_threshold`` — the multiwindow form that ignores single-sample
blips but pages within one window of a real outage.

The engine is runtime-agnostic (metric names are plain strings), and
hooks into any health monitor exposing ``add_context_provider``: on
every state transition the provider snapshots the gauges, evaluates
all rules *at that instant*, and returns the active alerts — so a
DEGRADED transition in a chaos campaign carries the alert context
that explains it.  :mod:`repro.experiments.control` defines the Kona
rule set and wires all of this into the chaos campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..common.errors import ConfigError
from .registry import MetricsRegistry
from .tsdb import TimeSeriesStore

#: Comparison table: the *good* condition on the observed value.
_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<=": lambda v, b: v <= b,
    "<": lambda v, b: v < b,
    ">=": lambda v, b: v >= b,
    ">": lambda v, b: v > b,
}


@dataclass(frozen=True)
class SLORule:
    """One declarative objective over a metric.

    ``kind``:

    * ``level`` — every tsdb sample of ``metric`` is good when
      ``value op bound`` holds;
    * ``rate`` — adjacent tsdb samples form per-interval rates
      (counter increase per simulated second); each rate is judged;
    * ``quantile`` — the registry histogram ``metric``'s
      ``quantile`` estimate is judged at evaluation time (no burn
      window; an SLO on a distribution tail, e.g. p99 access stall).

    ``objective`` is the target good fraction (0.999 = three nines);
    its complement is the error budget the burn rate is measured
    against.  ``window_ns`` is the short lookback; the long window is
    ``long_window_factor`` times that.
    """

    name: str
    metric: str
    kind: str = "level"
    op: str = "<="
    bound: float = 0.0
    objective: float = 0.999
    window_ns: float = 200_000.0
    long_window_factor: float = 4.0
    burn_threshold: float = 10.0
    quantile: float = 0.99
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("level", "rate", "quantile"):
            raise ConfigError(f"unknown SLO kind {self.kind!r}")
        if self.op not in _OPS:
            raise ConfigError(f"unknown SLO comparison {self.op!r}")
        if not 0.0 < self.objective < 1.0:
            raise ConfigError(
                f"objective must be in (0, 1), got {self.objective}")
        if self.window_ns <= 0 or self.long_window_factor < 1.0:
            raise ConfigError("SLO windows must be positive")

    @property
    def error_budget(self) -> float:
        """Allowed bad fraction: ``1 - objective``."""
        return 1.0 - self.objective

    def good(self, value: float) -> bool:
        """Whether one observed value satisfies the objective."""
        return _OPS[self.op](value, self.bound)


@dataclass(frozen=True)
class Alert:
    """One firing of a rule."""

    rule: str
    at_ns: float
    burn_rate: float
    value: float
    window_ns: float
    message: str

    def brief(self) -> str:
        """Compact one-line form (embedded in health-transition args)."""
        if self.burn_rate == float("inf"):
            return f"{self.rule}: threshold breached (value {self.value:g})"
        return (f"{self.rule}: burn {self.burn_rate:.0f}x budget "
                f"(value {self.value:g})")


class SLOEngine:
    """Evaluates a rule set over a time-series store (plus registry).

    ``registry`` is only needed for ``quantile`` rules; ``sampler``,
    when given, lets the health-transition hook force a fresh gauge
    snapshot so the triggering sample is part of the judged window.
    """

    def __init__(self, tsdb: TimeSeriesStore, rules: List[SLORule],
                 registry: Optional[MetricsRegistry] = None,
                 sampler: Any = None) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate SLO rule names in {names}")
        self.tsdb = tsdb
        self.rules = list(rules)
        self.registry = registry
        self.sampler = sampler
        self.alerts: List[Alert] = []
        self._seen: set = set()
        self._fault_source: Any = None

    # -- sample judging -----------------------------------------------------------

    def _judged_values(self, rule: SLORule, start_ns: float,
                       end_ns: float) -> List[Tuple[float, float]]:
        """(ts, judged value) pairs for one rule over one window."""
        points = self.tsdb.series(rule.metric, start_ns, end_ns)
        if rule.kind == "level":
            return list(points)
        # rate: adjacent-pair counter increase per simulated second.
        out: List[Tuple[float, float]] = []
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if t1 > t0:
                out.append((t1, (v1 - v0) / (t1 - t0) * 1e9))
        return out

    def _burn(self, rule: SLORule, start_ns: float,
              end_ns: float) -> Tuple[float, int, float]:
        """(burn rate, judged samples, last bad value) over a window."""
        judged = self._judged_values(rule, start_ns, end_ns)
        if not judged:
            return 0.0, 0, 0.0
        bad = [v for _, v in judged if not rule.good(v)]
        burn = (len(bad) / len(judged)) / rule.error_budget
        return burn, len(judged), bad[-1] if bad else 0.0

    # -- evaluation ---------------------------------------------------------------

    def evaluate_at(self, now_ns: float) -> List[Alert]:
        """Evaluate every rule at one instant; returns *firing* alerts.

        Fired alerts also accumulate on :attr:`alerts` (deduplicated
        per rule and timestamp, so a sweep plus a transition hook do
        not double-count).
        """
        firing: List[Alert] = []
        for rule in self.rules:
            alert = self._evaluate_rule(rule, now_ns)
            if alert is None:
                continue
            firing.append(alert)
            key = (alert.rule, alert.at_ns)
            if key not in self._seen:
                self._seen.add(key)
                self.alerts.append(alert)
        return firing

    def _evaluate_rule(self, rule: SLORule,
                       now_ns: float) -> Optional[Alert]:
        if rule.kind == "quantile":
            return self._evaluate_quantile(rule, now_ns)
        short_burn, n_short, bad_value = self._burn(
            rule, now_ns - rule.window_ns, now_ns)
        if n_short == 0 or short_burn < rule.burn_threshold:
            return None
        long_burn, n_long, _ = self._burn(
            rule, now_ns - rule.window_ns * rule.long_window_factor, now_ns)
        if n_long and long_burn < rule.burn_threshold:
            return None
        return Alert(
            rule=rule.name, at_ns=now_ns, burn_rate=short_burn,
            value=bad_value, window_ns=rule.window_ns,
            message=(f"{rule.name}: {rule.kind}({rule.metric}) burned "
                     f"{short_burn:.0f}x the error budget over the last "
                     f"{rule.window_ns / 1e3:.0f} us "
                     f"(long window {long_burn:.0f}x)"))

    def _evaluate_quantile(self, rule: SLORule,
                           now_ns: float) -> Optional[Alert]:
        if self.registry is None:
            return None
        family = self.registry.get(rule.metric)
        if family is None or family.kind != "histogram" or not family.count:
            return None
        value = family.quantile(rule.quantile)
        if rule.good(value):
            return None
        return Alert(
            rule=rule.name, at_ns=now_ns, burn_rate=float("inf"),
            value=value, window_ns=0.0,
            message=(f"{rule.name}: p{rule.quantile * 100:g}"
                     f"({rule.metric}) = {value:g} violates "
                     f"{rule.op} {rule.bound:g}"))

    def sweep(self) -> List[Alert]:
        """Evaluate every rule at every sampled timestamp.

        The post-hoc pass: replays the whole campaign's series through
        the alerting logic, so the alert timeline is complete even if
        nothing called :meth:`evaluate_at` online.  Returns (and
        accumulates) all alerts in time order.
        """
        stamps = sorted({ts for rule in self.rules
                         for ts, _ in self.tsdb.series(rule.metric)})
        out: List[Alert] = []
        for ts in stamps:
            out.extend(self.evaluate_at(ts))
        return out

    # -- compliance reporting -----------------------------------------------------

    def verdicts(self) -> List[Tuple[str, float, bool]]:
        """(rule, measured good fraction, objective met) per rule.

        Judged over the *entire* recorded series (quantile rules judge
        the final histogram state: met = 1.0, violated = 0.0).
        """
        out: List[Tuple[str, float, bool]] = []
        for rule in self.rules:
            if rule.kind == "quantile":
                alert = self._evaluate_quantile(rule, 0.0)
                good_fraction = 0.0 if alert is not None else 1.0
            else:
                judged = self._judged_values(rule, 0.0, float("inf"))
                if not judged:
                    out.append((rule.name, 1.0, True))
                    continue
                good = sum(1 for _, v in judged if rule.good(v))
                good_fraction = good / len(judged)
            out.append((rule.name, good_fraction,
                        good_fraction >= rule.objective))
        return out

    def report(self) -> List[Dict[str, Any]]:
        """JSON-shaped verdicts for artifacts and dashboards.

        One dict per rule: name, kind, metric, objective, measured
        good fraction, met flag, and the count of alerts the rule
        fired — everything a fleet artifact needs to render SLO
        status without the engine.
        """
        fired: Dict[str, int] = {}
        for alert in self.alerts:
            fired[alert.rule] = fired.get(alert.rule, 0) + 1
        by_name = {rule.name: rule for rule in self.rules}
        return [{"rule": name, "kind": by_name[name].kind,
                 "metric": by_name[name].metric,
                 "objective": by_name[name].objective,
                 "good_fraction": good_fraction, "met": met,
                 "alerts": fired.get(name, 0)}
                for name, good_fraction, met in self.verdicts()]

    # -- health-machine integration -----------------------------------------------

    def attach(self, health: Any) -> None:
        """Register as a context provider on a health monitor.

        ``health`` is duck-typed: anything with
        ``add_context_provider(fn)`` (see
        :class:`repro.kona.health.HealthMonitor`).  On every state
        transition the hook snapshots the gauges (when a sampler is
        bound), evaluates all rules at the transition instant, and
        returns the active alerts as transition context.
        """
        health.add_context_provider(self._health_context)

    def attach_fault_log(self, source: Any) -> None:
        """Bind a causal fault source for transition attribution.

        ``source`` is a :class:`~repro.obs.causal.CausalCapture` (its
        ``.log`` is read lazily, so the latest records are drained at
        the transition) or a finished :class:`~repro.obs.causal.
        FaultLog`.  Every health transition then carries the dominant
        stall hop, the MAD tail-anomaly windows and the slowest fault
        exemplars alongside the firing alerts.
        """
        self._fault_source = source

    def _health_context(self, state_name: str) -> Dict[str, Any]:
        if self.sampler is not None:
            self.sampler.sample()
        now = self.tsdb.span_ns[1]
        firing = self.evaluate_at(now)
        ctx = {"alerts": [a.brief() for a in firing],
               "burn": {a.rule: (None if a.burn_rate == float("inf")
                                 else round(a.burn_rate, 1))
                        for a in firing}}
        if self._fault_source is not None:
            from .causal import tail_anomalies
            log = getattr(self._fault_source, "log", self._fault_source)
            if log.n:
                anomalies = tail_anomalies(log)
                ctx["dominant_hop"] = log.dominant_hop()
                ctx["tail_windows"] = [
                    {"window": a["window"],
                     "dominant_hop": a["dominant_hop"],
                     "max_ns": round(a["max_ns"], 1)}
                    for a in anomalies[:3]]
                ctx["top_faults"] = [
                    {"seq": ex[1], "node": ex[4],
                     "total_ns": round(ex[0], 1)}
                    for ex in log.exemplars[:3]]
        return ctx
