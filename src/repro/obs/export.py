"""Flight-recorder exporters: Chrome trace JSON, Prometheus, JSONL.

Three formats, three audiences:

* **Chrome trace-event JSON** — open in ``about://tracing`` or
  https://ui.perfetto.dev to see the nested span timeline.  Timestamps
  convert from simulated ns to the format's microseconds.
* **Prometheus text format** — one dump of every registry metric,
  including histogram ``_bucket``/``_sum``/``_count`` series, for
  scrape-shaped pipelines and diffing runs.
* **JSONL** — one self-describing JSON object per line (trace events,
  sampler rows, final metric values) for ad-hoc ``jq`` analysis.

``validate_chrome_trace`` is the schema gate the CLI and CI use before
trusting a trace file; run it standalone with
``python -m repro.obs.export trace.json``.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterator, List, Optional

from .registry import HistogramMetric, MetricsRegistry

#: Chrome trace event phases we emit / accept.  ``s``/``t``/``f`` are
#: flow events (linked arrows across tracks) — causal fault chains use
#: them to connect a fault's hops across the component tracks.
_PHASES = {"X", "B", "E", "i", "I", "C", "M"}
_FLOW_PHASES = {"s", "t", "f"}

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


#: Virtual-timeline track ids: spans/instants vs sampled gauge series,
#: plus the causal fault-chain tracks (one per hop component).
_SPAN_TID = 1
_COUNTER_TID = 2
_FAULT_RUNTIME_TID = 3
_FAULT_FABRIC_TID = 4
_FAULT_MEMNODE_TID = 5

#: FNV-1a 32-bit parameters (pid hashing).
_FNV_OFFSET = 0x811c9dc5
_FNV_PRIME = 0x01000193


def component_pid(label: str) -> int:
    """Deterministic Chrome pid for a component identity label.

    FNV-1a over the UTF-8 label, folded to a positive 31-bit int (pid
    0 is reserved, so an exact-zero hash maps to 1).  A pure function
    of the label: the same component gets the same pid in every
    export, every run, every process — merged fleet traces never
    renumber tracks between runs.
    """
    h = _FNV_OFFSET
    for byte in label.encode("utf-8"):
        h = ((h ^ byte) * _FNV_PRIME) & 0xffffffff
    return (h & 0x7fffffff) or 1


def chrome_trace(events: List[Dict[str, Any]],
                 process_name: str = "kona-sim",
                 pid: Optional[int] = None) -> Dict[str, Any]:
    """Build a Chrome trace-event JSON object from tracer events.

    Tracer timestamps are simulated ns; the trace-event format wants
    microseconds, so ``ts``/``dur`` are scaled by 1/1000.  Metadata
    (``M``) events name the process and both virtual tracks so
    Perfetto labels them instead of showing bare pid/tid numbers;
    counter (``C``) events land on their own track, keeping the gauge
    graphs from interleaving with the span flame graph.

    The process id defaults to :func:`component_pid` of the process
    name, so every export of the same component lands on the same
    track; events that pre-assigned their own ``pid`` (fleet fault
    chains spanning components) keep it.
    """
    if pid is None:
        pid = component_pid(process_name)
    out: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": _SPAN_TID,
         "ts": 0, "args": {"name": process_name}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": _SPAN_TID,
         "ts": 0, "args": {"name": "sim timeline (spans)"}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": _COUNTER_TID,
         "ts": 0, "args": {"name": "gauge samples"}},
    ]
    for event in events:
        converted = dict(event)
        if "pid" not in event:
            converted["pid"] = pid
        # Events that already chose a track (causal fault chains) keep
        # it; tracer spans and counters land on the default tracks.
        if "tid" not in event:
            converted["tid"] = (_COUNTER_TID if event.get("ph") == "C"
                                else _SPAN_TID)
        converted["ts"] = event["ts"] / 1e3
        if "dur" in event:
            converted["dur"] = event["dur"] / 1e3
        out.append(converted)
    return {"traceEvents": out, "displayTimeUnit": "ns"}


def fault_chain_events(log, top: int = 16) -> List[Dict[str, Any]]:
    """Tracer-shaped events for a fault log's slowest causal chains.

    Each top-K exemplar becomes one chain: an ``X`` span per non-zero
    hop — directory on the runtime track, fabric read on the fabric
    track, FMem/replication service on the memnode track — linked by
    flow events (``s``/``t``/``f`` arrows with the fault's seq as flow
    id), so Perfetto draws each slow fault as an arrow chain across
    the component tracks.  Fault records carry no wall-clock instant
    (capture is off the simulated clock by design), so chains are laid
    out on a synthetic timeline at their access ordinal; timestamps
    are in tracer ns (``chrome_trace`` scales them like span events).
    """
    events: List[Dict[str, Any]] = []
    hop_tracks = (
        ("dir", 8, _FAULT_RUNTIME_TID),
        ("fab", 9, _FAULT_FABRIC_TID),
        ("mem", 10, _FAULT_MEMNODE_TID),
        ("repl", 11, _FAULT_MEMNODE_TID),
    )
    for ex in log.exemplars[:top]:
        total, seq, line, page, node, kind = ex[:6]
        t = float(seq) * 1e3   # spread chains out on the ordinal axis
        args = {"seq": seq, "line": line, "page": page, "node": node,
                "total_ns": round(total, 2)}
        first = True
        for hop, idx, tid in hop_tracks:
            dur = ex[idx]
            if dur <= 0.0:
                continue
            events.append({"name": f"fault#{seq} {hop}", "ph": "X",
                           "ts": t, "dur": dur, "cat": "fault",
                           "tid": tid, "args": dict(args, hop=hop)})
            events.append({"name": f"fault#{seq}",
                           "ph": "s" if first else "t",
                           "ts": t, "cat": "fault", "tid": tid,
                           "id": seq})
            first = False
            t += dur
        if not first:
            # Terminate the flow at the end of the last hop.
            last = events[-1]
            events.append({"name": f"fault#{seq}", "ph": "f",
                           "ts": t, "cat": "fault",
                           "tid": last["tid"], "id": seq, "bp": "e"})
    return events


def fault_chain_trace(log, top: int = 16,
                      process_name: str = "kona-faults") -> Dict[str, Any]:
    """A complete Chrome trace payload for the slowest fault chains."""
    pid = component_pid(process_name)
    payload = chrome_trace(fault_chain_events(log, top=top),
                           process_name=process_name, pid=pid)
    payload["traceEvents"].extend([
        {"name": "thread_name", "ph": "M", "pid": pid,
         "tid": _FAULT_RUNTIME_TID, "ts": 0,
         "args": {"name": "fault chains: runtime/directory"}},
        {"name": "thread_name", "ph": "M", "pid": pid,
         "tid": _FAULT_FABRIC_TID, "ts": 0,
         "args": {"name": "fault chains: fabric"}},
        {"name": "thread_name", "ph": "M", "pid": pid,
         "tid": _FAULT_MEMNODE_TID, "ts": 0,
         "args": {"name": "fault chains: memnode/replication"}},
    ])
    return payload


def write_chrome_trace(recorder, path: str) -> str:
    """Write a recorder's span timeline as Chrome trace JSON."""
    payload = chrome_trace(recorder.tracer.events)
    with open(path, "w") as fh:
        json.dump(payload, fh)
        fh.write("\n")
    return path


def validate_chrome_trace(payload: Any) -> List[str]:
    """Schema-check a Chrome trace object; returns error messages.

    An empty list means the trace is loadable by ``about://tracing``:
    a ``traceEvents`` array whose entries carry ``name``/``ph``/``ts``/
    ``pid``/``tid``, with a known phase, numeric non-negative
    timestamps, and durations on complete (``X``) events.
    """
    errors: List[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["top level must be an object with a 'traceEvents' array"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                errors.append(f"{where}: missing {field!r}")
        ph = event.get("ph")
        if ph is not None and ph not in _PHASES and ph not in _FLOW_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
        if ph in _FLOW_PHASES and "id" not in event:
            errors.append(f"{where}: flow event needs an id")
        ts = event.get("ts")
        if ts is not None and (not isinstance(ts, (int, float))
                               or ts < 0):
            errors.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event needs dur >= 0")
        if ph == "C" and not isinstance(event.get("args"), dict):
            errors.append(f"{where}: counter event needs args")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: args must be an object")
    if len(errors) >= 50:
        errors = errors[:50] + ["... (truncated)"]
    return errors


# -- Prometheus text format ---------------------------------------------------------


def _prom_name(name: str) -> str:
    return _METRIC_NAME_RE.sub("_", name)


def _prom_labels(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _prom_number(value: float) -> str:
    if value != value:                      # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every registry metric in Prometheus text format.

    Counters get the conventional ``_total`` suffix; string-valued
    gauges become ``<name>_info{value="..."} 1`` info metrics;
    histograms expand into cumulative ``_bucket`` series plus ``_sum``
    and ``_count``.
    """
    lines: List[str] = []
    for family in registry.families():
        name = _prom_name(family.name)
        if family.kind == "counter":
            name += "_total"
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        for labels, child in family.children():
            if isinstance(child, HistogramMetric):
                cumulative = 0
                for bound, cumulative in child.buckets():
                    bucket_labels = (*labels, ("le", _prom_number(bound)))
                    lines.append(f"{name}_bucket{_prom_labels(bucket_labels)} "
                                 f"{cumulative}")
                inf_labels = (*labels, ("le", "+Inf"))
                lines.append(f"{name}_bucket{_prom_labels(inf_labels)} "
                             f"{child.count}")
                lines.append(f"{name}_sum{_prom_labels(labels)} "
                             f"{_prom_number(child.sum)}")
                lines.append(f"{name}_count{_prom_labels(labels)} "
                             f"{child.count}")
                continue
            value = child.value
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)):
                lines.append(f"{name}{_prom_labels(labels)} "
                             f"{_prom_number(value)}")
            else:
                info_labels = (*labels, ("value", str(value)))
                lines.append(f"{name}_info{_prom_labels(info_labels)} 1")
    return "\n".join(lines) + "\n"


def write_prometheus(recorder, path: str) -> str:
    """Write the recorder's registry as a Prometheus text dump."""
    with open(path, "w") as fh:
        fh.write(prometheus_text(recorder.registry))
    return path


# -- JSONL -----------------------------------------------------------------------


#: Stream-writer flush cadence: lines between explicit flushes.
_JSONL_FLUSH_EVERY = 4096


def iter_jsonl(recorder) -> Iterator[str]:
    """The recorder's full story, one JSON object line at a time.

    Event lines carry ``{"type": "event", ...}``; sampler rows come as
    ``{"type": "sample", "ts": ..., "gauges": {...}}``; the final
    metric values close the log as ``{"type": "metric", ...}`` lines.
    A generator, so writers can stream records to disk without ever
    materializing the full log in memory.
    """
    for event in recorder.tracer.events:
        yield json.dumps({"type": "event", **event},
                         sort_keys=True, default=str)
    if recorder.sampler is not None:
        for ts, row in recorder.sampler.samples:
            yield json.dumps(
                {"type": "sample", "ts": ts, "gauges": row},
                sort_keys=True)
    for name, labels, value in recorder.registry.samples():
        yield json.dumps(
            {"type": "metric", "name": name, "labels": dict(labels),
             "value": value}, sort_keys=True, default=str)


def jsonl_lines(recorder) -> List[str]:
    """All JSONL lines as a list (see :func:`iter_jsonl`)."""
    return list(iter_jsonl(recorder))


def write_jsonl(recorder, path: str,
                flush_every: int = _JSONL_FLUSH_EVERY) -> str:
    """Stream the recorder's JSONL event log to disk.

    Lines are generated one at a time and flushed to the OS every
    ``flush_every`` lines, bounding writer memory to one line plus the
    stdio buffer no matter how many events the recorder holds.
    """
    with open(path, "w") as fh:
        for i, line in enumerate(iter_jsonl(recorder), 1):
            fh.write(line)
            fh.write("\n")
            if i % flush_every == 0:
                fh.flush()
    return path


def main(argv=None) -> int:
    """Validate Chrome trace files: ``python -m repro.obs.export f.json``."""
    import argparse
    parser = argparse.ArgumentParser(
        description="Validate Chrome trace-event JSON files.")
    parser.add_argument("paths", nargs="+", help="trace files to check")
    args = parser.parse_args(argv)
    status = 0
    for path in args.paths:
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}")
            status = 1
            continue
        errors = validate_chrome_trace(payload)
        if errors:
            status = 1
            print(f"{path}: INVALID")
            for err in errors:
                print(f"  {err}")
        else:
            events = len(payload["traceEvents"])
            print(f"{path}: ok ({events} events)")
    return status


if __name__ == "__main__":      # pragma: no cover
    raise SystemExit(main())
