"""The cluster dashboard: one fleet artifact, rendered for humans.

Two renderers over a :class:`~repro.obs.fleet.FleetRecorder`:

* :func:`dashboard_text` — the terminal summary ``repro dashboard``
  prints: overview, SLO status, per-tenant attribution, the health
  timeline, tail anomalies, per-component key metrics.
* :func:`dashboard_html` — a **self-contained** HTML report.  No
  external assets: styling is one inline stylesheet on CSS custom
  properties (with a ``prefers-color-scheme`` dark scope), sparklines
  are inline SVG polylines over the fleet's sampled series.  Status
  is never color-alone (every chip carries a text label), values wear
  text tokens — the series color only ever paints marks.

Both read only the fleet's derived views, so anything that can load a
fleet artifact (the CLI, CI, a notebook) can render the dashboard.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional, Tuple

from .causal import HOPS, tail_anomalies
from .fleet import FleetRecorder

#: Metric-name prefixes surfaced in the per-component "key metrics"
#: table (everything else stays in the collapsed full table).
_KEY_PREFIXES = ("fetch.", "memory.", "faults.", "network.",
                 "memnode.", "fabric.", "health.state",
                 "replication.failovers")

#: Per-component sparkline picks: first match per pattern, ≤ 4 total.
_SPARK_PATTERNS = ("stall", "transfers", "bytes", "faults")

#: Maximum rows rendered per table (the artifact keeps everything).
_MAX_ROWS = 40


# -- formatting helpers -------------------------------------------------------------


def _fmt_num(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.3g}"
    return str(value)


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:,.2f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:,.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:,.2f} µs"
    return f"{ns:,.0f} ns"


def _key_metrics(metrics: Dict[str, Any]) -> List[Tuple[str, Any]]:
    out = [(name, metrics[name]) for name in sorted(metrics)
           if name.startswith(_KEY_PREFIXES)]
    if not out:
        out = sorted(metrics.items())[:8]
    return out[:_MAX_ROWS]


def _spark_series(points: Dict[str, List[Tuple[float, float]]]
                  ) -> List[str]:
    picked: List[str] = []
    for pattern in _SPARK_PATTERNS:
        for name in sorted(points):
            if name in picked or len(points[name]) < 2:
                continue
            if pattern in name:
                picked.append(name)
                break
    if not picked:
        picked = [name for name in sorted(points)
                  if len(points[name]) >= 2][:2]
    return picked[:4]


# -- terminal renderer --------------------------------------------------------------


def _rule(title: str) -> str:
    return f"--- {title} " + "-" * max(0, 60 - len(title))


def dashboard_text(fleet: FleetRecorder) -> str:
    """The terminal summary of one fleet artifact."""
    lines: List[str] = []
    log = fleet.fault_log()
    lines.append(f"fleet {fleet.name!r}: "
                 f"{len(fleet.members)} components "
                 f"({', '.join(fleet.components())})")
    if fleet.tenants():
        lines.append(f"tenants: {', '.join(fleet.tenants())}")
    if log is not None and log.n:
        lines.append(f"faults captured: {log.n:,}  "
                     f"total stall {_fmt_ns(log.total_stall_ns())}  "
                     f"p50 {_fmt_ns(log.quantile(0.5))}  "
                     f"p99 {_fmt_ns(log.quantile(0.99))}  "
                     f"dominant hop {log.dominant_hop()}")

    slo = fleet.slo_status()
    if slo:
        lines.append(_rule("SLO status"))
        for row in slo:
            status = "MET" if row["met"] else "VIOLATED"
            lines.append(
                f"  [{status:8s}] {row['component']}/{row['rule']}: "
                f"good {row['good_fraction']:.4f} "
                f"(objective {row['objective']:.4f}, "
                f"alerts {row['alerts']})")

    tenants = [row for row in fleet.tenant_attribution()
               if row["faults"] or row["tenant"] != "-"]
    if tenants:
        lines.append(_rule("per-tenant attribution"))
        for row in tenants:
            lines.append(
                f"  {row['tenant']:12s} components {row['components']:3d}  "
                f"faults {row['faults']:10,}  "
                f"stall {_fmt_ns(row['stall_ns']):>12s}  "
                f"share {row['stall_share'] * 100:5.1f}%")

    timeline = fleet.health_timeline()
    if timeline:
        lines.append(_rule("health transitions"))
        for ts, component, state, ctx in timeline[-_MAX_ROWS:]:
            note = ""
            if isinstance(ctx, dict) and ctx.get("reason"):
                note = f"  ({ctx['reason']})"
            lines.append(f"  {_fmt_ns(ts):>12s}  {component:18s} "
                         f"-> {state}{note}")

    if log is not None and log.n:
        anomalies = tail_anomalies(log)
        if anomalies:
            lines.append(_rule("tail anomalies"))
            for a in anomalies[:10]:
                lines.append(
                    f"  window {a['window']:5d} "
                    f"(seq {a['start_seq']}..{a['end_seq']}): "
                    f"max {_fmt_ns(a['max_ns'])}, score {a['score']:.1f}, "
                    f"dominant {a['dominant_hop']}, "
                    f"degraded {a['degraded_faults']}")
        hop_totals = log.hop_totals()
        lines.append(_rule("stall by hop"))
        for hop in HOPS:
            lines.append(f"  {hop:5s} {_fmt_ns(hop_totals[hop]):>12s}")

    for m in fleet.members:
        lines.append(_rule(f"component {m.component}"
                           + (f" (tenant {m.tenant})" if m.tenant else "")))
        for name, value in _key_metrics(m.metrics)[:12]:
            lines.append(f"  {name:40s} {_fmt_num(value):>16s}")
    return "\n".join(lines) + "\n"


# -- HTML renderer ------------------------------------------------------------------

_CSS = """
:root {
  --surface: #fcfcfb; --card: #ffffff; --border: #e4e3df;
  --text: #0b0b0b; --text-2: #52514e;
  --series-1: #2a78d6;
  --good: #008300; --warn: #eda100; --crit: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --card: #232322; --border: #3a3936;
    --text: #ffffff; --text-2: #c3c2b7;
    --series-1: #3987e5;
    --good: #4cba57; --warn: #eda100; --crit: #e8706b;
  }
}
* { box-sizing: border-box; }
body { margin: 0; padding: 24px; background: var(--surface);
       color: var(--text);
       font: 14px/1.5 system-ui, -apple-system, sans-serif; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--text-2); margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { background: var(--card); border: 1px solid var(--border);
        border-radius: 8px; padding: 10px 16px; min-width: 130px; }
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { color: var(--text-2); font-size: 12px; }
table { border-collapse: collapse; width: 100%;
        background: var(--card); border: 1px solid var(--border);
        border-radius: 8px; }
th, td { padding: 5px 10px; text-align: left;
         border-bottom: 1px solid var(--border); }
th { color: var(--text-2); font-weight: 500; font-size: 12px; }
td.num, th.num { text-align: right;
                 font-variant-numeric: tabular-nums; }
tr:last-child td { border-bottom: none; }
.chip { display: inline-flex; align-items: center; gap: 6px; }
.chip::before { content: ""; width: 8px; height: 8px;
                border-radius: 50%; background: currentColor; }
.chip.good { color: var(--good); }
.chip.warn { color: var(--warn); }
.chip.crit { color: var(--crit); }
.chip span { color: var(--text); }
.sparks { display: flex; flex-wrap: wrap; gap: 16px; margin: 8px 0; }
.spark { background: var(--card); border: 1px solid var(--border);
         border-radius: 8px; padding: 8px 12px; }
.spark .name { color: var(--text-2); font-size: 12px; }
.spark .last { font-weight: 600; }
svg.line polyline { stroke: var(--series-1); stroke-width: 2;
                    fill: none; stroke-linejoin: round;
                    stroke-linecap: round; }
details { margin: 8px 0 20px; }
summary { cursor: pointer; color: var(--text-2); }
.component { margin-bottom: 28px; }
footer { margin-top: 32px; color: var(--text-2); font-size: 12px; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _sparkline(points: List[Tuple[float, float]], width: int = 220,
               height: int = 48) -> str:
    """One series as an inline SVG polyline (normalized to the box)."""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    pad = 3
    coords = " ".join(
        f"{pad + (x - x0) / xr * (width - 2 * pad):.1f},"
        f"{height - pad - (y - y0) / yr * (height - 2 * pad):.1f}"
        for x, y in points)
    return (f'<svg class="line" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" role="img">'
            f'<polyline points="{coords}"/></svg>')


def _table(headers: List[Tuple[str, bool]],
           rows: List[List[str]]) -> str:
    """A table; headers are (label, numeric) — numeric right-aligns."""
    head = "".join(f'<th class="num">{_esc(h)}</th>' if num
                   else f"<th>{_esc(h)}</th>" for h, num in headers)
    body: List[str] = []
    for row in rows:
        cells = []
        for (header, num), cell in zip(headers, row):
            cls = ' class="num"' if num else ""
            cells.append(f"<td{cls}>{cell}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def _chip(kind: str, label: str) -> str:
    return f'<span class="chip {kind}"><span>{_esc(label)}</span></span>'


def dashboard_html(fleet: FleetRecorder,
                   title: Optional[str] = None) -> str:
    """Render one fleet artifact as a self-contained HTML report."""
    log = fleet.fault_log()
    title = title or f"Fleet dashboard — {fleet.name}"
    parts: List[str] = [
        "<!doctype html>", '<html lang="en">', "<head>",
        '<meta charset="utf-8">',
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>", "</head>",
        '<body data-palette="#2a78d6">',
        f"<h1>{_esc(title)}</h1>",
        f'<p class="sub">{len(fleet.members)} components'
        + (f" · tenants: {_esc(', '.join(fleet.tenants()))}"
           if fleet.tenants() else "")
        + "</p>",
    ]

    # Overview stat tiles.
    slo = fleet.slo_status()
    met = sum(1 for row in slo if row["met"])
    tiles = [("components", f"{len(fleet.members)}")]
    if log is not None and log.n:
        tiles += [("faults captured", f"{log.n:,}"),
                  ("total stall", _fmt_ns(log.total_stall_ns())),
                  ("p99 stall", _fmt_ns(log.quantile(0.99))),
                  ("dominant hop", str(log.dominant_hop()))]
    if slo:
        tiles.append(("SLOs met", f"{met}/{len(slo)}"))
    transitions = fleet.health_timeline()
    if transitions:
        tiles.append(("health transitions", f"{len(transitions)}"))
    parts.append('<div class="tiles">' + "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="k">{_esc(k)}</div></div>'
        for k, v in tiles) + "</div>")

    # SLO status.
    if slo:
        parts.append("<h2>SLO status</h2>")
        rows = []
        for row in slo:
            chip = (_chip("good", "MET") if row["met"]
                    else _chip("crit", "VIOLATED"))
            rows.append([_esc(row["component"]), _esc(row["rule"]),
                         chip, f"{row['good_fraction']:.4f}",
                         f"{row['objective']:.4f}",
                         f"{row['alerts']}"])
        parts.append(_table(
            [("component", False), ("rule", False), ("status", False),
             ("good fraction", True), ("objective", True),
             ("alerts", True)], rows))

    # Per-tenant attribution.
    tenants = fleet.tenant_attribution()
    if any(row["faults"] for row in tenants) or len(tenants) > 1:
        parts.append("<h2>Per-tenant attribution</h2>")
        rows = [[_esc(row["tenant"]), f"{row['components']}",
                 f"{row['faults']:,}", f"{row['remote_fetches']:,}",
                 _esc(_fmt_ns(row["stall_ns"])),
                 f"{row['stall_share'] * 100:.1f}%"]
                for row in tenants]
        parts.append(_table(
            [("tenant", False), ("components", True), ("faults", True),
             ("remote fetches", True), ("stall", True),
             ("share", True)], rows))

    # Health-transition timeline.
    if transitions:
        parts.append("<h2>Health timeline</h2>")
        rows = []
        for ts, component, state, ctx in transitions[-_MAX_ROWS:]:
            chip_kind = {"HEALTHY": "good", "DEGRADED": "crit",
                         "RECOVERING": "warn"}.get(state, "warn")
            note = ""
            if isinstance(ctx, dict) and ctx.get("reason"):
                note = _esc(ctx["reason"])
            rows.append([_esc(_fmt_ns(ts)), _esc(component),
                         _chip(chip_kind, state), note])
        parts.append(_table(
            [("time", True), ("component", False), ("state", False),
             ("reason", False)], rows))

    # Tail anomalies.
    if log is not None and log.n:
        anomalies = tail_anomalies(log)
        if anomalies:
            parts.append("<h2>Tail anomalies</h2>")
            rows = [[f"{a['window']}",
                     f"{a['start_seq']:,}..{a['end_seq']:,}",
                     _esc(_fmt_ns(a["max_ns"])), f"{a['score']:.1f}",
                     _esc(a["dominant_hop"]), f"{a['count']:,}",
                     f"{a['degraded_faults']:,}"]
                    for a in anomalies[:_MAX_ROWS]]
            parts.append(_table(
                [("window", True), ("seq range", False),
                 ("max stall", True), ("MAD score", True),
                 ("dominant hop", False), ("faults", True),
                 ("degraded", True)], rows))

    # Per-component sections.
    for m in fleet.members:
        head = _esc(m.component)
        if m.tenant:
            head += f' <span class="sub">(tenant {_esc(m.tenant)})</span>'
        parts.append(f'<div class="component"><h2>{head}</h2>')
        spark_names = _spark_series(m.points)
        if spark_names:
            sparks = []
            for name in spark_names:
                pts = m.points[name]
                last = pts[-1][1]
                sparks.append(
                    f'<div class="spark"><div class="name">{_esc(name)}'
                    f'</div>{_sparkline(pts)}'
                    f'<div class="last">{_esc(_fmt_num(last))}</div>'
                    f"</div>")
            parts.append('<div class="sparks">' + "".join(sparks)
                         + "</div>")
        key_rows = [[_esc(name), _esc(_fmt_num(value))]
                    for name, value in _key_metrics(m.metrics)]
        if key_rows:
            parts.append(_table([("metric", False), ("value", True)],
                                key_rows))
        rest = [[_esc(name), _esc(_fmt_num(m.metrics[name]))]
                for name in sorted(m.metrics)]
        if rest:
            parts.append(
                f"<details><summary>all {len(rest)} metrics</summary>"
                + _table([("metric", False), ("value", True)], rest)
                + "</details>")
        parts.append("</div>")

    parts.append("<footer>generated by repro dashboard — "
                 "self-contained report, no external assets</footer>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_dashboard(fleet: FleetRecorder, path: str,
                    title: Optional[str] = None) -> str:
    """Write the HTML dashboard; returns the path."""
    with open(path, "w") as fh:
        fh.write(dashboard_html(fleet, title=title))
    return path


def main(argv=None) -> int:
    """Render a fleet artifact: ``python -m repro.obs.dashboard f.json``."""
    import argparse
    parser = argparse.ArgumentParser(
        description="Render a fleet artifact as a dashboard.")
    parser.add_argument("artifact", help="fleet artifact JSON path")
    parser.add_argument("--html", help="write the HTML report here")
    args = parser.parse_args(argv)
    try:
        fleet = FleetRecorder.load(args.artifact)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.artifact}: unreadable: {exc}")
        return 1
    print(dashboard_text(fleet), end="")
    if args.html:
        write_dashboard(fleet, args.html)
        print(f"wrote {args.html}")
    return 0


if __name__ == "__main__":      # pragma: no cover
    raise SystemExit(main())
