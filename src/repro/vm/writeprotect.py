"""Write-protection-based dirty tracking (the virtual-memory way).

This is what every page-based remote-memory system does today and what
KTracker's write-protect mode emulates (paper section 5): at the start
of each tracking window, write-protect every tracked page; the first
write to a page faults, the handler clears the protection and marks the
page dirty.  The tracked granularity is therefore the page size, and
the cost is one minor fault per dirtied page per window plus the
protect round itself.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from ..common import units
from ..common.errors import ConfigError
from ..common.stats import Counter
from .faults import PageFaultModel


class WriteProtectTracker:
    """Dirty tracking through write-protection faults."""

    def __init__(self, fault_model: PageFaultModel,
                 page_size: int = units.PAGE_4K) -> None:
        if page_size <= 0 or page_size % units.PAGE_4K:
            raise ConfigError(f"page_size {page_size} must be a 4 KiB multiple")
        self.fault_model = fault_model
        self.page_size = page_size
        self._protected: Set[int] = set()
        self._dirty: Set[int] = set()
        self._tracked: Set[int] = set()
        self.counters = Counter()
        self.software_time_ns = 0.0   # time stolen from the application

    # -- window control -----------------------------------------------------------

    def track(self, vpns: Set[int]) -> None:
        """Add pages to the tracked set (newly mapped remote pages)."""
        self._tracked |= vpns

    def begin_window(self) -> float:
        """Write-protect all tracked pages; returns the stop-the-world cost."""
        self._protected = set(self._tracked)
        self._dirty.clear()
        cost = self.fault_model.protect_pages_ns(len(self._protected))
        self.software_time_ns += cost
        self.counters.add("windows")
        return cost

    # -- the access path ------------------------------------------------------------

    def on_write(self, vpn: int) -> float:
        """Record a write to ``vpn``; returns the fault cost (0 on no fault)."""
        if vpn in self._protected:
            self._protected.discard(vpn)
            self._dirty.add(vpn)
            self._tracked.add(vpn)
            cost = self.fault_model.write_protect_fault_ns()
            self.software_time_ns += cost
            self.counters.add("first_writes")
            return cost
        self._dirty.add(vpn)
        self._tracked.add(vpn)
        return 0.0

    def process_window(self, write_addrs: np.ndarray) -> float:
        """Vectorized window processing: returns total fault cost.

        ``write_addrs`` are the byte addresses written this window; one
        fault is charged per distinct newly-dirtied protected page.
        """
        if write_addrs.size == 0:
            return 0.0
        vpns = np.unique(write_addrs // np.uint64(self.page_size))
        faults = 0
        for vpn in vpns.tolist():
            if vpn in self._protected:
                self._protected.discard(vpn)
                faults += 1
            self._dirty.add(vpn)
            self._tracked.add(vpn)
        cost = sum(self.fault_model.write_protect_fault_ns()
                   for _ in range(faults))
        self.software_time_ns += cost
        self.counters.add("first_writes", faults)
        return cost

    # -- results ----------------------------------------------------------------------

    def dirty_pages(self) -> Set[int]:
        """Pages dirtied since the window began."""
        return set(self._dirty)

    def dirty_bytes(self) -> int:
        """Data that must be written back at page granularity."""
        return len(self._dirty) * self.page_size

    def end_window(self) -> Dict[str, float]:
        """Summarize the window (dirty pages/bytes and software cost)."""
        return {
            "dirty_pages": float(len(self._dirty)),
            "dirty_bytes": float(self.dirty_bytes()),
            "software_time_ns": self.software_time_ns,
        }
