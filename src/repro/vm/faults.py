"""Page-fault cost accounting for page-based remote-memory systems.

The paper's central complaint: every remote-memory function in current
systems rides on page faults, and the fault cost — trap, VMA lookup,
page-cache management, PTE/TLB updates, pipeline flush — dwarfs the
network transfer it wraps.  This module prices those paths.

Two fault-handling flavors are modeled:

* ``KERNEL_SWAP`` — the Infiniswap path: a fault enters the kernel swap
  code and the bio/block layer (most of the measured 40 us);
* ``USERFAULTFD`` — the Kona-VM path: faults delivered to a cooperative
  user thread (paper section 5.1), cheaper but still serializing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from ..common.errors import ConfigError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.stats import Counter


class FaultPath(Enum):
    """Which fault-delivery mechanism a system uses."""

    KERNEL_SWAP = auto()
    USERFAULTFD = auto()


@dataclass(frozen=True)
class FaultCosts:
    """Derived costs (ns) of the fault-driven remote-memory operations."""

    major_fault_ns: float       # fetch fault, excluding the network transfer
    minor_fault_ns: float       # write-protect fault (dirty tracking)
    evict_pte_ns: float         # per-page PTE churn on eviction
    shootdown_ns: float         # TLB shootdown per eviction batch


class PageFaultModel:
    """Prices fault-driven operations for one system configuration."""

    def __init__(self, path: FaultPath,
                 latency: LatencyModel = DEFAULT_LATENCY,
                 num_cores: int = 8) -> None:
        if num_cores <= 0:
            raise ConfigError(f"num_cores must be positive, got {num_cores}")
        self.path = path
        self.latency = latency
        self.num_cores = num_cores
        self.counters = Counter()
        self._costs = self._derive()

    def _derive(self) -> FaultCosts:
        lat = self.latency
        if self.path is FaultPath.KERNEL_SWAP:
            # Fault entry + swap-entry lookup + bio submission + page-cache
            # and LRU management.  The paper: "the sum of small operations".
            major = (lat.minor_fault_ns          # trap + VMA walk
                     + 6_500.0                   # swap cache + bio + block layer
                     + lat.pte_update_ns
                     + lat.context_switch_ns)
        else:
            # userfaultfd: trap, wake the handler thread, UFFDIO_COPY back.
            major = lat.userfault_ns + lat.pte_update_ns
        minor = lat.minor_fault_ns + lat.pte_update_ns
        shootdown = lat.tlb_shootdown_ns + 350.0 * (self.num_cores - 1)
        evict_pte = 3 * lat.pte_update_ns   # lock check, rmap walk, unmap
        return FaultCosts(major_fault_ns=major, minor_fault_ns=minor,
                          evict_pte_ns=evict_pte, shootdown_ns=shootdown)

    @property
    def costs(self) -> FaultCosts:
        """The derived cost table."""
        return self._costs

    # -- operations --------------------------------------------------------------

    def fetch_fault_ns(self) -> float:
        """Software cost of one fetch page fault (network priced separately)."""
        self.counters.add("major_faults")
        return self._costs.major_fault_ns

    def write_protect_fault_ns(self) -> float:
        """Cost of one write-protection (dirty-tracking) fault."""
        self.counters.add("wp_faults")
        return self._costs.minor_fault_ns

    def protect_pages_ns(self, num_pages: int) -> float:
        """Cost of write-protecting ``num_pages`` (one tracking round).

        Requires touching each PTE and one batched shootdown; the
        application is stopped for this long (paper section 2.1).
        """
        if num_pages < 0:
            raise ConfigError("num_pages must be non-negative")
        if num_pages == 0:
            return 0.0
        self.counters.add("protect_rounds")
        self.counters.add("pages_protected", num_pages)
        return (num_pages * self.latency.pte_update_ns
                + self._costs.shootdown_ns)

    def evict_pages_ns(self, num_pages: int) -> float:
        """Software cost of unmapping ``num_pages`` for eviction."""
        if num_pages < 0:
            raise ConfigError("num_pages must be non-negative")
        if num_pages == 0:
            return 0.0
        self.counters.add("evictions")
        self.counters.add("pages_evicted", num_pages)
        return (num_pages * self._costs.evict_pte_ns
                + self._costs.shootdown_ns)
