"""Intel Page Modification Logging (PML) as a tracking baseline.

Related work (paper section 8): PML logs dirtied page numbers into a
hardware buffer and interrupts the hypervisor when the buffer fills
(512 entries per VM exit).  It removes the write-protection faults but
**keeps page granularity**, so the dirty-data amplification Kona
attacks is untouched — which is exactly the comparison worth making:

===================  ==================  =====================
tracking mechanism   app-visible cost    tracking granularity
===================  ==================  =====================
write-protection     fault per page      4 KB
PML                  VM exit per 512     4 KB
Kona (coherence)     none                64 B
===================  ==================  =====================
"""

from __future__ import annotations

from typing import Set

import numpy as np

from ..common import units
from ..common.errors import ConfigError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.stats import Counter

#: Hardware PML buffer entries (Intel: 512 GPAs per buffer).
PML_BUFFER_ENTRIES = 512
#: VM-exit + buffer-drain cost when the PML buffer fills.
PML_FLUSH_NS = 9_000.0


class PMLTracker:
    """Dirty-page tracking via a hardware modification log."""

    def __init__(self, latency: LatencyModel = DEFAULT_LATENCY,
                 page_size: int = units.PAGE_4K,
                 buffer_entries: int = PML_BUFFER_ENTRIES) -> None:
        if buffer_entries <= 0:
            raise ConfigError("PML buffer must hold at least one entry")
        if page_size % units.PAGE_4K:
            raise ConfigError("page size must be a 4 KiB multiple")
        self.latency = latency
        self.page_size = page_size
        self.buffer_entries = buffer_entries
        self._buffer: list = []
        self._dirty: Set[int] = set()
        self._logged_this_window: Set[int] = set()
        self.counters = Counter()
        self.software_time_ns = 0.0

    def begin_window(self) -> float:
        """Start a tracking window (clears dirty bits; no protect round).

        Unlike write-protection, re-arming PML is cheap: clear the EPT
        dirty bits (a fraction of a protect round) — modeled as one
        buffer-flush-equivalent.
        """
        self._dirty.clear()
        self._logged_this_window.clear()
        self.counters.add("windows")
        self.software_time_ns += PML_FLUSH_NS
        return PML_FLUSH_NS

    def on_write(self, vpn: int) -> float:
        """Record a write; returns app-visible cost (usually zero).

        The hardware appends the page number on the first write; the
        app only stalls when the buffer fills and the VM exits.
        """
        if vpn in self._logged_this_window:
            self._dirty.add(vpn)
            return 0.0
        self._logged_this_window.add(vpn)
        self._dirty.add(vpn)
        self._buffer.append(vpn)
        self.counters.add("entries_logged")
        if len(self._buffer) >= self.buffer_entries:
            return self._flush()
        return 0.0

    def _flush(self) -> float:
        self._buffer.clear()
        self.counters.add("vm_exits")
        self.software_time_ns += PML_FLUSH_NS
        return PML_FLUSH_NS

    def process_window(self, write_addrs: np.ndarray) -> float:
        """Vectorized window processing; returns total app-visible cost."""
        if write_addrs.size == 0:
            return 0.0
        vpns = np.unique(write_addrs // np.uint64(self.page_size))
        cost = 0.0
        for vpn in vpns.tolist():
            cost += self.on_write(vpn)
        return cost

    # -- results ------------------------------------------------------------------

    def dirty_pages(self) -> Set[int]:
        """Pages dirtied this window."""
        return set(self._dirty)

    def dirty_bytes(self) -> int:
        """Dirty data at PML's (page) granularity."""
        return len(self._dirty) * self.page_size

    def overhead_per_dirty_page_ns(self) -> float:
        """Amortized app-visible cost per dirtied page."""
        pages = self.counters["entries_logged"]
        if pages == 0:
            return 0.0
        return (self.counters["vm_exits"] * PML_FLUSH_NS) / pages
