"""Execution engine for page-based (virtual-memory) remote memory.

:class:`PagedRemoteMemory` executes a memory-access stream the way
Infiniswap / LegoOS / Kona-VM would: a fixed-capacity local page cache,
a page fault plus a network page transfer on every miss, write-protect
faults for dirty tracking, and page-granularity eviction with PTE churn
and TLB shootdowns.  Time is split into an :class:`~repro.common.clock.
Account` so the harness can separate application progress from the
"sum of small operations" overhead the paper measures.

Eviction data transfer can run asynchronously (Kona-VM overlaps it with
execution, section 6.1) but the *software* side of eviction — PTE
updates and shootdowns — always steals application time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

import numpy as np

from ..common import units
from ..common.clock import Account
from ..common.errors import ConfigError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.stats import Counter
from .faults import FaultPath, PageFaultModel


@dataclass
class PagedConfig:
    """Configuration of a page-based remote-memory system."""

    name: str
    fault_path: FaultPath
    local_capacity: int                  # bytes of local DRAM cache
    page_size: int = units.PAGE_4K
    track_dirty: bool = True             # write-protection dirty tracking
    async_evict_transfer: bool = True    # overlap eviction RDMA with app
    num_cores: int = 8
    #: System-specific fetch-path adjustment relative to the generic
    #: fault cost: positive for extra layers (Infiniswap's bio/block
    #: path), negative for leaner-than-Linux designs (LegoOS's
    #: splitkernel ExCache path).  The total fault cost is floored at a
    #: bare trap cost.
    extra_fetch_ns: float = 0.0
    #: Extra software cost per eviction (e.g. Infiniswap's block layer
    #: on the writeback path, measured at >32 us total in the paper).
    extra_evict_ns: float = 0.0
    #: Pages reclaimed per eviction round (kswapd-style batching); the
    #: TLB shootdown is paid once per round, amortized over the batch.
    evict_batch: int = 1

    def __post_init__(self) -> None:
        if self.local_capacity < self.page_size:
            raise ConfigError("local cache smaller than one page")
        if self.page_size % units.PAGE_4K:
            raise ConfigError(f"page_size {self.page_size} not 4 KiB aligned")


@dataclass
class ExecutionReport:
    """Result of running an access stream through an engine."""

    name: str
    accesses: int
    elapsed_ns: float                 # application critical-path time
    background_ns: float              # overlapped work (async eviction)
    account: Account
    counters: Counter
    bytes_fetched: int
    bytes_written_back: int

    @property
    def dirty_amplification(self) -> float:
        """Written-back bytes over the bytes the app actually dirtied,
        for the pages that were written back.

        Callers that know the true dirtied byte count should compute it
        themselves; this property assumes one 64 B line per page write,
        which holds for the Figure 7 microbenchmark.
        """
        if self.counters["dirty_evictions"] == 0:
            return float("nan")
        actual = self.counters["dirty_evictions"] * units.CACHE_LINE
        return self.bytes_written_back / actual


class PagedRemoteMemory:
    """A page-based remote-memory runtime executing access streams."""

    def __init__(self, config: PagedConfig,
                 latency: LatencyModel = DEFAULT_LATENCY,
                 app_ns_per_access: float = 70.0) -> None:
        self.config = config
        self.latency = latency
        self.app_ns_per_access = app_ns_per_access
        self.fault_model = PageFaultModel(config.fault_path, latency,
                                          config.num_cores)
        self.capacity_pages = config.local_capacity // config.page_size
        # Residency: insertion-ordered dict as an LRU (oldest first).
        self._resident: Dict[int, bool] = {}     # vpn -> dirty
        self._write_protected: Set[int] = set()
        self.account = Account()
        self.counters = Counter()
        self.bytes_fetched = 0
        self.bytes_written_back = 0

    # -- single access --------------------------------------------------------------

    def access(self, addr: int, is_write: bool) -> float:
        """Execute one access; returns critical-path ns consumed."""
        vpn = addr // self.config.page_size
        elapsed = 0.0
        resident = self._resident
        if vpn in resident:
            # LRU promote.
            dirty = resident.pop(vpn)
            resident[vpn] = dirty
            if is_write:
                elapsed += self._on_write(vpn)
        else:
            elapsed += self._fetch(vpn)
            if is_write:
                elapsed += self._on_write(vpn)
        return elapsed

    def _on_write(self, vpn: int) -> float:
        if not self.config.track_dirty:
            self._resident[vpn] = True
            return 0.0
        cost = 0.0
        if vpn in self._write_protected:
            self._write_protected.discard(vpn)
            cost = self.fault_model.write_protect_fault_ns()
            self.account.charge("wp_fault", cost)
        if not self._resident[vpn]:
            self.counters.add("pages_dirtied")
        self._resident[vpn] = True
        return cost

    def _fetch(self, vpn: int) -> float:
        elapsed = 0.0
        if len(self._resident) >= self.capacity_pages:
            elapsed += self._evict_round()
        fault = max(self.fault_model.fetch_fault_ns()
                    + self.config.extra_fetch_ns, 500.0)
        page = self.config.page_size
        network = self.latency.rdma_transfer_ns(page, linked=True,
                                                signaled=True)
        self.account.charge("fetch_fault", fault)
        self.account.charge("fetch_network", network)
        self.bytes_fetched += page
        self.counters.add("pages_fetched")
        # A freshly fetched page starts clean and write-protected.
        self._resident[vpn] = False
        if self.config.track_dirty:
            self._write_protected.add(vpn)
        return elapsed + fault + network

    def _evict_round(self) -> float:
        """Reclaim a batch of LRU victims; one shootdown per round."""
        batch = min(max(self.config.evict_batch, 1), len(self._resident))
        software = (self.fault_model.evict_pages_ns(batch)
                    + batch * self.config.extra_evict_ns)
        self.account.charge("evict_software", software)
        elapsed = software
        for _ in range(batch):
            victim = next(iter(self._resident))
            dirty = self._resident.pop(victim)
            self._write_protected.discard(victim)
            if dirty:
                page = self.config.page_size
                copy = self.latency.memcpy_ns(page)   # stage into RDMA buffer
                wire = self.latency.rdma_transfer_ns(page, linked=True,
                                                     signaled=False)
                self.bytes_written_back += page
                self.counters.add("dirty_evictions")
                if self.config.async_evict_transfer:
                    self.account.charge("evict_background", copy + wire)
                else:
                    self.account.charge("evict_transfer", copy + wire)
                    elapsed += copy + wire
            self.counters.add("evictions")
        return elapsed

    # -- stream execution ---------------------------------------------------------------

    def run(self, addrs: np.ndarray, writes: np.ndarray) -> ExecutionReport:
        """Execute a whole access stream and report the time breakdown."""
        if addrs.shape != writes.shape:
            raise ConfigError("addrs and writes must have identical shape")
        elapsed = 0.0
        access = self.access
        for addr, is_write in zip(addrs.tolist(), writes.tolist()):
            elapsed += access(addr, is_write)
        app = self.app_ns_per_access * addrs.size
        self.account.charge("app_compute", app)
        elapsed += app
        background = self.account["evict_background"]
        return ExecutionReport(
            name=self.config.name,
            accesses=int(addrs.size),
            elapsed_ns=elapsed,
            background_ns=background,
            account=self.account,
            counters=self.counters,
            bytes_fetched=self.bytes_fetched,
            bytes_written_back=self.bytes_written_back,
        )

    # -- maintenance --------------------------------------------------------------------

    def flush_dirty(self) -> int:
        """Write every dirty resident page back; returns bytes shipped.

        Page-based systems must ship whole pages here — the
        amplification Kona's line tracking avoids.
        """
        page = self.config.page_size
        shipped = 0
        for vpn, dirty in self._resident.items():
            if not dirty:
                continue
            copy = self.latency.memcpy_ns(page)
            wire = self.latency.rdma_transfer_ns(page, linked=True,
                                                 signaled=False)
            self.account.charge("evict_background", copy + wire)
            self._resident[vpn] = False
            self.bytes_written_back += page
            shipped += page
            self.counters.add("dirty_flushes")
        return shipped

    def reprotect_all(self) -> float:
        """Start a new dirty-tracking window (stop-the-world protect round)."""
        if not self.config.track_dirty:
            return 0.0
        self._write_protected = set(self._resident)
        for vpn in self._resident:
            self._resident[vpn] = False
        cost = self.fault_model.protect_pages_ns(len(self._write_protected))
        self.account.charge("protect_round", cost)
        return cost

    @property
    def resident_pages(self) -> int:
        """Pages currently held in the local DRAM cache."""
        return len(self._resident)
