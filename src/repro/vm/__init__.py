"""Virtual-memory remote-memory machinery (the baselines' substrate)."""

from .faults import FaultCosts, FaultPath, PageFaultModel
from .pml import PML_BUFFER_ENTRIES, PMLTracker
from .swap import ExecutionReport, PagedConfig, PagedRemoteMemory
from .writeprotect import WriteProtectTracker

__all__ = [
    "ExecutionReport",
    "FaultCosts",
    "FaultPath",
    "PML_BUFFER_ENTRIES",
    "PMLTracker",
    "PagedConfig",
    "PagedRemoteMemory",
    "PageFaultModel",
    "WriteProtectTracker",
]
