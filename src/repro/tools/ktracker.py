"""KTracker: snapshot-diff emulation of cache-line dirty tracking.

The real KTracker (paper section 5, Figure 6) ptrace-attaches to a
process, snapshots its mapped pages once per second, and diffs memory
against the snapshot to find dirty cache lines — emulating the
coherence bitmap without hardware.  In write-protect mode it instead
write-protects pages, emulating today's virtual-memory tracking, for an
apples-to-apples comparison.

This simulator does the same against a byte-backed memory image driven
by a workload trace:

* writes are *applied* to the image (with a configurable fraction of
  redundant writes that store back identical bytes — content diffing,
  unlike write-protection, does not see those);
* per window it reports dirty pages (what 4 KB tracking ships) versus
  content-changed lines (what Kona ships) — Figure 9's ratio series;
* it accounts its own copy/compare overhead — the section 6.3
  emulation-overhead experiment;
* write-protect mode charges one minor fault per first-written page
  per window plus the stop-the-world protect round — Figure 10's
  speedup baseline.

Scaling note: traces are memory- and rate-scaled, so fault *rates*
for the speedup computation come from ``NATIVE_DIRTY_PAGE_RATE`` — the
per-second dirty-page rates of the unscaled applications, calibrated
from the paper's Figure 10 speedups given the fault cost model (e.g.
Redis-Rand's 35% speedup at ~2 us per write-protect fault implies
~170 K dirtied pages/s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..common import units
from ..common.errors import ConfigError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.stats import Counter
from ..vm.faults import FaultPath, PageFaultModel
from ..workloads.base import WorkloadModel, WriteProfile
from ..workloads.trace import Trace

#: Unscaled applications' dirty-page rates (pages/second), calibrated
#: so write-protect overhead reproduces Figure 10 given the fault cost.
NATIVE_DIRTY_PAGE_RATE: Dict[str, float] = {
    "redis-rand": 170_000.0,          # 35% speedup
    "redis-seq": 4_900.0,             # ~1%
    "histogram": 4_900.0,             # ~1%
    "linear-regression": 15_000.0,    # ~3%
    "page-rank": 44_000.0,            # ~9%
    "connected-components": 58_000.0, # ~12%
    "graph-coloring": 73_000.0,       # ~15%
    "label-propagation": 87_000.0,    # ~18%
    "voltdb-tpcc": 30_000.0,          # not shown in Figure 10
}


@dataclass(frozen=True)
class WindowResult:
    """One KTracker window."""

    window: int
    written_pages: int          # pages with any write (WP-mode dirty set)
    changed_lines: int          # content-changed cache lines
    changed_pages: int          # pages with >= 1 changed line
    diff_ns: float              # snapshot copy + compare time

    @property
    def page_vs_line_ratio(self) -> float:
        """4 KB dirty bytes over changed-line dirty bytes (Figure 9)."""
        if self.changed_lines == 0:
            return float("nan")
        return (self.written_pages * units.PAGE_4K
                / (self.changed_lines * units.CACHE_LINE))


@dataclass
class KTrackerReport:
    """Full KTracker run output."""

    name: str
    windows: List[WindowResult]
    total_accesses: int
    fault_model: PageFaultModel
    native_dirty_page_rate: float
    window_seconds: float = 1.0

    def ratio_series(self, skip_last: int = 1) -> List[Tuple[int, float]]:
        """Per-window amplification-reduction series (Figure 9).

        The last window (process teardown) is excluded by default, as
        in the paper.
        """
        rows = self.windows[:len(self.windows) - skip_last or None]
        return [(r.window, r.page_vs_line_ratio) for r in rows
                if r.changed_lines > 0]

    # -- Figure 10: speedup over write-protection ------------------------------

    def write_protect_overhead_fraction(self) -> float:
        """Share of native runtime spent in WP faults + protect rounds."""
        fault_ns = self.fault_model.costs.minor_fault_ns
        per_second = self.native_dirty_page_rate * fault_ns
        # One protect round per window over the tracked set.
        per_second += self.fault_model.costs.shootdown_ns / self.window_seconds
        return min(per_second / (self.window_seconds * units.S), 0.95)

    def tracking_speedup_percent(self) -> float:
        """Speedup of coherence tracking relative to write-protection.

        Hardware tracking is free for the application, so the speedup
        equals the runtime share write-protection was stealing.
        """
        overhead = self.write_protect_overhead_fraction()
        return 100.0 * overhead

    # -- section 6.3: emulation overhead ------------------------------------------

    def emulation_overhead_fraction(self, native_memory_bytes: int,
                                    latency=None) -> Dict[str, float]:
        """Throughput loss from running under (software) KTracker.

        The real KTracker snapshots and diffs *all tracked pages* of
        the unscaled application every window — for Redis-Rand that is
        a multi-GB resident set copied through ptrace at a few GB/s —
        so the overhead must be computed at native scale
        (``native_memory_bytes``), not on the scaled trace.

        Returns the loss fraction and its split between memory
        copy/compare and ptrace stops; the paper reports ~60% loss,
        95% of it from copying and comparing (section 6.3).
        """
        from ..common.latency import DEFAULT_LATENCY
        lat = latency if latency is not None else DEFAULT_LATENCY
        per_window_diff = native_memory_bytes * (
            lat.ktracker_copy_per_byte_ns + lat.memcmp_per_byte_ns)
        # Attach/stop/resume bookkeeping: a small share of the stop time.
        per_window_ptrace = 0.05 * per_window_diff
        windows = max(len(self.windows), 1)
        diff_ns = per_window_diff * windows
        ptrace_ns = per_window_ptrace * windows
        native_ns = windows * self.window_seconds * units.S
        total = diff_ns + ptrace_ns
        return {
            "loss": total / (native_ns + total),
            "diff_share": diff_ns / total if total else 0.0,
            "ptrace_share": ptrace_ns / total if total else 0.0,
        }


class KTracker:
    """Content-level dirty tracking over a workload trace."""

    def __init__(self, memory_bytes: int,
                 latency: LatencyModel = DEFAULT_LATENCY,
                 redundant_write_fraction: float = 0.12,
                 num_cores: int = 8) -> None:
        if memory_bytes <= 0 or memory_bytes % units.PAGE_4K:
            raise ConfigError("memory must be a positive multiple of 4 KiB")
        if not 0.0 <= redundant_write_fraction < 1.0:
            raise ConfigError("redundant fraction must be in [0, 1)")
        self.memory_bytes = memory_bytes
        self.latency = latency
        self.redundant_write_fraction = redundant_write_fraction
        self.fault_model = PageFaultModel(FaultPath.USERFAULTFD, latency,
                                          num_cores)
        self._image = np.zeros(memory_bytes, dtype=np.uint8)
        self._stamp = 1
        self.counters = Counter()

    def run(self, trace: Trace, name: Optional[str] = None) -> KTrackerReport:
        """Process a trace window by window."""
        windows: List[WindowResult] = []
        rng = np.random.default_rng(1234)
        for w in range(trace.num_windows):
            windows.append(self._window(trace, w, rng))
        workload = name if name is not None else trace.name
        rate = NATIVE_DIRTY_PAGE_RATE.get(workload, 50_000.0)
        return KTrackerReport(
            name=workload,
            windows=windows,
            total_accesses=len(trace),
            fault_model=self.fault_model,
            native_dirty_page_rate=rate,
        )

    # -- internals ------------------------------------------------------------------

    def _window(self, trace: Trace, window: int,
                rng: np.random.Generator) -> WindowResult:
        mask = (trace.windows == window) & trace.writes
        addrs = trace.addrs[mask]
        sizes = trace.sizes[mask]
        page_ids = np.unique(addrs // np.uint64(units.PAGE_4K))
        # Snapshot the written pages, then apply the writes.
        snapshots = self._snapshot(page_ids)
        redundant = rng.random(addrs.size) < self.redundant_write_fraction
        self._apply_writes(addrs, sizes, redundant)
        changed_lines, changed_pages = self._diff(page_ids, snapshots)
        # Copy + compare cost over every snapshotted page (both passes).
        diff_ns = page_ids.size * (
            self.latency.memcpy_ns(units.PAGE_4K)
            + self.latency.memcmp_ns(units.PAGE_4K))
        self.counters.add("windows")
        self.counters.add("pages_snapshotted", int(page_ids.size))
        return WindowResult(window=window,
                            written_pages=int(page_ids.size),
                            changed_lines=changed_lines,
                            changed_pages=changed_pages,
                            diff_ns=diff_ns)

    def _snapshot(self, page_ids: np.ndarray) -> np.ndarray:
        count = page_ids.size
        out = np.empty((count, units.PAGE_4K), dtype=np.uint8)
        for i, page in enumerate(page_ids.tolist()):
            start = page * units.PAGE_4K
            out[i] = self._image[start:start + units.PAGE_4K]
        return out

    def _apply_writes(self, addrs: np.ndarray, sizes: np.ndarray,
                      redundant: np.ndarray) -> None:
        image = self._image
        limit = self.memory_bytes
        for addr, size, skip in zip(addrs.tolist(), sizes.tolist(),
                                    redundant.tolist()):
            if skip:
                continue   # stores the same bytes: invisible to a diff
            end = min(addr + size, limit)
            if addr >= limit:
                continue
            image[addr:end] = self._stamp & 0xFF
            self._stamp += 1

    def _diff(self, page_ids: np.ndarray,
              snapshots: np.ndarray) -> Tuple[int, int]:
        changed_lines = 0
        changed_pages = 0
        for i, page in enumerate(page_ids.tolist()):
            start = page * units.PAGE_4K
            current = self._image[start:start + units.PAGE_4K]
            diff = current != snapshots[i]
            if not diff.any():
                continue
            per_line = diff.reshape(units.LINES_PER_PAGE,
                                    units.CACHE_LINE).any(axis=1)
            changed_lines += int(per_line.sum())
            changed_pages += 1
        return changed_lines, changed_pages


# -- KTracker-specific workload profiles -----------------------------------------

def redis_rand_ktracker(memory_bytes: int = 96 * units.MB,
                        windows: int = 130) -> WorkloadModel:
    """Redis-Rand as seen by KTracker (1 s windows, memtier load).

    The KTracker experiment drives Redis with memtier at full speed in
    1-second windows — a denser write mix than the Pin/Table 2 run —
    and content diffing discounts redundant stores.  The profile is
    calibrated so the per-window 4KB-vs-CL ratio fluctuates in the
    paper's 2-10X band (Figure 9).
    """
    drift = (0.45, 0.8, 1.3, 2.0, 0.6, 1.0, 1.6, 0.5, 1.1, 0.75)
    return WorkloadModel(
        name="redis-rand",
        memory_bytes=memory_bytes,
        write_profile=WriteProfile(
            lines_per_page=16.0,
            bytes_per_line=43.0,
            pages_per_huge=6.0,
            dirty_pages_per_window=300,
            full_page_fraction=0.0,
            partial_segment_lines=1.6,
            addressing="uniform",
        ),
        window_drift=drift,
        startup_windows=10,     # Figure 9: first ~10 windows are startup
    )


def redis_seq_ktracker(memory_bytes: int = 64 * units.MB,
                       windows: int = 60) -> WorkloadModel:
    """Redis-Seq under KTracker: ~2X amplification reduction."""
    return WorkloadModel(
        name="redis-seq",
        memory_bytes=memory_bytes,
        write_profile=WriteProfile(
            lines_per_page=30.0,
            bytes_per_line=59.0,
            pages_per_huge=25.8,
            dirty_pages_per_window=380,
            full_page_fraction=0.35,
            partial_segment_lines=8.0,
            addressing="sequential",
        ),
        window_drift=(1.0, 1.1, 0.92, 1.06),
        startup_windows=10,
    )
