"""Simulation/emulation tools (paper section 5): pintool, KCacheSim, KTracker."""

from .kcachesim import KCacheSim, KCacheSimResult, simulation_overhead
from .ktracker import (
    NATIVE_DIRTY_PAGE_RATE,
    KTracker,
    KTrackerReport,
    WindowResult,
    redis_rand_ktracker,
    redis_seq_ktracker,
)
from .pintool import (
    AmplificationReport,
    WindowAmplification,
    analyze,
    analyze_window,
    lines_per_page_cdf,
    segment_length_cdf,
)

__all__ = [
    "AmplificationReport",
    "KCacheSim",
    "KCacheSimResult",
    "KTracker",
    "KTrackerReport",
    "NATIVE_DIRTY_PAGE_RATE",
    "WindowAmplification",
    "WindowResult",
    "analyze",
    "analyze_window",
    "lines_per_page_cdf",
    "redis_rand_ktracker",
    "redis_seq_ktracker",
    "segment_length_cdf",
    "simulation_overhead",
]
