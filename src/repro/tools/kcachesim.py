"""KCacheSim: the remote-fetch AMAT simulator (paper section 5, 6.2).

Runs an application's data-access stream through the hardware cache
hierarchy plus a DRAM cache sized to a fraction of the data set, then
prices the per-level service counts with each system's latency
assignment (:mod:`repro.cache.amat`):

* for **Kona** and **Kona-main**, the DRAM cache is FMem/CMem and a
  remote miss costs a fault-free directory fetch;
* for **LegoOS / Infiniswap / Kona-VM**, the DRAM cache is local memory
  and a remote miss costs the measured fault-inclusive fetch latency.

Because the hierarchy simulation is identical for every system (same
trace, same geometry), one simulation per (workload, cache size, block
size) point is priced under all systems — exactly the paper's
methodology of reusing Cachegrind miss rates.

Hot working-set accesses (the vast majority, never remote) are priced
analytically from the workload's :class:`~repro.workloads.amat.
HotProfile`; see that module for why.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional


from ..cache.amat import ALL_SYSTEMS, SystemLatencies, system_latencies
from ..cache.hierarchy import (
    DEFAULT_CPU_LEVELS,
    CacheHierarchy,
    HierarchyResult,
    dram_cache_spec,
)
from ..common import units
from ..common.errors import ConfigError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..mem.tlb import TLB
from ..workloads.amat import AmatSpec, generate_data_accesses


@dataclass
class KCacheSimResult:
    """One simulated configuration, priceable under any system."""

    spec: AmatSpec
    cache_fraction: float
    block_size: int
    hierarchy: HierarchyResult
    latency: LatencyModel
    #: TLB miss ratio over the data accesses (0 when not simulated).
    #: Adds the §3 translation-overhead term to the AMAT: every miss
    #: pays a page-table walk on top of the memory access.
    tlb_miss_ratio: float = 0.0

    def _hot_cost_ns(self, system: SystemLatencies) -> float:
        hp = self.spec.hot_profile
        lat = self.latency
        return (hp.l1 * lat.l1_hit_ns + hp.l2 * lat.l2_hit_ns
                + hp.l3 * lat.l3_hit_ns + hp.mem * lat.cmem_ns)

    def _system(self, system: str) -> SystemLatencies:
        """System latencies with the remote fetch priced for our block.

        The measured end-to-end fetch latencies are for 4 KB transfers;
        other fetch granularities shift the wire component — tiny
        blocks fetch less, 30 KB blocks drag the whole transfer onto
        the miss path.  This is what bends Figure 8d's curves up at
        both ends.
        """
        base = system_latencies(system, self.latency)
        delta = (self.block_size - units.PAGE_4K) * self.latency.rdma_per_byte_ns
        remote = max(base.remote_ns + delta, self.latency.rdma_base_ns)
        return SystemLatencies(name=base.name, level_ns=base.level_ns,
                               dram_cache_ns=base.dram_cache_ns,
                               remote_ns=remote)

    def data_amat_ns(self, system: str) -> float:
        """AMAT over the data accesses only."""
        return self._system(system).amat_ns(self.hierarchy)

    def amat_ns(self, system: str) -> float:
        """Overall AMAT (hot + data accesses) for one system.

        Includes the translation term when the TLB was simulated: each
        data-access TLB miss adds a page-table walk.
        """
        sys_lat = self._system(system)
        hot = self._hot_cost_ns(sys_lat)
        data = (sys_lat.amat_ns(self.hierarchy)
                + self.tlb_miss_ratio * self.latency.tlb_miss_walk_ns)
        k = self.spec.hot_per_data_access
        return (k * hot + data) / (k + 1.0)

    def amat_all_systems(self) -> Dict[str, float]:
        """AMAT under every known system."""
        return {name: self.amat_ns(name) for name in ALL_SYSTEMS}


class KCacheSim:
    """Sweepable AMAT simulator for one workload spec.

    ``engine`` selects the trace-simulation kernel: the default
    ``"vectorized"`` bulk engine, or ``"scalar"`` for the reference
    oracle (required for the ``random`` replacement policy).
    """

    def __init__(self, spec: AmatSpec,
                 latency: LatencyModel = DEFAULT_LATENCY,
                 engine: str = "vectorized") -> None:
        self.spec = spec
        self.latency = latency
        self.engine = engine

    def run(self, cache_fraction: float, *, block_size: int = units.PAGE_4K,
            ways: int = 4, num_ops: int = 60_000, seed: int = 0,
            tlb_page_size: Optional[int] = None) -> KCacheSimResult:
        """Simulate one (cache size, block size) configuration.

        ``cache_fraction`` sizes the DRAM cache as a share of the data
        region ("% local memory" on the paper's x-axes).  A fraction of
        0 (or one too small to hold a single set) removes the DRAM
        cache: every last-level miss goes remote.

        ``tlb_page_size`` additionally simulates a TLB at that page
        size, adding the translation-overhead term to the AMAT (the §3
        argument for why applications want huge pages).
        """
        if not 0.0 <= cache_fraction <= 1.0:
            raise ConfigError(
                f"cache_fraction must be in [0, 1], got {cache_fraction}")
        if block_size < units.CACHE_LINE:
            raise ConfigError("block_size must be at least one cache line")
        capacity = int(self.spec.data_bytes * cache_fraction)
        dram = None
        if capacity >= block_size * ways:
            dram = dram_cache_spec(_round_capacity(capacity, block_size, ways),
                                   block_size, ways)
        hierarchy = CacheHierarchy(DEFAULT_CPU_LEVELS, dram_cache=dram,
                                   engine=self.engine)
        addrs, writes = generate_data_accesses(self.spec, num_ops, seed)
        result = hierarchy.simulate(addrs, writes)
        tlb_miss_ratio = 0.0
        if tlb_page_size is not None:
            tlb_miss_ratio = self._simulate_tlb(addrs, tlb_page_size)
        return KCacheSimResult(self.spec, cache_fraction, block_size,
                               result, self.latency,
                               tlb_miss_ratio=tlb_miss_ratio)

    @staticmethod
    def _simulate_tlb(addrs, page_size: int) -> float:
        tlb = TLB(entries=1536, ways=12, page_size=page_size)
        misses = 0
        # Chunked conversion: plain-int iteration without materializing
        # a whole-trace list.
        for lo in range(0, addrs.size, 1 << 16):
            for addr in addrs[lo:lo + (1 << 16)].tolist():
                vpn = addr // page_size
                if not tlb.lookup(vpn):
                    misses += 1
                    tlb.insert(vpn)
        return misses / max(len(addrs), 1)

    def run_trace(self, addrs, writes, cache_fraction: float, *,
                  block_size: int = units.PAGE_4K,
                  ways: int = 4) -> KCacheSimResult:
        """Simulate an externally supplied access stream.

        Bridges the Table 2 workload traces (or any recorded stream)
        into the AMAT methodology: pass ``trace.addrs``/``trace.writes``
        from a :class:`~repro.workloads.trace.Trace` directly.
        """
        if not 0.0 <= cache_fraction <= 1.0:
            raise ConfigError(
                f"cache_fraction must be in [0, 1], got {cache_fraction}")
        capacity = int(self.spec.data_bytes * cache_fraction)
        dram = None
        if capacity >= block_size * ways:
            dram = dram_cache_spec(
                _round_capacity(capacity, block_size, ways),
                block_size, ways)
        hierarchy = CacheHierarchy(DEFAULT_CPU_LEVELS, dram_cache=dram,
                                   engine=self.engine)
        result = hierarchy.simulate(addrs, writes)
        return KCacheSimResult(self.spec, cache_fraction, block_size,
                               result, self.latency)

    def sweep_cache_size(self, fractions, system: str = "kona",
                         **kwargs) -> Dict[float, float]:
        """AMAT as a function of local cache size for one system."""
        return {f: self.run(f, **kwargs).amat_ns(system) for f in fractions}

    def sweep_block_size(self, blocks, cache_fraction: float,
                         system: str = "kona", **kwargs) -> Dict[int, float]:
        """AMAT as a function of the fetch block size (Figure 8d)."""
        return {b: self.run(cache_fraction, block_size=b, **kwargs)
                .amat_ns(system) for b in blocks}


def _round_capacity(capacity: int, block_size: int, ways: int) -> int:
    """Largest valid cache capacity not exceeding ``capacity``."""
    set_bytes = block_size * ways
    sets = max(capacity // set_bytes, 1)
    sets = 1 << (sets.bit_length() - 1)   # power-of-two sets
    return sets * set_bytes


def simulation_overhead(spec: AmatSpec, num_ops: int = 20_000,
                        seed: int = 0) -> float:
    """Measure the simulator's slowdown versus native trace replay.

    The paper reports a 43X throughput drop for Redis under KCacheSim
    (section 6.2).  "Native" here is the cheapest faithful stand-in for
    uninstrumented execution: streaming the same accesses through a
    vectorized checksum, which is memory-bound like the real thing.
    Returns the slowdown factor (simulated time / native time).
    """
    addrs, writes = generate_data_accesses(spec, num_ops, seed)
    start = time.perf_counter()
    checksum = int(addrs.sum()) ^ int(writes.sum())   # native replay
    native = time.perf_counter() - start
    sim = KCacheSim(spec)
    start = time.perf_counter()
    sim.run(0.5, num_ops=num_ops, seed=seed)
    simulated = time.perf_counter() - start
    if native <= 0:
        native = 1e-9
    del checksum
    return simulated / native
