"""Trace analytics standing in for the paper's Pin-based measurement.

The paper instrumented applications with Intel Pin and measured, per
10-second window: dirty data amplification at 4 KB / 2 MB / 64 B
granularity (Table 2), the per-page accessed-line distribution
(Figure 2) and the contiguous-segment distribution (Figure 3).  Here
the same statistics are computed from synthetic traces, fully
vectorized with numpy.

"Actual bytes written" counts *unique* bytes at word (8 B) granularity
— stores on a 64-bit machine touch whole words, and this matches how a
binary-instrumentation tool sees them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..common import units
from ..common.errors import ConfigError
from ..common.stats import CDF
from ..workloads.trace import Trace


@dataclass(frozen=True)
class WindowAmplification:
    """Dirty-data accounting for one measurement window."""

    window: int
    unique_bytes: int
    dirty_lines: int
    dirty_pages_4k: int
    dirty_pages_2m: int

    @property
    def amp_4k(self) -> float:
        """Amplification with 4 KB page tracking."""
        return self.dirty_pages_4k * units.PAGE_4K / self.unique_bytes

    @property
    def amp_2m(self) -> float:
        """Amplification with 2 MB page tracking."""
        return self.dirty_pages_2m * units.PAGE_2M / self.unique_bytes

    @property
    def amp_cl(self) -> float:
        """Amplification with 64 B cache-line tracking."""
        return self.dirty_lines * units.CACHE_LINE / self.unique_bytes

    @property
    def page_vs_line_ratio(self) -> float:
        """4 KB amplification over cache-line amplification (Figure 9)."""
        return self.amp_4k / self.amp_cl


def _expand_words(addrs: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Word indices touched by each (addr, size) access, concatenated."""
    starts = addrs // np.uint64(units.WORD)
    ends = (addrs + sizes.astype(np.uint64) - 1) // np.uint64(units.WORD)
    counts = (ends - starts + 1).astype(np.int64)
    total = int(counts.sum())
    # offsets-within-access via the classic repeat/arange trick
    out = np.repeat(starts, counts)
    cum = np.cumsum(counts)
    inner = np.arange(total, dtype=np.uint64)
    inner -= np.repeat(cum - counts, counts).astype(np.uint64)
    return out + inner


def analyze_window(trace: Trace, window: int) -> Optional[WindowAmplification]:
    """Amplification record for one window (None if it had no writes)."""
    mask = (trace.windows == window) & trace.writes
    if not mask.any():
        return None
    addrs = trace.addrs[mask]
    sizes = trace.sizes[mask]
    words = np.unique(_expand_words(addrs, sizes))
    lines = np.unique(words // np.uint64(units.CACHE_LINE // units.WORD))
    pages4k = np.unique(lines // np.uint64(units.LINES_PER_PAGE))
    pages2m = np.unique(pages4k // np.uint64(units.PAGE_2M // units.PAGE_4K))
    return WindowAmplification(
        window=window,
        unique_bytes=int(words.size) * units.WORD,
        dirty_lines=int(lines.size),
        dirty_pages_4k=int(pages4k.size),
        dirty_pages_2m=int(pages2m.size),
    )


@dataclass
class AmplificationReport:
    """Per-window and aggregate amplification for one workload."""

    name: str
    windows: List[WindowAmplification]

    def mean_amplification(self, skip_first: int = 0,
                           skip_last: int = 1) -> Dict[str, float]:
        """Aggregate amplification over the steady-state windows.

        The paper excludes the final (tear-down) window because its
        tiny, scattered writes skew the average; ``skip_first`` lets
        callers also drop server-startup windows.
        """
        rows = self.windows[skip_first:
                            len(self.windows) - skip_last or None]
        if not rows:
            raise ConfigError("no windows left after skipping")
        unique = sum(r.unique_bytes for r in rows)
        return {
            "4k": sum(r.dirty_pages_4k for r in rows) * units.PAGE_4K / unique,
            "2m": sum(r.dirty_pages_2m for r in rows) * units.PAGE_2M / unique,
            "cl": sum(r.dirty_lines for r in rows) * units.CACHE_LINE / unique,
        }

    def per_window_ratio(self) -> List[Tuple[int, float]]:
        """(window, 4KB-vs-CL ratio) series — Figure 9's curve."""
        return [(r.window, r.page_vs_line_ratio) for r in self.windows]


def analyze(trace: Trace) -> AmplificationReport:
    """Run the amplification analysis over every window of a trace."""
    rows = []
    for w in range(trace.num_windows):
        record = analyze_window(trace, w)
        if record is not None:
            rows.append(record)
    return AmplificationReport(trace.name, rows)


# -- Figures 2 and 3: spatial locality and contiguity --------------------------

def lines_per_page_cdf(trace: Trace, writes: bool) -> CDF:
    """CDF of distinct accessed lines per page per window (Figure 2)."""
    samples: List[np.ndarray] = []
    for w in range(trace.num_windows):
        mask = (trace.windows == w) & (trace.writes == writes)
        if not mask.any():
            continue
        lines = np.unique(trace.addrs[mask] // np.uint64(units.CACHE_LINE))
        pages = lines // np.uint64(units.LINES_PER_PAGE)
        _, counts = np.unique(pages, return_counts=True)
        samples.append(counts)
    if not samples:
        return CDF.from_samples([])
    return CDF.from_samples(np.concatenate(samples))


def segment_length_cdf(trace: Trace, writes: bool) -> CDF:
    """CDF of contiguous accessed-line run lengths per page (Figure 3)."""
    samples: List[np.ndarray] = []
    for w in range(trace.num_windows):
        mask = (trace.windows == w) & (trace.writes == writes)
        if not mask.any():
            continue
        lines = np.unique(trace.addrs[mask] // np.uint64(units.CACHE_LINE))
        pages = lines // np.uint64(units.LINES_PER_PAGE)
        # A new segment starts when the page changes or a gap appears.
        breaks = np.ones(lines.size, dtype=bool)
        if lines.size > 1:
            same_page = pages[1:] == pages[:-1]
            adjacent = lines[1:] == lines[:-1] + 1
            breaks[1:] = ~(same_page & adjacent)
        seg_ids = np.cumsum(breaks)
        _, seg_lengths = np.unique(seg_ids, return_counts=True)
        samples.append(seg_lengths)
    if not samples:
        return CDF.from_samples([])
    return CDF.from_samples(np.concatenate(samples))
