"""The Poller: completion handling off the critical path.

Kona batches RDMA completions (unsignaled work requests) and lets one
cooperative poller thread drain completion queues for the controller
and memory-node connections (paper section 4.1).  In the simulator the
poller's value shows up as *hidden* time: completion-polling costs are
charged to the poller, not to the application.
"""

from __future__ import annotations

from typing import List

from ..common.stats import Counter
from ..net.rdma import Completion, CompletionQueue


class Poller:
    """Drains completion queues; accounts for hidden completion costs."""

    def __init__(self) -> None:
        self._queues: List[CompletionQueue] = []
        self.counters = Counter()
        self.hidden_time_ns = 0.0

    def watch(self, cq: CompletionQueue) -> None:
        """Add a completion queue to the polling set."""
        self._queues.append(cq)

    def poll_once(self) -> List[Completion]:
        """One polling sweep across all queues."""
        drained: List[Completion] = []
        for cq in self._queues:
            if len(cq) == 0:
                continue
            before = cq._fabric.clock.now
            drained.extend(cq.poll())
            self.hidden_time_ns += cq._fabric.clock.now - before
        self.counters.add("sweeps")
        self.counters.add("completions", len(drained))
        return drained

    def drain(self, max_sweeps: int = 1000) -> int:
        """Poll until every queue is empty; returns completions drained."""
        total = 0
        for _ in range(max_sweeps):
            drained = self.poll_once()
            total += len(drained)
            if all(len(cq) == 0 for cq in self._queues):
                break
        return total

    @property
    def watched_queues(self) -> int:
        """Number of queues under management."""
        return len(self._queues)
