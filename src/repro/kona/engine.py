"""The batched ``run_trace`` engine: bulk hits, replayed events.

``KonaRuntime.run_trace`` used to execute one Python call chain per
access (``runtime.access`` -> ``CoherentCache.access`` -> directory ->
``MemoryAgent``).  On paper-scale traces almost every access is a pure
CPU-cache hit that touches nothing below the cache, so this engine
splits the stream:

* a vectorized front-end (:class:`VectorizedCoherentCache`, an ndarray
  mirror of the CPU coherent cache) classifies each span of accesses
  and resolves runs of *pure hits* — resident lines, writable when
  written — in single numpy operations;
* everything else (misses, S->M upgrades) is a *compressed event
  stream* replayed one at a time, in program order, through the exact
  same directory/MemoryAgent/FMem/eviction back-end the scalar path
  uses — so directory traffic, FMem fills, dirty-bitmap marks,
  eviction-handler work and the accumulated stall are bit-identical.

Pure hits never change another line's residency or writability, so a
classification stays valid up to the first non-pure access.  After
each replayed event the front-end's hit masks are *patched* instead of
recomputed: the evicted victim and any lines the directory invalidated
mid-fill (FMem page evictions snoop every line of the victim page)
become misses; the filled or upgraded line becomes a hit.  The
256-access ``maybe_evict``/sampler-tick cadence is preserved by ending
every span at a cadence point, and the trace is consumed in bounded
chunks (no whole-trace ``tolist`` materialization).

The scalar loop remains in :meth:`KonaRuntime.run_trace` as the
differential-test oracle (``engine="scalar"``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from ..coherence.vectorized import (DOWNGRADED, INVALIDATED, MODIFIED,
                                    _WRITABLE, VectorizedCoherentCache)
from ..common import units
from ..common.errors import AddressError

if TYPE_CHECKING:
    from .runtime import KonaRuntime

#: Trace chunk size; a multiple of the 256-access maintenance cadence.
#: Also the granularity of engine-mode adaptation, so it is kept small
#: enough that a cold trace stops paying vectorization overhead quickly.
_CHUNK = 1 << 14

#: Mode hysteresis: leave vectorized mode when more than half of a
#: chunk fell back to scalar replay; come back only after a scalar
#: chunk ran at >= 7/8 CPU-cache hits.  The gap keeps a ~50%-hit trace
#: from oscillating (every switch re-imports or re-exports the cache).
_ESCAPE_NUM, _ESCAPE_DEN = 1, 2
_REENTER_NUM, _REENTER_DEN = 7, 8

#: The ``i & 0xFF == 0`` maintenance period of the scalar loop.
_CADENCE = 256

_LINE_SHIFT = units.CACHE_LINE.bit_length() - 1


def run_trace_batched(rt: "KonaRuntime", addrs: np.ndarray,
                      writes: np.ndarray) -> float:
    """Execute the access stream; returns the accumulated stall ns.

    State-, counter- and latency-identical to the scalar loop,
    including mid-trace exceptions: an out-of-range address raises
    :class:`AddressError` after the preceding accesses have fully
    executed, and back-end failures (e.g. ``NodeFailure``) propagate
    with the cache state at the failing access exported back.
    """
    n = int(addrs.size)
    directory = rt.agent.directory
    front: VectorizedCoherentCache = None
    imported = False
    stall = 0.0
    vf_start, vf_end = rt.vfmem.start, rt.vfmem.end
    tick = rt.obs.tick if rt.obs.sampler is not None else None
    maybe_evict = rt.maybe_evict
    counters = rt.counters
    try:
        pos = 0
        vector_mode = True
        while pos < n:
            hi = min(pos + _CHUNK, n)
            if not vector_mode:
                # Scalar stretch (mode switches land on chunk = cadence
                # boundaries, so maintenance timing is unchanged).
                hits0 = counters["cache_hits"]
                stall = rt._run_trace_scalar(addrs[pos:hi], writes[pos:hi],
                                             stall)
                hits = counters["cache_hits"] - hits0
                vector_mode = (hits * _REENTER_DEN
                               >= (hi - pos) * _REENTER_NUM)
                pos = hi
                continue
            if not imported:
                front = VectorizedCoherentCache.from_scalar(rt.cpu_cache)
                front.attach(directory)
                front.record_mutations = True
                imported = True
            a = np.asarray(addrs[pos:hi]).astype(np.int64, copy=False)
            w = np.ascontiguousarray(writes[pos:hi], dtype=bool)
            ok = (a >= vf_start) & (a < vf_end)
            limit = a.size if ok.all() else int(ok.argmin())
            tags = a >> _LINE_SHIFT
            stall, replayed = _run_span(rt, front, tags[:limit], w[:limit],
                                        pos, stall, maybe_evict, tick)
            if limit < a.size:
                # Same behaviour as the scalar loop: every access before
                # the bad one has executed; the bad one raises.
                raise AddressError(
                    f"{int(a[limit]):#x} is not Kona-managed memory")
            pos = hi
            if replayed * _ESCAPE_DEN > a.size * _ESCAPE_NUM:
                # Mostly scalar replay: too few CPU-cache hits for bulk
                # classification to pay for itself.  Export and run the
                # plain dict-cache loop until the trace turns hot again.
                front.record_mutations = False
                front.export_to(rt.cpu_cache)
                rt.cpu_cache.attach(directory)
                imported = False
                vector_mode = False
    finally:
        if imported:
            front.record_mutations = False
            front.export_to(rt.cpu_cache)
            rt.cpu_cache.attach(directory)
    return stall


def _run_span(rt: "KonaRuntime", front: VectorizedCoherentCache,
              tags: np.ndarray, w: np.ndarray, g_base: int, stall: float,
              maybe_evict, tick) -> Tuple[float, int]:
    """Run one chunk, segmented at the maintenance cadence.

    The scalar loop runs ``maybe_evict``/``obs.tick`` *after* access
    ``i`` whenever ``i % 256 == 0``, so each segment extends through
    the next cadence index and maintenance fires at its end.  Returns
    ``(stall, accesses handled by scalar replay)`` — the second value
    feeds the caller's miss-heavy escape hatch.
    """
    m = int(tags.size)
    local = 0
    replayed = 0
    while local < m:
        g = g_base + local
        cadence = g if g % _CADENCE == 0 else (g // _CADENCE + 1) * _CADENCE
        end = min(cadence - g_base + 1, m)
        stall, seg_replayed = _run_segment(rt, front, tags[local:end],
                                           w[local:end], front._clock + 1,
                                           stall)
        replayed += seg_replayed
        front._clock += end - local
        if (g_base + end - 1) % _CADENCE == 0:
            maybe_evict()
            # Proactive eviction may have snooped lines out of the CPU
            # cache; the next segment reclassifies, so drop the log.
            front._mutations.clear()
            if tick is not None:
                tick()
        local = end
    return stall, replayed


def _run_segment(rt: "KonaRuntime", front: VectorizedCoherentCache,
                 seg_tags: np.ndarray, seg_w: np.ndarray, age0: int,
                 stall: float) -> Tuple[float, int]:
    """Bulk-resolve pure-hit runs; replay each boundary event.

    Returns ``(stall, accesses handled by scalar replay)``.
    """
    length = int(seg_tags.size)
    pure, resident, flat = front.classify(seg_tags, seg_w)
    if 2 * int(pure.sum()) < length:
        # Miss-heavy segment: the run/patch machinery would pay its
        # numpy overhead on nearly every access for no bulk win, so
        # replay the segment access-by-access against the front-end's
        # tag map — same events, same order, same counters.
        return _replay_segment(rt, front, seg_tags, seg_w, age0,
                               stall), length
    ages = np.arange(age0, age0 + length, dtype=np.int64)
    counters = rt.counters
    agent = rt.agent
    account = rt.account
    tracer = rt.obs.tracer
    hist = rt._stall_hist
    p = 0
    while p < length:
        run = pure[p:]
        # One scan finds the first non-pure access; argmin of an
        # all-True slice is 0, disambiguated by reading the element.
        r = int(run.argmin())
        q = length if run[r] else p + r
        if q > p:
            front.bulk_hits(flat[p:q], seg_w[p:q], ages[p:q])
            counters.add("cache_hits", q - p)
            p = q
            if p >= length:
                break
        tag = int(seg_tags[p])
        line_addr = tag << _LINE_SHIFT
        rem_tags = seg_tags[p + 1:]
        rem_w = seg_w[p + 1:]
        pure_rem = pure[p + 1:]
        res_rem = resident[p + 1:]
        if resident[p]:
            # Resident but not pure: a write to a S/O line (upgrade).
            front.upgrade(line_addr, age0 + p)
            counters.add("cache_hits")
            if front._mutations:
                _patch_mutations(front, rem_tags, rem_w, pure_rem, res_rem)
            sel = rem_tags == tag
            if sel.any():
                res_rem[sel] = True
                pure_rem[sel] = True
        else:
            victim_tag, code, fill_flat = front.miss_fill(
                line_addr, bool(seg_w[p]), age0 + p)
            cost = agent.last_access_ns
            stall += cost
            account.charge("memory_stall", cost)
            counters.add("cache_misses")
            if tracer.enabled:
                hist.observe(cost)
            # Patch in event order: the victim left, then any lines the
            # fill's side effects invalidated, then the line arrived.
            if victim_tag is not None:
                sel = rem_tags == victim_tag
                if sel.any():
                    pure_rem[sel] = False
                    res_rem[sel] = False
            if front._mutations:
                _patch_mutations(front, rem_tags, rem_w, pure_rem, res_rem)
            sel = rem_tags == tag
            if sel.any():
                res_rem[sel] = True
                if _WRITABLE[code]:
                    pure_rem[sel] = True
                else:
                    pure_rem[sel] = ~rem_w[sel]
                flat[p + 1:][sel] = fill_flat
        p += 1
    return stall, 0


#: ``_WRITABLE`` as a Python tuple (state codes I/S/E/O/M) — scalar
#: indexing in the replay loop without numpy scalar boxing.
_WRITABLE_PY = tuple(bool(x) for x in _WRITABLE)


def _replay_segment(rt: "KonaRuntime", front: VectorizedCoherentCache,
                    seg_tags: np.ndarray, seg_w: np.ndarray, age0: int,
                    stall: float) -> float:
    """Scalar replay of one segment against the vectorized front-end.

    Functionally identical to the run/patch path (``front``'s scalar
    methods mirror ``CoherentCache.access`` exactly); chosen when a
    segment classifies as mostly misses.  Counters are accumulated and
    added once — totals, not call counts, are what the scalar path's
    counters hold.
    """
    counters = rt.counters
    agent = rt.agent
    account = rt.account
    tracer = rt.obs.tracer
    hist = rt._stall_hist
    tag_map = front._tag_map
    state_f = front._state_f
    age_f = front._age_f
    hits = 0
    misses = 0
    age = age0 - 1
    for tag, isw in zip(seg_tags.tolist(), seg_w.tolist()):
        age += 1
        flat = tag_map.get(tag, -1)
        if flat >= 0:
            if not isw or _WRITABLE_PY[state_f[flat]]:
                if isw:
                    state_f[flat] = MODIFIED
                age_f[flat] = age
                hits += 1
                continue
            front.upgrade(tag << _LINE_SHIFT, age)
            counters.add("cache_hits")
            continue
        front.miss_fill(tag << _LINE_SHIFT, isw, age)
        cost = agent.last_access_ns
        stall += cost
        account.charge("memory_stall", cost)
        misses += 1
        if tracer.enabled:
            hist.observe(cost)
    if hits:
        front.counters.add("hits", hits)
        counters.add("cache_hits", hits)
    if misses:
        counters.add("cache_misses", misses)
    # Nothing to patch in this mode; drop any snoop journal entries so
    # they don't leak into the next (reclassified) segment.
    front._mutations.clear()
    return stall


def _patch_mutations(front: VectorizedCoherentCache, rem_tags: np.ndarray,
                     rem_w: np.ndarray, pure_rem: np.ndarray,
                     res_rem: np.ndarray) -> None:
    """Fold directory-initiated mutations into the remaining masks."""
    for kind, mtag in front.take_mutations():
        sel = rem_tags == mtag
        if not sel.any():
            continue
        if kind == INVALIDATED:
            pure_rem[sel] = False
            res_rem[sel] = False
        else:
            assert kind == DOWNGRADED
            # Still resident, no longer writable.
            pure_rem[sel] = ~rem_w[sel]
