"""The batched ``run_trace`` engine: bulk hits, replayed events.

``KonaRuntime.run_trace`` used to execute one Python call chain per
access (``runtime.access`` -> ``CoherentCache.access`` -> directory ->
``MemoryAgent``).  On paper-scale traces almost every access is a pure
CPU-cache hit that touches nothing below the cache, so this engine
splits the stream:

* a vectorized front-end (:class:`VectorizedCoherentCache`, an ndarray
  mirror of the CPU coherent cache) classifies each span of accesses
  and resolves runs of *pure hits* — resident lines, writable when
  written — in single numpy operations;
* everything else (misses, S->M upgrades) is a *compressed event
  stream* replayed one at a time, in program order, through the exact
  same directory/MemoryAgent/FMem/eviction back-end the scalar path
  uses — so directory traffic, FMem fills, dirty-bitmap marks,
  eviction-handler work and the accumulated stall are bit-identical.

Pure hits never change another line's residency or writability, so a
classification stays valid up to the first non-pure access.  After
each replayed event the front-end's hit masks are *patched* instead of
recomputed: the evicted victim and any lines the directory invalidated
mid-fill (FMem page evictions snoop every line of the victim page)
become misses; the filled or upgraded line becomes a hit.  The
256-access ``maybe_evict``/sampler-tick cadence is preserved by ending
every span at a cadence point, and the trace is consumed in bounded
chunks (no whole-trace ``tolist`` materialization).

The scalar loop remains in :meth:`KonaRuntime.run_trace` as the
differential-test oracle (``engine="scalar"``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from ..cache.replacement import LRUPolicy
from ..coherence.directory import DirectoryEntry
from ..coherence.states import LineState
from ..coherence.vectorized import (DOWNGRADED, EXCLUSIVE, INVALID,
                                    INVALIDATED, MODIFIED, OWNED, SHARED,
                                    _EMPTY, _WRITABLE,
                                    VectorizedCoherentCache)
from ..common import units
from ..common.errors import AddressError

if TYPE_CHECKING:
    from .runtime import KonaRuntime

#: Trace chunk size; a multiple of the 256-access maintenance cadence.
#: Also the granularity of engine-mode adaptation, so it is kept small
#: enough that a cold trace stops paying vectorization overhead quickly.
_CHUNK = 1 << 14

# Mode hysteresis (defaults: leave vectorized mode when more than
# half of a chunk fell back to scalar replay; come back only after a
# scalar chunk ran at >= 7/8 CPU-cache hits) lives in ``KonaConfig``:
# ``batch_escape_density`` / ``batch_reenter_hits``, with
# ``miss_replay_density`` gating per-segment replay.  The gap keeps a
# ~50%-hit trace from oscillating (every switch re-imports or
# re-exports the cache).  Escape is only consulted when the fused miss
# lane is unavailable — with the lane, replayed misses are cheaper
# than the dict-cache loop, so the engine never escapes (see
# :class:`_FusedLane`).

#: The ``i & 0xFF == 0`` maintenance period of the scalar loop.
_CADENCE = 256

#: Block size for the run/patch boundary scan: big enough that a
#: nearly-pure span crosses it in a handful of argmin calls, small
#: enough that an event-dense span does not rescan a long tail.
_SCAN_BLOCK = 1024

_LINE_SHIFT = units.CACHE_LINE.bit_length() - 1

#: Stand-in for a disabled per-page residency index (see
#: ``_FusedLane.pageres``): its ``.get`` always misses, so the replay
#: loops' append sites need no extra flag test.  Never written.
_NO_PAGERES: dict = {}

_S_INVALID = LineState.INVALID
_S_SHARED = LineState.SHARED
_S_EXCLUSIVE = LineState.EXCLUSIVE
_S_OWNED = LineState.OWNED
_S_MODIFIED = LineState.MODIFIED


class _FusedLane:
    """Engine-private bulk miss-resolution pipeline.

    The replayed miss path used to walk the full scalar call chain —
    ``front.miss_fill`` -> ``Directory.put/get`` -> ``CoherenceEvent``
    -> ``MemoryAgent._on_event`` -> ``FMemCache.touch`` — per miss.
    Every step is observationally tiny (a dict transition, a counter,
    a latency constant) but each costs a Python frame, so miss-heavy
    traces ran at dict-cache speed and the batched engine regressed on
    them.

    This lane fuses the chain.  It is *only* legal on the topology the
    runtime itself builds — exactly one caching agent (the CPU cache)
    and exactly one directory observer (the memory agent), with
    tracing off and no content shadow — which makes every directory
    transition provable in closed form:

    * a front-cache **miss** always finds the line's entry INVALID
      (cache evictions put the line back first), so GetS grants E
      (protocols with an E state) or S, and GetM grants M with a FILL;
    * a front-cache **victim** always collapses its entry to INVALID
      (no other agent can hold a copy);
    * a resident **write upgrade** moves an S/O entry to M with no
      invalidations.

    Anything that falls outside those proofs (a directory entry in an
    unexpected state, e.g. after a mid-fill snoop race) falls back to
    the generic ``front.miss_fill``/``front.upgrade`` path for that one
    access, so behaviour — including raised errors — stays identical
    to the scalar oracle.

    **Ordering contract.**  Program order is preserved per access: the
    victim's Put precedes the fill's Get, FMem allocation happens only
    after the remote location resolves (a failed fetch must not leave
    a dataless page resident), page-eviction drains run at the exact
    point ``FMemCache.touch`` would have reported the victim, and the
    stall accumulator receives each miss's cost in program order (float
    addition is non-associative; the scalar and batched engines share
    one summation chain, so ``elapsed_ns`` is bit-identical).  Account
    buckets with fractional increments (``remote_fetch``,
    ``fill_background``, ``memory_stall``) are likewise charged
    per miss; the ``fmem_hit`` bucket only ever accrues the
    integer-valued ``fmem_ns`` constant, so it is the one float the
    lane batches (`count * fmem_ns` is exact for integers below 2**53).

    **Batched bookkeeping.**  Integer counters are accumulated in the
    lane and flushed before every maintenance tick (gauges read them),
    before any page-eviction drain or prefetch (``clear_page`` consumes
    bitmap marks), and in the engine's ``finally`` (so a mid-trace
    ``NodeFailure`` leaves counter state identical to the scalar run).
    Dirty-victim bitmap marks are buffered and flushed through
    ``DirtyBitmap.mark_lines`` under the same rules.
    """

    __slots__ = (
        "rt", "front", "agent", "directory", "entries", "marks", "cap",
        "fm_cache", "fm_lines", "fm_policies", "fm_stats", "fm_ways",
        "fm_set_mask", "page_size", "tag_page_shift", "bitmap",
        "account", "locate", "node_memo", "fabric_down", "extra_delays",
        "failures", "read_base",
        "remote_read_ns", "prefetch", "eager", "aid", "coh_ns",
        "fmem_ns", "fmem_ns_exact", "fill_bg_ns", "has_remainder",
        "has_excl", "snoop_ns", "last_page",
        "pageres", "pend", "p_dead", "p_lines", "p_writes",
        "miss_mode", "miss_gate",
        "d_cache_hits", "d_cache_misses", "d_front_hits",
        "d_front_misses", "d_front_evictions", "d_front_upgrades",
        "d_get_s", "d_get_m", "d_put_m", "d_put_clean", "d_fmem_hits",
        "d_remote", "d_writebacks", "d_upgrades_seen", "d_fm_hits",
        "d_fm_fills", "d_fm_evictions", "d_stat_hits", "d_stat_misses",
        "d_stat_evictions", "d_stat_dirty", "n_fmem_charges",
        "d_snoops", "d_lines_snooped", "d_ext_inval", "d_pages_evicted",
    )

    def __init__(self, rt: "KonaRuntime",
                 front: VectorizedCoherentCache) -> None:
        agent = rt.agent
        fc = agent.fmem._cache
        latency = agent.latency
        self.rt = rt
        self.front = front
        self.agent = agent
        # Causal capture sink (None when off).  The lane records at its
        # inlined fill sites; generic detours route through the real
        # MemoryAgent, which records for itself — mutually exclusive by
        # construction, so no fault is recorded twice.
        self.cap = rt._capture
        self.directory = agent.directory
        self.entries = self.directory._entries
        self.fm_cache = fc
        self.fm_lines = fc._lines
        self.fm_policies = fc._policies
        self.fm_stats = fc.stats
        self.fm_ways = fc.ways
        self.fm_set_mask = fc.num_sets - 1
        self.page_size = agent.fmem.page_size
        # page size is a power of two (FMemCache enforces it), so
        # line-tag -> page-tag is a shift.
        self.tag_page_shift = self.page_size.bit_length() - 1 - _LINE_SHIFT
        self.bitmap = agent.bitmap
        # The fill-path buckets (fmem_hit / remote_fetch /
        # fill_background) live on the *agent's* account, not the
        # runtime's — memory_stall is the caller's bucket.
        self.account = agent.account
        self.locate = agent._locate
        self.remote_read_ns = agent._remote_read_ns
        # Fetch-path memos, valid only while the rack is healthy (live
        # references: chaos mutates these sets/dicts in place at ticks,
        # between replay segments).  While ``fabric._down`` is empty and
        # replication is off, ``locate(line)`` is pure and only the
        # target *node* is consumed — and slab primaries cannot move
        # (``rebind`` is replication-only) — so page -> node caches the
        # whole resolve chain.  Likewise with no injected link delays
        # the line-read cost is one latency-model constant.
        self.node_memo: dict = {}
        self.fabric_down = rt.fabric._down
        self.extra_delays = rt.fabric._extra_delay_ns
        self.failures = rt.failures
        self.read_base = latency.rdma_transfer_ns(
            units.CACHE_LINE, linked=True, signaled=False)
        self.prefetch = (agent._maybe_prefetch
                         if agent._prefetcher is not None else None)
        self.eager = agent.config.eager_upgrade_tracking
        self.aid = front.agent_id
        self.coh_ns = latency.coherence_msg_ns
        self.snoop_ns = latency.snoop_ns
        self.fmem_ns = latency.fmem_ns
        self.fmem_ns_exact = float(latency.fmem_ns).is_integer()
        remainder = max(agent.config.fetch_block - units.CACHE_LINE, 0)
        self.has_remainder = remainder > 0
        self.fill_bg_ns = latency.rdma_per_byte_ns * remainder
        self.has_excl = front.protocol.has_exclusive
        # MRU memo: the FMem page the previous fill touched.  While a
        # page is the MRU of its set, ``LRUPolicy.touch`` is a no-op,
        # so consecutive fills from the same page can skip the probe
        # and the touch call entirely.  Reset whenever FMem changes
        # under the lane's feet (generic detours, prefetch inserts) or
        # the memoed page itself is drained.
        self.last_page = -1
        # Per-page front-residency index: page tag -> list of line
        # tags the lane filled while the page was FMem-resident, or
        # None for pages whose fill set is unknown (resident before
        # the lane existed, or touched by a generic detour).  A page
        # drain walks its (short) list through the live tag map
        # instead of stripe-scanning the whole tag array; unknown
        # pages keep the stripe scan.  Lists may carry stale or
        # duplicate tags (victim evictions don't consult this index) —
        # the tag-map probe filters both.  Disabled entirely under a
        # prefetcher, whose fills this bookkeeping cannot see.
        if self.prefetch is None:
            pageres: Optional[dict] = {}
            for fm_lines in self.fm_lines:
                for resident_page in fm_lines:
                    pageres[resident_page] = None
            self.pageres = pageres
        else:
            self.pageres = None
        # Coalesced-replay deferral state (see replay_coalesced):
        # pending grants by tag, their (line, write) stream in seq
        # order, and grants revoked again before the segment commit.
        self.pend: set = set()
        self.p_dead: list = []
        self.p_lines: list = []
        self.p_writes: list = []
        # Sticky miss mode: set by replay_coalesced when a segment ran
        # at effectively zero hits, letting the span driver skip
        # classification until the hit fraction recovers.
        self.miss_mode = False
        self.miss_gate = 1.0 - rt.config.miss_replay_density
        self.marks: list = []
        self.d_cache_hits = 0
        self.d_cache_misses = 0
        self.d_front_hits = 0
        self.d_front_misses = 0
        self.d_front_evictions = 0
        self.d_front_upgrades = 0
        self.d_get_s = 0
        self.d_get_m = 0
        self.d_put_m = 0
        self.d_put_clean = 0
        self.d_fmem_hits = 0
        self.d_remote = 0
        self.d_writebacks = 0
        self.d_upgrades_seen = 0
        self.d_fm_hits = 0
        self.d_fm_fills = 0
        self.d_fm_evictions = 0
        self.d_stat_hits = 0
        self.d_stat_misses = 0
        self.d_stat_evictions = 0
        self.d_stat_dirty = 0
        self.n_fmem_charges = 0
        self.d_snoops = 0
        self.d_lines_snooped = 0
        self.d_ext_inval = 0
        self.d_pages_evicted = 0

    @staticmethod
    def eligible(rt: "KonaRuntime") -> bool:
        """True when the fused single-agent proofs hold for ``rt``.

        Tracing runs use the generic replay path (span/histogram hooks
        fire per event there); extra observers or caching agents mean
        directory transitions are no longer closed-form.
        """
        directory = rt.agent.directory
        return (rt.content is None
                and not rt.obs.tracer.enabled
                and directory._observers == [rt.agent._on_event]
                and set(directory._agents) == {rt.cpu_cache.agent_id})

    # -- access resolution ----------------------------------------------------

    def miss(self, tag: int, is_write: bool, age: int
             ) -> Tuple[Optional[int], int, int, float]:
        """One CPU-cache miss, fully fused.

        Returns ``(victim_tag_or_None, new_state_code, flat_slot,
        critical_cost_ns)`` — the first three match
        ``VectorizedCoherentCache.miss_fill`` so the run/patch caller
        can patch its hit masks.
        """
        front = self.front
        line = tag << _LINE_SHIFT
        entry = self.entries.get(line)
        if entry is None:
            entry = DirectoryEntry()
            self.entries[line] = entry
        elif entry.state is not _S_INVALID:
            # Outside the single-agent proof (e.g. a mid-fill snoop
            # race left residue): take the generic path for this miss.
            return self._miss_generic(line, is_write, age)
        sidx = tag & front._set_mask
        base = sidx * front.ways
        tags_f = front._tags_f
        state_f = front._state_f
        age_f = front._age_f
        self.d_front_misses += 1
        victim_tag: Optional[int] = None
        if front._counts[sidx] >= front.ways:
            flat = base + int(age_f[base:base + front.ways].argmin())
            victim_tag = int(tags_f[flat])
            victim_dirty = int(state_f[flat]) >= OWNED
            tags_f[flat] = _EMPTY
            state_f[flat] = INVALID
            age_f[flat] = 0
            del front._tag_map[victim_tag]
            self.d_front_evictions += 1
            victim_addr = victim_tag << _LINE_SHIFT
            ventry = self.entries.get(victim_addr)
            if victim_dirty:
                if (ventry is not None and ventry.owner == self.aid
                        and ventry.state is not _S_INVALID
                        and ventry.state is not _S_SHARED
                        and not (ventry.sharers - {self.aid})):
                    ventry.state = _S_INVALID
                    ventry.owner = None
                    ventry.sharers.clear()
                    self.d_put_m += 1
                    self.d_writebacks += 1
                    self.marks.append(victim_addr)
                else:
                    # Unexpected entry: the real PutM validates (and
                    # raises) exactly like the scalar path would.
                    self.directory.put_modified(victim_addr, self.aid)
            else:
                if (ventry is not None
                        and ventry.owner in (None, self.aid)
                        and not (ventry.sharers - {self.aid})):
                    ventry.state = _S_INVALID
                    ventry.owner = None
                    ventry.sharers.clear()
                    self.d_put_clean += 1
                else:
                    self.directory.put_clean(victim_addr, self.aid)
        else:
            flat = base + int(
                (state_f[base:base + front.ways] == INVALID).argmax())
            front._counts[sidx] += 1
        # Directory Get: the entry is INVALID, so the grant is closed
        # form.  The transition lands before the fill is served, like
        # the scalar path (a snoop during the fill sees the new state).
        if is_write:
            self.d_get_m += 1
            entry.state = _S_MODIFIED
            entry.owner = self.aid
            entry.sharers = {self.aid}
            code = MODIFIED
        else:
            self.d_get_s += 1
            if self.has_excl:
                entry.state = _S_EXCLUSIVE
                entry.owner = self.aid
                entry.sharers = {self.aid}
                code = EXCLUSIVE
            else:
                entry.state = _S_SHARED
                entry.owner = None
                entry.sharers = {self.aid}
                code = SHARED
        cost = self._serve_fill(line)
        self.agent._last_access_ns = cost
        # Insert only after the fill completed, mirroring miss_fill:
        # a snoop landing mid-fill finds the line absent.
        tags_f[flat] = tag
        state_f[flat] = code
        age_f[flat] = age
        front._tag_map[tag] = flat
        return victim_tag, code, flat, cost

    def _miss_generic(self, line: int, is_write: bool, age: int
                      ) -> Tuple[Optional[int], int, int, float]:
        self.flush()
        self.last_page = -1   # the generic fill moves FMem under us
        if self.pageres is not None:
            # The generic fill lands a front line this bookkeeping
            # cannot see; stripe-scan the page on its next drain.
            self.pageres[line // self.page_size] = None
        victim_tag, code, flat = self.front.miss_fill(line, is_write, age)
        return victim_tag, code, flat, self.agent._last_access_ns

    def upgrade(self, tag: int, age: int) -> None:
        """Write hit on a resident non-writable line (S/O -> M), fused."""
        line = tag << _LINE_SHIFT
        entry = self.entries.get(line)
        if (entry is None
                or (entry.state is not _S_SHARED
                    and entry.state is not _S_OWNED)
                or (entry.owner is not None and entry.owner != self.aid)
                or entry.sharers - {self.aid}):
            # e.g. the entry went INVALID in a mid-fill snoop race: the
            # generic upgrade routes through GetM, which may re-fill and
            # so drain a page — flush pending marks/deltas first.
            self.flush()
            self.last_page = -1   # a re-fill moves FMem under us
            self.front.upgrade(line, age)
            return
        self.d_get_m += 1
        entry.state = _S_MODIFIED
        entry.owner = self.aid
        entry.sharers = {self.aid}
        # UPGRADE event, fused: eager dirty tracking + latency constant.
        if self.eager:
            self.marks.append(line)
        self.d_upgrades_seen += 1
        self.agent._last_access_ns = self.coh_ns
        front = self.front
        flat = front._tag_map[tag]
        front._state_f[flat] = MODIFIED
        front._age_f[flat] = age
        self.d_front_upgrades += 1

    def _serve_fill(self, line: int) -> float:
        """Fused ``MemoryAgent._serve_fill``: FMem hit or remote fetch."""
        page_tag = line // self.page_size
        fm_sidx = page_tag & self.fm_set_mask
        fm_lines = self.fm_lines[fm_sidx]
        if page_tag in fm_lines:
            self.d_stat_hits += 1
            if self.pageres is not None:
                residents = self.pageres.get(page_tag)
                if residents is not None:
                    residents.append(line >> _LINE_SHIFT)
            if page_tag != self.last_page:
                self.fm_policies[fm_sidx].touch(page_tag)
                self.last_page = page_tag
            self.d_fm_hits += 1
            self.d_fmem_hits += 1
            cost = self.fmem_ns
            if self.fmem_ns_exact:
                self.n_fmem_charges += 1
            else:
                self.account.charge("fmem_hit", cost)
            if self.cap is not None:
                self.cap.record(self.cap.seq, line, None, 0,
                                0.0, 0.0, cost)
            if self.prefetch is not None:
                if self.marks:
                    self._flush_marks()
                self.prefetch(line)
                self.last_page = -1   # prefetch fills may reorder the LRU
            return cost
        # FMem miss: resolve the remote location *before* allocating a
        # frame, so a failed fetch cannot leave a dataless page
        # resident (same ordering as the scalar agent).
        self.d_remote += 1
        location = self.locate(line)
        self.d_stat_misses += 1
        self.d_fm_fills += 1
        policy = self.fm_policies[fm_sidx]
        victim_page: Optional[int] = None
        if len(fm_lines) >= self.fm_ways:
            victim_page = policy.evict()
            if fm_lines.pop(victim_page):
                self.d_stat_dirty += 1
            self.d_stat_evictions += 1
            self.d_fm_evictions += 1
        else:
            self.fm_cache._occupied += 1
        fm_lines[page_tag] = False
        policy.insert(page_tag)
        if self.pageres is not None:
            self.pageres[page_tag] = [line >> _LINE_SHIFT]
        if victim_page is not None:
            self.drain_page(victim_page)
        read_ns = self.remote_read_ns(location.node, units.CACHE_LINE)
        cost = self.coh_ns + read_ns
        if self.has_remainder:
            self.account.charge("fill_background", self.fill_bg_ns)
        self.account.charge("remote_fetch", cost)
        if self.cap is not None:
            self.cap.record(self.cap.seq, line, location.node, 1,
                            self.coh_ns, read_ns, 0.0)
        self.last_page = page_tag   # just inserted: the set's MRU
        if self.prefetch is not None:
            if self.marks:
                self._flush_marks()
            self.prefetch(line)
            self.last_page = -1   # prefetch fills may reorder the LRU
        return cost

    def replay(self, seg_tags: np.ndarray, seg_w: np.ndarray, age0: int,
               stall: float, seq0: int = 0) -> float:
        """Fused scalar replay of one miss-heavy segment.

        The loop inlines :meth:`miss` and :meth:`_serve_fill` with every
        binding hoisted to a local — on miss-dominated traces the lane's
        per-miss attribute loads and call frames were the largest
        remaining cost.  Event order, float summation order and raised
        errors are identical to the method path; integer deltas
        accumulate in locals and fold into the lane (in a ``finally``,
        so a mid-loop ``NodeFailure`` leaves totals scalar-exact).
        """
        front = self.front
        tag_map = front._tag_map
        tm_get = tag_map.get
        tags_f = front._tags_f
        state_f = front._state_f
        age_f = front._age_f
        counts = front._counts
        ways = front.ways
        set_mask = front._set_mask
        entries = self.entries
        aid = self.aid
        aid_set = {aid}
        has_excl = self.has_excl
        agent = self.agent
        acct = self.account._buckets
        stall_b = self.rt.account._buckets
        fm_all = self.fm_lines
        fm_policies = self.fm_policies
        fm_set_mask = self.fm_set_mask
        fm_ways = self.fm_ways
        fm_cache = self.fm_cache
        # Homogeneous policies (FMemCache builds one kind): inline the
        # LRU move-to-back on the hit path, skip the method call.
        fm_lru = isinstance(fm_policies[0], LRUPolicy)
        ent_get = entries.get
        tag_page_shift = self.tag_page_shift
        last_page = self.last_page
        marks = self.marks
        coh_ns = self.coh_ns
        fmem_ns = self.fmem_ns
        fmem_exact = self.fmem_ns_exact
        prefetch = self.prefetch
        locate = self.locate
        remote_read_ns = self.remote_read_ns
        has_remainder = self.has_remainder
        fill_bg = self.fill_bg_ns
        line_bytes = units.CACHE_LINE
        # Health is re-examined per segment: chaos flips it at ticks,
        # which land exactly on segment boundaries.  A stale memo can
        # only survive a failure episode, so drop it when one starts.
        fast_locate = (not self.fabric_down
                       and self.failures.replication is None)
        if not fast_locate:
            self.node_memo.clear()
        node_memo = self.node_memo
        nm_get = node_memo.get
        fast_net = not self.extra_delays
        read_base = self.read_base
        cap = self.cap
        pageres = self.pageres
        # With no pageres index, an empty dict's .get makes the hit
        # branches' residency appends vanish without a per-miss flag.
        pr_get = pageres.get if pageres is not None else _NO_PAGERES.get
        # Global access ordinal of the access aged ``age``: faults are
        # keyed by sequence number so streamed/sharded captures line up.
        seq_off = seq0 - age0
        hits = 0
        misses = 0
        upgrades = 0
        l_front_misses = 0
        l_front_evictions = 0
        l_get_s = l_get_m = l_put_m = l_put_clean = 0
        l_fmem_hits = l_remote = 0
        l_fm_hits = l_fm_fills = l_fm_evictions = 0
        l_stat_hits = l_stat_misses = l_stat_evictions = l_stat_dirty = 0
        l_n_fmem = 0
        age = age0 - 1
        # The snoop journal is only consumed by the hot-span patcher;
        # this mode reclassifies every segment and drops the journal at
        # its end, so recording drain mutations here is pure waste.
        rec_muts = front.record_mutations
        front.record_mutations = False
        try:
            for tag, isw in zip(seg_tags.tolist(), seg_w.tolist()):
                age += 1
                flat = tm_get(tag, -1)
                if flat >= 0:
                    if not isw or _WRITABLE_PY[state_f[flat]]:
                        if isw:
                            state_f[flat] = MODIFIED
                        age_f[flat] = age
                        hits += 1
                        continue
                    if cap is not None:
                        cap.seq = seq_off + age
                    self.upgrade(tag, age)
                    upgrades += 1
                    continue
                line = tag << _LINE_SHIFT
                entry = ent_get(line)
                if entry is None:
                    entry = DirectoryEntry()
                    entries[line] = entry
                elif entry.state is not _S_INVALID:
                    if cap is not None:
                        cap.seq = seq_off + age
                    cost = self._miss_generic(line, isw, age)[3]
                    stall += cost
                    stall_b["memory_stall"] += cost
                    misses += 1
                    continue
                sidx = tag & set_mask
                base = sidx * ways
                l_front_misses += 1
                if counts[sidx] >= ways:
                    flat = base + int(age_f[base:base + ways].argmin())
                    victim_tag = int(tags_f[flat])
                    victim_dirty = int(state_f[flat]) >= OWNED
                    tags_f[flat] = _EMPTY
                    state_f[flat] = INVALID
                    age_f[flat] = 0
                    del tag_map[victim_tag]
                    l_front_evictions += 1
                    victim_addr = victim_tag << _LINE_SHIFT
                    ventry = entries.get(victim_addr)
                    if victim_dirty:
                        if (ventry is not None and ventry.owner == aid
                                and ventry.state is not _S_INVALID
                                and ventry.state is not _S_SHARED
                                and ventry.sharers <= aid_set):
                            ventry.state = _S_INVALID
                            ventry.owner = None
                            ventry.sharers.clear()
                            l_put_m += 1
                            self.d_writebacks += 1
                            marks.append(victim_addr)
                        else:
                            self.directory.put_modified(victim_addr, aid)
                    else:
                        if (ventry is not None
                                and ventry.owner in (None, aid)
                                and ventry.sharers <= aid_set):
                            ventry.state = _S_INVALID
                            ventry.owner = None
                            ventry.sharers.clear()
                            l_put_clean += 1
                        else:
                            self.directory.put_clean(victim_addr, aid)
                else:
                    # Free-way pick: states are uint8 and INVALID == 0,
                    # so memchr (bytes.find) locates the first empty way
                    # without materializing a Python list.
                    flat = base + state_f[base:base + ways].tobytes().find(0)
                    counts[sidx] += 1
                if isw:
                    l_get_m += 1
                    entry.state = _S_MODIFIED
                    entry.owner = aid
                    entry.sharers = {aid}
                    code = MODIFIED
                else:
                    l_get_s += 1
                    if has_excl:
                        entry.state = _S_EXCLUSIVE
                        entry.owner = aid
                        entry.sharers = {aid}
                        code = EXCLUSIVE
                    else:
                        entry.state = _S_SHARED
                        entry.owner = None
                        entry.sharers = {aid}
                        code = SHARED
                # Serve the fill (inlined _serve_fill).
                page_tag = tag >> tag_page_shift
                if page_tag == last_page:
                    # Page is its set's MRU (we made it so on the last
                    # fill and nothing evicted it since): the resident
                    # probe and the LRU touch are both no-op-equivalent.
                    residents = pr_get(page_tag)
                    if residents is not None:
                        residents.append(tag)
                    l_stat_hits += 1
                    l_fm_hits += 1
                    l_fmem_hits += 1
                    cost = fmem_ns
                    if fmem_exact:
                        l_n_fmem += 1
                    else:
                        acct["fmem_hit"] += cost
                    if cap is not None:
                        cap.record(seq_off + age, line, None, 0,
                                   0.0, 0.0, cost)
                elif page_tag in fm_all[fm_sidx := page_tag & fm_set_mask]:
                    residents = pr_get(page_tag)
                    if residents is not None:
                        residents.append(tag)
                    l_stat_hits += 1
                    if fm_lru:
                        order = fm_policies[fm_sidx]._order
                        if order[-1] != page_tag:
                            order.remove(page_tag)
                            order.append(page_tag)
                    else:
                        fm_policies[fm_sidx].touch(page_tag)
                    l_fm_hits += 1
                    l_fmem_hits += 1
                    cost = fmem_ns
                    if fmem_exact:
                        l_n_fmem += 1
                    else:
                        acct["fmem_hit"] += cost
                    if cap is not None:
                        cap.record(seq_off + age, line, None, 0,
                                   0.0, 0.0, cost)
                    last_page = page_tag
                else:
                    l_remote += 1
                    if fast_locate:
                        node = nm_get(page_tag)
                        if node is None:
                            node = locate(line).node
                            node_memo[page_tag] = node
                    else:
                        node = locate(line).node
                    l_stat_misses += 1
                    l_fm_fills += 1
                    fm_sidx = page_tag & fm_set_mask
                    fm_lines = fm_all[fm_sidx]
                    policy = fm_policies[fm_sidx]
                    victim_page = None
                    if len(fm_lines) >= fm_ways:
                        victim_page = policy.evict()
                        if fm_lines.pop(victim_page):
                            l_stat_dirty += 1
                        l_stat_evictions += 1
                        l_fm_evictions += 1
                    else:
                        fm_cache._occupied += 1
                    fm_lines[page_tag] = False
                    policy.insert(page_tag)
                    if pageres is not None:
                        pageres[page_tag] = [tag]
                    if victim_page is not None:
                        self.drain_page(victim_page)
                    read_ns = (read_base if fast_net
                               else remote_read_ns(node, line_bytes))
                    cost = coh_ns + read_ns
                    if has_remainder:
                        acct["fill_background"] += fill_bg
                    acct["remote_fetch"] += cost
                    if cap is not None:
                        cap.record(seq_off + age, line, node, 1,
                                   coh_ns, read_ns, 0.0)
                    last_page = page_tag   # just inserted: the set's MRU
                if prefetch is not None:
                    if marks:
                        self._flush_marks()
                    prefetch(line)
                    last_page = -1   # prefetch fills may reorder the LRU
                agent._last_access_ns = cost
                tags_f[flat] = tag
                state_f[flat] = code
                age_f[flat] = age
                tag_map[tag] = flat
                stall += cost
                stall_b["memory_stall"] += cost
                misses += 1
        finally:
            front.record_mutations = rec_muts
            self.last_page = last_page
            self.d_cache_hits += hits + upgrades
            self.d_cache_misses += misses
            self.d_front_hits += hits
            self.d_front_misses += l_front_misses
            self.d_front_evictions += l_front_evictions
            self.d_get_s += l_get_s
            self.d_get_m += l_get_m
            self.d_put_m += l_put_m
            self.d_put_clean += l_put_clean
            self.d_fmem_hits += l_fmem_hits
            self.d_remote += l_remote
            self.d_fm_hits += l_fm_hits
            self.d_fm_fills += l_fm_fills
            self.d_fm_evictions += l_fm_evictions
            self.d_stat_hits += l_stat_hits
            self.d_stat_misses += l_stat_misses
            self.d_stat_evictions += l_stat_evictions
            self.d_stat_dirty += l_stat_dirty
            self.n_fmem_charges += l_n_fmem
        # Nothing to patch in this mode; drop any snoop journal entries
        # so they don't leak into the next (reclassified) segment.
        front._mutations.clear()
        return stall

    def replay_coalesced(self, seg_tags: np.ndarray, seg_w: np.ndarray,
                         age0: int, stall: float, seq0: int = 0) -> float:
        """Coalesced replay: one directory transaction per page run.

        Misses resolve against the live front-end exactly like
        :meth:`replay`, but the directory grant of each miss is
        *deferred*: the loop records the ``(line, write)`` stream in
        original ``seq`` order and the segment commit
        (:meth:`_commit_pending`) sorts it by page with a stable
        argsort — yielding ``(page, seq)`` keys — and applies each
        page-contiguous run through ``Directory.acquire_page_runs``.
        Per-event stalls, account charges and capture records keep the
        loop's ``seq`` order and the one shared float chain, so
        fingerprints, ``elapsed_ns``, counters and ``FaultLog``
        aggregates are bit-identical to :meth:`replay` (which remains
        the differential oracle).

        Deferral is only legal while no event can observe a missing
        grant, so the segment falls back to per-event replay when:

        * two events touch the same line (an MSI read-then-write pair
          would upgrade against the not-yet-written entry);
        * a prefetcher is attached (its fills race the deferral and
          defeat the per-page residency index);
        * the FMem policy is not the stock LRU (the inlined hit-path
          touch below assumes it).

        Mid-segment events that *would* observe directory state — a
        generic detour on residue, a failed closed-form upgrade proof
        — commit the pending stream first (a commit is legal at any
        point; only the totals are observable).  Front victims and
        page drains that hit a still-pending line revoke the grant at
        commit instead (``p_dead``), charging the same Put counters
        the per-event path would.
        """
        if (self.prefetch is not None
                or not isinstance(self.fm_policies[0], LRUPolicy)):
            self.miss_mode = False
            return self.replay(seg_tags, seg_w, age0, stall, seq0)
        srt = np.sort(seg_tags)
        if srt.size > 1 and bool((srt[1:] == srt[:-1]).any()):
            self.miss_mode = False
            return self.replay(seg_tags, seg_w, age0, stall, seq0)
        front = self.front
        tag_map = front._tag_map
        tm_get = tag_map.get
        tags_f = front._tags_f
        state_f = front._state_f
        age_f = front._age_f
        counts = front._counts
        ways = front.ways
        set_mask = front._set_mask
        entries = self.entries
        aid = self.aid
        aid_set = {aid}
        agent = self.agent
        acct = self.account._buckets
        stall_b = self.rt.account._buckets
        fm_all = self.fm_lines
        fm_policies = self.fm_policies
        fm_set_mask = self.fm_set_mask
        fm_ways = self.fm_ways
        fm_cache = self.fm_cache
        ent_get = entries.get
        tag_page_shift = self.tag_page_shift
        last_page = self.last_page
        marks = self.marks
        coh_ns = self.coh_ns
        fmem_ns = self.fmem_ns
        fmem_exact = self.fmem_ns_exact
        locate = self.locate
        remote_read_ns = self.remote_read_ns
        has_remainder = self.has_remainder
        fill_bg = self.fill_bg_ns
        line_bytes = units.CACHE_LINE
        fast_locate = (not self.fabric_down
                       and self.failures.replication is None)
        if not fast_locate:
            self.node_memo.clear()
        node_memo = self.node_memo
        nm_get = node_memo.get
        fast_net = not self.extra_delays
        read_base = self.read_base
        cap = self.cap
        pageres = self.pageres
        pr_get = pageres.get
        # Capture rows are deferred per segment and emitted in one
        # record_block — legal only while no capture state (health,
        # chaos flags, pending replication outcome) can mutate between
        # the deferred calls, i.e. on a healthy rack; detours flush
        # the rows first because their agent records inline.
        cap_rows = [] if (cap is not None and fast_locate) else None
        excl_code = EXCLUSIVE if self.has_excl else SHARED
        pend = self.pend
        pend_add = pend.add
        p_lines = self.p_lines
        pl_append = p_lines.append
        pw_append = self.p_writes.append
        length = int(seg_tags.size)
        seq_off = seq0 - age0
        # Residency list of the memoed page, so the hot fm-hit branch
        # skips the pageres probe.
        last_res = pr_get(last_page) if last_page >= 0 else None
        # The four per-miss float buckets accumulate in locals — the
        # same addition chain, folded back in one store.  Detours that
        # can charge them (generic upgrade, generic miss) flush first
        # and reseed after, so interleavings stay bit-exact.
        ms = stall_b["memory_stall"]
        a_fmem = acct["fmem_hit"]
        a_rf = acct["remote_fetch"]
        a_fb = acct["fill_background"]
        # Snoop-journal recording is hot-span machinery; this mode
        # drops the journal at segment end, so don't feed it.
        rec_muts = front.record_mutations
        front.record_mutations = False
        hits = 0
        misses = 0
        upgrades = 0
        l_front_misses = 0
        l_front_evictions = 0
        l_put_m = l_put_clean = 0
        l_fmem_hits = l_remote = 0
        l_fm_hits = l_fm_fills = l_fm_evictions = 0
        l_stat_hits = l_stat_misses = l_stat_evictions = l_stat_dirty = 0
        l_n_fmem = 0
        age = age0 - 1
        try:
            for tag, isw in zip(seg_tags.tolist(), seg_w.tolist()):
                age += 1
                flat = tm_get(tag, -1)
                if flat >= 0:
                    if not isw or _WRITABLE_PY[state_f[flat]]:
                        if isw:
                            state_f[flat] = MODIFIED
                        age_f[flat] = age
                        hits += 1
                        continue
                    # Upgrade (S/O -> M).  Distinct tags guarantee the
                    # target is never this segment's own pending grant,
                    # but a failed closed-form proof routes through the
                    # generic GetM, which may re-fill and so drain a
                    # page with deferred grants: commit first.  The
                    # detour's agent also records captures inline, so
                    # deferred rows must land first.
                    if cap_rows:
                        cap.record_block(cap_rows)
                        cap_rows.clear()
                    if p_lines:
                        entry = ent_get(tag << _LINE_SHIFT)
                        if (entry is None
                                or (entry.state is not _S_SHARED
                                    and entry.state is not _S_OWNED)
                                or (entry.owner is not None
                                    and entry.owner != aid)
                                or entry.sharers - aid_set):
                            self._commit_pending()
                    if cap is not None:
                        cap.seq = seq_off + age
                    stall_b["memory_stall"] = ms
                    acct["fmem_hit"] = a_fmem
                    acct["remote_fetch"] = a_rf
                    acct["fill_background"] = a_fb
                    try:
                        self.upgrade(tag, age)
                    finally:
                        ms = stall_b["memory_stall"]
                        a_fmem = acct["fmem_hit"]
                        a_rf = acct["remote_fetch"]
                        a_fb = acct["fill_background"]
                    upgrades += 1
                    continue
                line = tag << _LINE_SHIFT
                entry = ent_get(line)
                if entry is not None and entry.state is not _S_INVALID:
                    # Directory residue: generic path for this miss.
                    # Its fill may drain a page, so pending grants
                    # must be committed (visible to the snoop) and
                    # deferred capture rows emitted before the
                    # detour's own records.
                    if cap_rows:
                        cap.record_block(cap_rows)
                        cap_rows.clear()
                    if cap is not None:
                        cap.seq = seq_off + age
                    if p_lines:
                        self._commit_pending()
                    stall_b["memory_stall"] = ms
                    acct["fmem_hit"] = a_fmem
                    acct["remote_fetch"] = a_rf
                    acct["fill_background"] = a_fb
                    try:
                        cost = self._miss_generic(line, isw, age)[3]
                    finally:
                        ms = stall_b["memory_stall"]
                        a_fmem = acct["fmem_hit"]
                        a_rf = acct["remote_fetch"]
                        a_fb = acct["fill_background"]
                    stall += cost
                    ms += cost
                    misses += 1
                    continue
                sidx = tag & set_mask
                base = sidx * ways
                l_front_misses += 1
                if counts[sidx] >= ways:
                    flat = base + int(age_f[base:base + ways].argmin())
                    victim_tag = int(tags_f[flat])
                    victim_dirty = int(state_f[flat]) >= OWNED
                    tags_f[flat] = _EMPTY
                    state_f[flat] = INVALID
                    age_f[flat] = 0
                    del tag_map[victim_tag]
                    l_front_evictions += 1
                    victim_addr = victim_tag << _LINE_SHIFT
                    if victim_tag in pend:
                        # Granted earlier this segment, dying before
                        # the commit: the deferred grant makes the Put
                        # closed form by construction; revoke at
                        # commit.
                        self.p_dead.append(victim_tag)
                        if victim_dirty:
                            l_put_m += 1
                            self.d_writebacks += 1
                            marks.append(victim_addr)
                        else:
                            l_put_clean += 1
                    else:
                        ventry = entries.get(victim_addr)
                        if victim_dirty:
                            if (ventry is not None and ventry.owner == aid
                                    and ventry.state is not _S_INVALID
                                    and ventry.state is not _S_SHARED
                                    and ventry.sharers <= aid_set):
                                ventry.state = _S_INVALID
                                ventry.owner = None
                                ventry.sharers.clear()
                                l_put_m += 1
                                self.d_writebacks += 1
                                marks.append(victim_addr)
                            else:
                                self.directory.put_modified(victim_addr,
                                                            aid)
                        else:
                            if (ventry is not None
                                    and ventry.owner in (None, aid)
                                    and ventry.sharers <= aid_set):
                                ventry.state = _S_INVALID
                                ventry.owner = None
                                ventry.sharers.clear()
                                l_put_clean += 1
                            else:
                                self.directory.put_clean(victim_addr, aid)
                else:
                    flat = base + state_f[base:base + ways].tobytes().find(0)
                    counts[sidx] += 1
                # Deferred grant: the per-event directory transition
                # and its get_s/get_m charge move to the segment
                # commit; only the granted front-state code is needed
                # now (closed form: the entry is INVALID).
                code = MODIFIED if isw else excl_code
                pend_add(tag)
                pl_append(line)
                pw_append(isw)
                # Serve the fill (inlined _serve_fill).
                page_tag = tag >> tag_page_shift
                if page_tag == last_page:
                    if last_res is not None:
                        last_res.append(tag)
                    l_stat_hits += 1
                    l_fm_hits += 1
                    l_fmem_hits += 1
                    cost = fmem_ns
                    if fmem_exact:
                        l_n_fmem += 1
                    else:
                        a_fmem += cost
                    if cap_rows is not None:
                        cap_rows.append((seq_off + age, line, None, 0,
                                         0.0, 0.0, cost))
                    elif cap is not None:
                        cap.record(seq_off + age, line, None, 0,
                                   0.0, 0.0, cost)
                elif page_tag in fm_all[fm_sidx := page_tag & fm_set_mask]:
                    residents = pr_get(page_tag)
                    if residents is not None:
                        residents.append(tag)
                    l_stat_hits += 1
                    order = fm_policies[fm_sidx]._order
                    if order[-1] != page_tag:
                        order.remove(page_tag)
                        order.append(page_tag)
                    l_fm_hits += 1
                    l_fmem_hits += 1
                    cost = fmem_ns
                    if fmem_exact:
                        l_n_fmem += 1
                    else:
                        a_fmem += cost
                    if cap_rows is not None:
                        cap_rows.append((seq_off + age, line, None, 0,
                                         0.0, 0.0, cost))
                    elif cap is not None:
                        cap.record(seq_off + age, line, None, 0,
                                   0.0, 0.0, cost)
                    last_page = page_tag
                    last_res = residents
                else:
                    l_remote += 1
                    if fast_locate:
                        node = nm_get(page_tag)
                        if node is None:
                            node = locate(line).node
                            node_memo[page_tag] = node
                    else:
                        node = locate(line).node
                    l_stat_misses += 1
                    l_fm_fills += 1
                    fm_sidx = page_tag & fm_set_mask
                    fm_lines = fm_all[fm_sidx]
                    policy = fm_policies[fm_sidx]
                    victim_page = None
                    if len(fm_lines) >= fm_ways:
                        victim_page = policy.evict()
                        if fm_lines.pop(victim_page):
                            l_stat_dirty += 1
                        l_stat_evictions += 1
                        l_fm_evictions += 1
                    else:
                        fm_cache._occupied += 1
                    fm_lines[page_tag] = False
                    policy.insert(page_tag)
                    last_res = [tag]
                    pageres[page_tag] = last_res
                    if victim_page is not None:
                        self.drain_page(victim_page)
                    read_ns = (read_base if fast_net
                               else remote_read_ns(node, line_bytes))
                    cost = coh_ns + read_ns
                    if has_remainder:
                        a_fb += fill_bg
                    a_rf += cost
                    if cap_rows is not None:
                        cap_rows.append((seq_off + age, line, node, 1,
                                         coh_ns, read_ns, 0.0))
                    elif cap is not None:
                        cap.record(seq_off + age, line, node, 1,
                                   coh_ns, read_ns, 0.0)
                    last_page = page_tag   # just inserted: the set's MRU
                agent._last_access_ns = cost
                tags_f[flat] = tag
                state_f[flat] = code
                age_f[flat] = age
                tag_map[tag] = flat
                stall += cost
                ms += cost
                misses += 1
        finally:
            try:
                if cap_rows:
                    cap.record_block(cap_rows)
                    cap_rows.clear()
            finally:
                try:
                    if p_lines:
                        self._commit_pending()
                finally:
                    front.record_mutations = rec_muts
                    stall_b["memory_stall"] = ms
                    acct["fmem_hit"] = a_fmem
                    acct["remote_fetch"] = a_rf
                    acct["fill_background"] = a_fb
                    self.last_page = last_page
                    self.d_cache_hits += hits + upgrades
                    self.d_cache_misses += misses
                    self.d_front_hits += hits
                    self.d_front_misses += l_front_misses
                    self.d_front_evictions += l_front_evictions
                    self.d_put_m += l_put_m
                    self.d_put_clean += l_put_clean
                    self.d_fmem_hits += l_fmem_hits
                    self.d_remote += l_remote
                    self.d_fm_hits += l_fm_hits
                    self.d_fm_fills += l_fm_fills
                    self.d_fm_evictions += l_fm_evictions
                    self.d_stat_hits += l_stat_hits
                    self.d_stat_misses += l_stat_misses
                    self.d_stat_evictions += l_stat_evictions
                    self.d_stat_dirty += l_stat_dirty
                    self.n_fmem_charges += l_n_fmem
                    # Sticky miss mode: skip classification while
                    # segments run at effectively zero hits (any
                    # dispatch choice is result-identical; this one
                    # only saves the classify).
                    self.miss_mode = hits < length * self.miss_gate
        front._mutations.clear()
        return stall

    def _commit_pending(self) -> None:
        """Apply the deferred grant stream of the current segment.

        The ``(line, write)`` stream is kept in original ``seq``
        order; a stable argsort over the page key yields ``(page,
        seq)`` order, whose page-contiguous slices are the page runs
        ``Directory.acquire_page_runs`` consumes — one directory
        transaction per run.  Grants revoked before the commit (front
        victims and page drains inside the segment) are applied and
        then collapsed back to INVALID, leaving the same entry state
        and counter totals as the per-event path.
        """
        lines = self.p_lines
        writes = self.p_writes
        if lines:
            if len(lines) > 1:
                keys = np.fromiter(lines, dtype=np.int64, count=len(lines))
                order = np.argsort(
                    keys >> (self.tag_page_shift + _LINE_SHIFT),
                    kind="stable").tolist()
                lines = [lines[i] for i in order]
                writes = [writes[i] for i in order]
            self.directory.acquire_page_runs(lines, writes, self.aid)
        dead = self.p_dead
        if dead:
            entries = self.entries
            for t in dead:
                entry = entries[t << _LINE_SHIFT]
                entry.state = _S_INVALID
                entry.owner = None
                entry.sharers.clear()
            dead.clear()
        self.p_lines.clear()
        self.p_writes.clear()
        self.pend.clear()

    def drain_page(self, victim_page: int) -> None:
        """Fused ``MemoryAgent._evict_page`` for an FMem victim page.

        The scalar drain (``Directory.snoop_page``) probes all 64 line
        entries one dict lookup at a time; here one gather against the
        front-end's tag array finds the resident lines of the page in
        a single vector compare.  Correctness leans on the single-agent
        invariant the lane already proves: a line is resident in the
        front cache *iff* its directory entry is non-trivial — the one
        exception, the line currently mid-fill, lives on the page being
        filled, which is never the victim page.  SHARED copies are
        clean and survive the snoop (same as the scalar path); E/M/O
        copies are invalidated, dirty ones marking the bitmap before
        ``clear_page`` consumes the page's mask.
        """
        front = self.front
        page_addr = victim_page * self.page_size
        n_lines = self.page_size >> _LINE_SHIFT
        tag0 = page_addr >> _LINE_SHIFT
        self.d_snoops += n_lines
        tag_map = front._tag_map
        tags_f = front._tags_f
        state_f = front._state_f
        age_f = front._age_f
        counts = front._counts
        ways = front.ways
        muts = front._mutations if front.record_mutations else None
        entries = self.entries
        if victim_page == self.last_page:
            self.last_page = -1   # the memoed page is leaving FMem
        residents = (self.pageres.pop(victim_page, None)
                     if self.pageres is not None else None)
        sidx0 = tag0 & front._set_mask
        if residents is not None:
            # Fast path: the lane recorded every fill it made while
            # the page was resident, so probing those few tags against
            # the live tag map replaces the whole-array stripe scan.
            # Stale tags (victim-evicted since) probe to -1; duplicate
            # tags are idempotent (the first visit removes the line,
            # or a SHARED copy is skipped every time).  Drain effects
            # are order-insensitive (set/total semantics), so fill
            # order vs. tag order is unobservable.
            tm_get = tag_map.get
            pairs = []
            for t in residents:
                f = tm_get(t, -1)
                if f >= 0:
                    pairs.append((f, t))
        elif sidx0 + n_lines <= front.num_sets:
            # Consecutive line tags land in consecutive sets, so the
            # page's possible slots are one contiguous stripe of the
            # tag array: a single vector compare finds every resident
            # line (ascending slot order == ascending tag order, the
            # same order the scalar snoop walks).
            row0 = sidx0 * ways
            stripe = tags_f[row0:row0 + n_lines * ways]
            cand = ((stripe >> self.tag_page_shift)
                    == victim_page).nonzero()[0]
            # Line j of the page lives in stripe row j (consecutive
            # tags, consecutive sets), so the resident tag falls out of
            # the stripe offset — no read-back from the tag array.
            pairs = [(row0 + off, tag0 + off // ways)
                     for off in cand.tolist()]
        else:
            # The stripe wraps the set array (rare): probe the map.
            get = tag_map.get
            pairs = [(f, t) for f, t in
                     ((get(t, -1), t)
                      for t in range(tag0, tag0 + n_lines)) if f >= 0]
        snooped = False
        n_inval = 0
        marks = self.marks
        pend = self.pend
        for flat, t in pairs:
            state = state_f[flat]
            if state == SHARED:   # clean copies survive the snoop
                continue
            del tag_map[t]
            tags_f[flat] = _EMPTY
            state_f[flat] = INVALID
            age_f[flat] = 0
            counts[flat // ways] -= 1
            if muts is not None:
                muts.append((INVALIDATED, t))
            line = t << _LINE_SHIFT
            if pend and t in pend:
                # The line's directory grant is still deferred (this
                # segment's coalesced commit): revoke it there instead
                # of touching the not-yet-written entry.
                self.p_dead.append(t)
            else:
                entry = entries[line]
                entry.state = _S_INVALID
                entry.owner = None
                entry.sharers.clear()
            if state >= OWNED:
                marks.append(line)
                self.d_lines_snooped += 1
                snooped = True
            n_inval += 1
        if n_inval:
            self.d_ext_inval += n_inval
        if snooped:
            # The scalar SNOOPED event leaves the snoop latency as the
            # agent's last critical-path cost; mirror it so a drain
            # outside the miss path (watermark reclaim) stays exact.
            self.agent._last_access_ns = self.snoop_ns
        # Pending bitmap marks — earlier dirty victims plus this
        # drain's snooped lines — must land before clear_page consumes
        # the page's mask.
        if self.marks or self.d_writebacks:
            self._flush_marks()
        mask = self.bitmap.clear_page(victim_page)
        self.d_pages_evicted += 1
        for sink in self.agent._eviction_sinks:
            sink(page_addr, mask)

    def drain_page_addr(self, page_addr: int) -> None:
        """Address-keyed :meth:`drain_page` — the ``_evict_page``
        signature, so watermark reclaim can route through the lane."""
        self.drain_page(page_addr // self.page_size)

    # -- delta flushing -------------------------------------------------------

    def _flush_marks(self) -> None:
        self.bitmap.mark_lines(self.marks)
        self.marks.clear()
        if self.d_writebacks:
            self.agent.counters.add("writebacks_tracked",
                                    self.d_writebacks)
            self.d_writebacks = 0

    def flush(self) -> None:
        """Flush every batched delta; idempotent, totals-exact.

        Called before maintenance ticks, around generic-path detours,
        and from the engine's ``finally`` so exceptional exits leave
        the same counter state as the scalar oracle.
        """
        if self.marks or self.d_writebacks:
            self._flush_marks()
        rtc = self.rt.counters
        if self.d_cache_hits:
            rtc.add("cache_hits", self.d_cache_hits)
            self.d_cache_hits = 0
        if self.d_cache_misses:
            rtc.add("cache_misses", self.d_cache_misses)
            self.d_cache_misses = 0
        fc = self.front.counters
        if self.d_front_hits:
            fc.add("hits", self.d_front_hits)
            self.d_front_hits = 0
        if self.d_front_misses:
            fc.add("misses", self.d_front_misses)
            self.d_front_misses = 0
        if self.d_front_evictions:
            fc.add("evictions", self.d_front_evictions)
            self.d_front_evictions = 0
        if self.d_front_upgrades:
            fc.add("upgrades", self.d_front_upgrades)
            self.d_front_upgrades = 0
        dc = self.directory.counters
        if self.d_get_s:
            dc.add("get_s", self.d_get_s)
            self.d_get_s = 0
        if self.d_get_m:
            dc.add("get_m", self.d_get_m)
            self.d_get_m = 0
        if self.d_put_m:
            dc.add("put_m", self.d_put_m)
            self.d_put_m = 0
        if self.d_put_clean:
            dc.add("put_clean", self.d_put_clean)
            self.d_put_clean = 0
        ac = self.agent.counters
        if self.d_fmem_hits:
            ac.add("fmem_hits", self.d_fmem_hits)
            self.d_fmem_hits = 0
        if self.d_remote:
            ac.add("remote_fetches", self.d_remote)
            self.d_remote = 0
        if self.d_upgrades_seen:
            ac.add("upgrades_seen", self.d_upgrades_seen)
            self.d_upgrades_seen = 0
        if self.d_lines_snooped:
            ac.add("lines_snooped", self.d_lines_snooped)
            self.d_lines_snooped = 0
        if self.d_pages_evicted:
            ac.add("pages_evicted", self.d_pages_evicted)
            self.d_pages_evicted = 0
        if self.d_snoops:
            dc.add("snoops", self.d_snoops)
            self.d_snoops = 0
        if self.d_ext_inval:
            fc.add("external_invalidations", self.d_ext_inval)
            self.d_ext_inval = 0
        fmc = self.agent.fmem.counters
        if self.d_fm_hits:
            fmc.add("hits", self.d_fm_hits)
            self.d_fm_hits = 0
        if self.d_fm_fills:
            fmc.add("fills", self.d_fm_fills)
            self.d_fm_fills = 0
        if self.d_fm_evictions:
            fmc.add("evictions", self.d_fm_evictions)
            self.d_fm_evictions = 0
        st = self.fm_stats
        if self.d_stat_hits:
            st.hits += self.d_stat_hits
            self.d_stat_hits = 0
        if self.d_stat_misses:
            st.misses += self.d_stat_misses
            self.d_stat_misses = 0
        if self.d_stat_evictions:
            st.evictions += self.d_stat_evictions
            self.d_stat_evictions = 0
        if self.d_stat_dirty:
            st.dirty_writebacks += self.d_stat_dirty
            self.d_stat_dirty = 0
        if self.n_fmem_charges:
            # Exact: the bucket and fmem_ns are integer-valued, so the
            # batched product equals n sequential additions bit for bit.
            self.account.charge("fmem_hit",
                                self.n_fmem_charges * self.fmem_ns)
            self.n_fmem_charges = 0


def run_trace_batched(rt: "KonaRuntime", addrs: np.ndarray,
                      writes: np.ndarray, base: int = 0,
                      stall: float = 0.0,
                      coalesced: Optional[bool] = None) -> float:
    """Execute the access stream; returns the accumulated stall ns.

    State-, counter- and latency-identical to the scalar loop,
    including mid-trace exceptions: an out-of-range address raises
    :class:`AddressError` after the preceding accesses have fully
    executed, and back-end failures (e.g. ``NodeFailure``) propagate
    with the cache state at the failing access exported back.

    ``base`` rebases every address by a constant offset, applied per
    chunk — streamed columnar traces store region-relative addresses
    and never materialize a rebased copy of the whole trace.  ``stall``
    seeds the accumulator so streamed chunks continue one float
    summation chain (see the ordering contract on :class:`_FusedLane`).
    ``coalesced`` selects page-run grant coalescing for replayed
    segments (None: the ``KonaConfig.coalesced_replay`` default).
    """
    n = int(addrs.size)
    cfg = rt.config
    if coalesced is None:
        coalesced = cfg.coalesced_replay
    # Threshold fractions; at the config defaults every comparison is
    # arithmetically identical to the historical integer forms (the
    # fractions are dyadic and the operands small, so the float
    # products are exact).
    escape_frac = cfg.batch_escape_density
    reenter_frac = cfg.batch_reenter_hits
    miss_gate = 1.0 - cfg.miss_replay_density
    directory = rt.agent.directory
    front: VectorizedCoherentCache = None
    lane: Optional[_FusedLane] = None
    lane_ok = _FusedLane.eligible(rt)
    imported = False
    vf_start, vf_end = rt.vfmem.start, rt.vfmem.end
    tick = rt.obs.tick if rt.obs.sampler is not None else None
    maybe_evict = rt.maybe_evict
    counters = rt.counters
    # Causal capture numbers faults by global access ordinal: ``base``
    # counts accesses completed before this run (streamed chunks), and
    # each span/segment threads its chunk-relative offset down.
    cap = rt._capture
    seq_base = cap.base if cap is not None else 0
    try:
        pos = 0
        vector_mode = True
        while pos < n:
            hi = min(pos + _CHUNK, n)
            if not vector_mode:
                # Scalar stretch (mode switches land on chunk = cadence
                # boundaries, so maintenance timing is unchanged).
                hits0 = counters["cache_hits"]
                if cap is not None:
                    cap.base = seq_base + pos
                stall = rt._run_trace_scalar(addrs[pos:hi], writes[pos:hi],
                                             stall, base=base)
                hits = counters["cache_hits"] - hits0
                vector_mode = hits >= (hi - pos) * reenter_frac
                pos = hi
                continue
            if not imported:
                front = VectorizedCoherentCache.from_scalar(rt.cpu_cache)
                front.attach(directory)
                front.record_mutations = True
                imported = True
                if lane_ok:
                    lane = _FusedLane(rt, front)
            a = np.asarray(addrs[pos:hi]).astype(np.int64, copy=False)
            if base:
                a = a + base
            w = np.ascontiguousarray(writes[pos:hi], dtype=bool)
            ok = (a >= vf_start) & (a < vf_end)
            limit = a.size if ok.all() else int(ok.argmin())
            tags = a >> _LINE_SHIFT
            stall, replayed = _run_span(rt, front, tags[:limit], w[:limit],
                                        pos, stall, maybe_evict, tick, lane,
                                        seq_base + pos, miss_gate, coalesced)
            if limit < a.size:
                # Same behaviour as the scalar loop: every access before
                # the bad one has executed; the bad one raises.
                raise AddressError(
                    f"{int(a[limit]):#x} is not Kona-managed memory")
            pos = hi
            if lane is None and replayed > a.size * escape_frac:
                # No fused lane (tracing, extra agents, content shadow):
                # mostly-scalar replay is slower than the dict-cache
                # loop, so export and run scalar until the trace turns
                # hot again.  With the lane, replayed misses are faster
                # than the dict path and the engine never escapes.
                front.record_mutations = False
                front.export_to(rt.cpu_cache)
                rt.cpu_cache.attach(directory)
                imported = False
                vector_mode = False
        if cap is not None:
            cap.base = seq_base + n
    finally:
        if lane is not None:
            lane.flush()
        if imported:
            front.record_mutations = False
            front.export_to(rt.cpu_cache)
            rt.cpu_cache.attach(directory)
    return stall


def _run_span(rt: "KonaRuntime", front: VectorizedCoherentCache,
              tags: np.ndarray, w: np.ndarray, g_base: int, stall: float,
              maybe_evict, tick,
              lane: Optional[_FusedLane] = None,
              seq0: int = 0, miss_gate: float = 0.5,
              coalesced: bool = False) -> Tuple[float, int]:
    """Run one chunk, segmented at the maintenance cadence.

    The scalar loop runs ``maybe_evict``/``obs.tick`` *after* access
    ``i`` whenever ``i % 256 == 0``, so each segment extends through
    the next cadence index and maintenance fires at its end.  Returns
    ``(stall, accesses handled by scalar replay)`` — the second value
    feeds the caller's miss-heavy escape hatch.
    """
    m = int(tags.size)
    local = 0
    replayed = 0
    hot = False
    if lane is not None and m > _CADENCE and not lane.miss_mode:
        # Hot-span fast path: classify the whole chunk once and keep
        # the masks alive across cadence boundaries — boundary events
        # and maintenance mutations are patched into the remaining
        # span instead of reclassifying every 256-access segment.
        # Only worth it when boundary events are rare (the patches
        # scan the remaining span), hence the 31/32 purity gate.
        pure, resident, flat = front.classify(tags, w)
        hot = 32 * int(pure.sum()) >= 31 * m
        if hot:
            ages = np.arange(front._clock + 1, front._clock + 1 + m,
                             dtype=np.int64)
    while local < m:
        g = g_base + local
        cadence = g if g % _CADENCE == 0 else (g // _CADENCE + 1) * _CADENCE
        end = min(cadence - g_base + 1, m)
        if hot:
            stall = _run_patch(rt, front, tags, w, pure, resident, flat,
                               ages, local, end, stall, lane, seq0)
        else:
            stall, seg_replayed = _run_segment(rt, front, tags[local:end],
                                               w[local:end],
                                               front._clock + 1,
                                               stall, lane, seq0 + local,
                                               miss_gate, coalesced)
            replayed += seg_replayed
        front._clock += end - local
        if (g_base + end - 1) % _CADENCE == 0:
            if lane is not None:
                # Maintenance reads gauges (counters, bitmap, FMem
                # stats); every batched delta must be visible first.
                # Watermark reclaim drains pages through the lane's
                # vectorized snoop instead of the per-line scalar one.
                lane.flush()
                if maybe_evict(evict_page=lane.drain_page_addr):
                    lane.flush()   # reclaim deltas, before the sampler tick
            else:
                maybe_evict()
            if hot and end < m and front._mutations:
                # Proactive eviction may have snooped lines out of the
                # CPU cache; fold the journal into the live span masks.
                _patch_mutations(front, tags[end:], w[end:], pure[end:],
                                 resident[end:])
            else:
                # Cold mode reclassifies the next segment; drop the log.
                front._mutations.clear()
            if tick is not None:
                tick()
        local = end
    return stall, replayed


def _run_segment(rt: "KonaRuntime", front: VectorizedCoherentCache,
                 seg_tags: np.ndarray, seg_w: np.ndarray, age0: int,
                 stall: float,
                 lane: Optional[_FusedLane] = None,
                 seq0: int = 0, miss_gate: float = 0.5,
                 coalesced: bool = False) -> Tuple[float, int]:
    """Bulk-resolve pure-hit runs; replay each boundary event.

    Returns ``(stall, accesses handled by scalar replay)``.
    """
    length = int(seg_tags.size)
    if lane is not None and lane.miss_mode:
        # Sticky miss mode: the previous coalesced segment ran at
        # effectively zero hits, so skip classification entirely;
        # replay_coalesced re-opens the gate as soon as a segment's
        # realized hit fraction crosses it.  Result-identical to the
        # classified dispatch (both paths are bit-exact).
        return lane.replay_coalesced(seg_tags, seg_w, age0, stall,
                                     seq0), length
    pure, resident, flat = front.classify(seg_tags, seg_w)
    if int(pure.sum()) < length * miss_gate:
        # Miss-heavy segment: the run/patch machinery would pay its
        # numpy overhead on nearly every access for no bulk win, so
        # replay the segment access-by-access against the front-end's
        # tag map — same events, same order, same counters.
        if lane is not None:
            if coalesced:
                return lane.replay_coalesced(seg_tags, seg_w, age0,
                                             stall, seq0), length
            return lane.replay(seg_tags, seg_w, age0, stall,
                               seq0), length
        return _replay_segment(rt, front, seg_tags, seg_w, age0,
                               stall, seq0), length
    ages = np.arange(age0, age0 + length, dtype=np.int64)
    return _run_patch(rt, front, seg_tags, seg_w, pure, resident, flat,
                      ages, 0, length, stall, lane, seq0), 0


def _run_patch(rt: "KonaRuntime", front: VectorizedCoherentCache,
               tags: np.ndarray, w: np.ndarray, pure: np.ndarray,
               resident: np.ndarray, flat: np.ndarray, ages: np.ndarray,
               start: int, end: int, stall: float,
               lane: Optional[_FusedLane], seq0: int = 0) -> float:
    """Run/patch ``[start, end)`` of a classified window.

    Bulk-resolves pure-hit runs; each boundary event is dispatched off
    a *live* cache probe rather than the (stale) classification masks.
    Only pure->False facts are patched into the masks — victims and
    snoop mutations, to the end of the arrays, not of ``end``, so a
    hot span reuses one classification across its cadence segments.
    An access whose line *became* resident again after classification
    stays marked non-pure and is simply caught by the probe, which
    keeps per-event cost independent of the span length (the old
    True-direction patches were two full-tail array ops per event).
    """
    counters = rt.counters
    agent = rt.agent
    account = rt.account
    tracer = rt.obs.tracer
    hist = rt._stall_hist
    tm_get = front._tag_map.get
    state_f = front._state_f
    age_f = front._age_f
    cap = rt._capture
    inline_hits = 0
    p = start
    while p < end:
        # First non-pure access at or after p.  Blocked argmin keeps
        # the scan proportional to the distance to the boundary, not
        # to the span tail (bool argmin does not short-circuit).
        q = p
        while q < end:
            stop = q + _SCAN_BLOCK
            blk = pure[q:stop if stop < end else end]
            r = int(blk.argmin())
            if not blk[r]:
                q += r
                break
            q += blk.shape[0]
        if q > p:
            front.bulk_hits(flat[p:q], w[p:q], ages[p:q])
            counters.add("cache_hits", q - p)
            p = q
            if p >= end:
                break
        tag = int(tags[p])
        age = int(ages[p])
        isw = bool(w[p])
        fslot = tm_get(tag, -1)
        if fslot >= 0 and (not isw or _WRITABLE_PY[state_f[fslot]]):
            # A pure hit after all (an earlier event re-filled or
            # upgraded the line): apply it like a bulk_hits singleton.
            if isw:
                state_f[fslot] = MODIFIED
            age_f[fslot] = age
            inline_hits += 1
        elif fslot >= 0:
            # Resident but not writable on a write: upgrade (S/O -> M).
            if cap is not None:
                cap.seq = seq0 + p   # a rare generic re-fill records
            if lane is not None:
                lane.upgrade(tag, age)
                lane.d_cache_hits += 1
            else:
                front.upgrade(tag << _LINE_SHIFT, age)
                counters.add("cache_hits")
            if front._mutations:
                _patch_mutations(front, tags[p + 1:], w[p + 1:],
                                 pure[p + 1:], resident[p + 1:])
        else:
            if cap is not None:
                cap.seq = seq0 + p
            if lane is not None:
                victim_tag, code, fill_flat, cost = lane.miss(
                    tag, isw, age)
                stall += cost
                account.charge("memory_stall", cost)
                lane.d_cache_misses += 1
            else:
                victim_tag, code, fill_flat = front.miss_fill(
                    tag << _LINE_SHIFT, isw, age)
                cost = agent.last_access_ns
                stall += cost
                account.charge("memory_stall", cost)
                counters.add("cache_misses")
                if tracer.enabled:
                    hist.observe(cost)
            # The victim left: any later access still marked as a pure
            # hit on it must fall back to the event path.
            if victim_tag is not None:
                sel = tags[p + 1:] == victim_tag
                if sel.any():
                    pure[p + 1:][sel] = False
                    resident[p + 1:][sel] = False
            if front._mutations:
                _patch_mutations(front, tags[p + 1:], w[p + 1:],
                                 pure[p + 1:], resident[p + 1:])
        p += 1
    if inline_hits:
        front.counters.add("hits", inline_hits)
        counters.add("cache_hits", inline_hits)
    return stall


#: ``_WRITABLE`` as a Python tuple (state codes I/S/E/O/M) — scalar
#: indexing in the replay loop without numpy scalar boxing.
_WRITABLE_PY = tuple(bool(x) for x in _WRITABLE)


def _replay_segment(rt: "KonaRuntime", front: VectorizedCoherentCache,
                    seg_tags: np.ndarray, seg_w: np.ndarray, age0: int,
                    stall: float, seq0: int = 0) -> float:
    """Scalar replay of one segment against the vectorized front-end.

    Functionally identical to the run/patch path (``front``'s scalar
    methods mirror ``CoherentCache.access`` exactly); chosen when a
    segment classifies as mostly misses.  Counters are accumulated and
    added once — totals, not call counts, are what the scalar path's
    counters hold.
    """
    counters = rt.counters
    agent = rt.agent
    account = rt.account
    tracer = rt.obs.tracer
    hist = rt._stall_hist
    tag_map = front._tag_map
    state_f = front._state_f
    age_f = front._age_f
    cap = rt._capture
    seq_off = seq0 - age0
    hits = 0
    misses = 0
    age = age0 - 1
    for tag, isw in zip(seg_tags.tolist(), seg_w.tolist()):
        age += 1
        flat = tag_map.get(tag, -1)
        if flat >= 0:
            if not isw or _WRITABLE_PY[state_f[flat]]:
                if isw:
                    state_f[flat] = MODIFIED
                age_f[flat] = age
                hits += 1
                continue
            if cap is not None:
                cap.seq = seq_off + age
            front.upgrade(tag << _LINE_SHIFT, age)
            counters.add("cache_hits")
            continue
        if cap is not None:
            cap.seq = seq_off + age
        front.miss_fill(tag << _LINE_SHIFT, isw, age)
        cost = agent.last_access_ns
        stall += cost
        account.charge("memory_stall", cost)
        misses += 1
        if tracer.enabled:
            hist.observe(cost)
    if hits:
        front.counters.add("hits", hits)
        counters.add("cache_hits", hits)
    if misses:
        counters.add("cache_misses", misses)
    # Nothing to patch in this mode; drop any snoop journal entries so
    # they don't leak into the next (reclassified) segment.
    front._mutations.clear()
    return stall


def _patch_mutations(front: VectorizedCoherentCache, rem_tags: np.ndarray,
                     rem_w: np.ndarray, pure_rem: np.ndarray,
                     res_rem: np.ndarray) -> None:
    """Fold directory-initiated mutations into the remaining masks."""
    for kind, mtag in front.take_mutations():
        sel = rem_tags == mtag
        if not sel.any():
            continue
        if kind == INVALIDATED:
            pure_rem[sel] = False
            res_rem[sel] = False
        else:
            assert kind == DOWNGRADED
            # Still resident, no longer writable.
            pure_rem[sel] = ~rem_w[sel]
