"""Runtime telemetry: one structured snapshot of a Kona deployment.

Production runtimes live and die by their observability; this module
gathers every counter the components keep into a single report, with a
rendered summary for logs and a dict for dashboards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from .. import units
from ..analysis.report import render_table


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Point-in-time view of a runtime's health and traffic."""

    data: Dict[str, Dict[str, Any]]

    def flat(self) -> Dict[str, Any]:
        """Flatten to dotted keys (for metrics pipelines)."""
        out: Dict[str, Any] = {}
        for section, values in self.data.items():
            for key, value in values.items():
                out[f"{section}.{key}"] = value
        return out

    def render(self) -> str:
        """Human-readable multi-section summary."""
        blocks = []
        for section, values in self.data.items():
            rows = sorted(values.items())
            blocks.append(render_table(["metric", "value"], rows,
                                       title=section))
        return "\n\n".join(blocks)


def snapshot(runtime) -> TelemetrySnapshot:
    """Collect a :class:`TelemetrySnapshot` from a KonaRuntime."""
    fmem = runtime.fmem
    eviction = runtime.eviction.stats
    agent = runtime.agent
    data: Dict[str, Dict[str, Any]] = {
        "memory": {
            "vfmem_bytes": runtime.vfmem.size,
            "fmem_bytes": fmem.capacity,
            "fmem_occupancy": fmem.occupancy,
            "fmem_hit_ratio": round(fmem.hit_ratio, 4),
            "bound_remote_bytes": runtime.resource_manager.bound_bytes,
            "live_alloc_bytes": runtime.alloclib.live_bytes,
        },
        "fetch": {
            "cache_hits": runtime.counters["cache_hits"],
            "cache_misses": runtime.counters["cache_misses"],
            "fmem_hits": agent.counters["fmem_hits"],
            "remote_fetches": agent.counters["remote_fetches"],
            "pages_prefetched": agent.counters["pages_prefetched"],
        },
        "tracking": {
            "writebacks_tracked": agent.counters["writebacks_tracked"],
            "lines_snooped": agent.counters["lines_snooped"],
            "dirty_lines_pending": agent.bitmap.total_dirty_lines(),
        },
        "eviction": {
            "pages_evicted": eviction.pages_evicted,
            "clean_pages": eviction.clean_pages,
            "full_page_writes": eviction.full_page_writes,
            "lines_logged": eviction.lines_logged,
            "dirty_bytes": eviction.dirty_bytes,
            "wire_bytes": eviction.wire_bytes,
            "goodput_mb_s": round(
                eviction.goodput_bytes_per_s() / units.MB, 2)
            if eviction.elapsed_ns > 0 else 0.0,
        },
        "faults": {
            "page_faults": runtime.page_table.counters["faults_missing"],
            "protection_faults":
                runtime.page_table.counters["faults_protection"],
            "replica_failovers":
                runtime.failures.counters["replica_failovers"],
            "degraded_pages": len(runtime.failures.degraded_pages),
        },
        "health": {
            "state": runtime.health.state.name,
            "degradations": runtime.health.counters["degradations"],
            "recoveries": runtime.health.counters["recoveries_completed"],
            "mttr_ns": round(runtime.health.mttr_ns, 1),
            "time_in_degraded_ns": round(
                runtime.health.time_in_degraded_ns, 1),
            "flush_retries": runtime.eviction.counters["flush_retries"],
            "flush_failures": runtime.eviction.counters["flush_failures"],
            "lines_requeued": runtime.eviction.counters["lines_requeued"],
            "lines_redelivered":
                runtime.eviction.counters["lines_redelivered"],
            "parked_records": runtime.eviction.parked_records,
            "backpressure_stalls":
                runtime.eviction.counters["backpressure_stalls"],
            "eviction_failovers":
                runtime.eviction.counters["eviction_failovers"],
        },
        "network": {
            "transfers": runtime.fabric.counters["transfers"],
            "bytes_moved": runtime.fabric.bytes_moved,
            "failed_transfers": runtime.fabric.counters["failed_transfers"],
        },
    }
    return TelemetrySnapshot(data=data)
