"""Runtime telemetry: one structured snapshot of a Kona deployment.

Since the flight recorder landed, this module is a *thin view over the
metrics registry*: :func:`snapshot` asks the runtime's
:class:`~repro.obs.registry.MetricsRegistry` for its gauge sections
(every component metric is registered there as a callable gauge) and
freezes them into a :class:`TelemetrySnapshot`.  The snapshot keeps its
original render/flat API, so dashboards and the chaos fingerprint are
unchanged consumers — they just read through the registry now.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from ..analysis.report import render_table
from ..common.errors import ConfigError


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Point-in-time view of a runtime's health and traffic."""

    data: Dict[str, Dict[str, Any]]

    def flat(self) -> Dict[str, Any]:
        """Flatten to dotted keys (for metrics pipelines).

        Keys come back in deterministic sorted order (section, then
        key), and a dotted-key collision between sections — e.g.
        section ``a.b`` key ``c`` versus section ``a`` key ``b.c`` —
        raises instead of silently overwriting one of the values.
        """
        out: Dict[str, Any] = {}
        for section in sorted(self.data):
            for key in sorted(self.data[section]):
                dotted = f"{section}.{key}"
                if dotted in out:
                    raise ConfigError(
                        f"telemetry key collision on {dotted!r}")
                out[dotted] = self.data[section][key]
        return out

    def render(self) -> str:
        """Human-readable multi-section summary."""
        blocks = []
        for section, values in self.data.items():
            rows = sorted(values.items())
            blocks.append(render_table(["metric", "value"], rows,
                                       title=section))
        return "\n\n".join(blocks)


def snapshot(runtime) -> TelemetrySnapshot:
    """Collect a :class:`TelemetrySnapshot` from a KonaRuntime.

    A thin view: the values are read live from the runtime's metrics
    registry (``runtime.obs.registry``), where every component counter
    and gauge is registered under a ``section.key`` name.
    """
    return TelemetrySnapshot(data=runtime.obs.registry.sections())
