"""Kona: the coherence-based remote-memory runtime (the paper's core)."""

from .alloclib import AllocLib
from .config import KonaConfig
from .eviction import EvictionHandler, EvictionStats
from .failures import (
    FailureManager,
    FallbackMode,
    FetchOutcome,
    MachineCheckException,
)
from .poller import Poller
from .resource_manager import ResourceManager
from .runtime import VFMEM_BASE, KonaRuntime, build_rack
from .telemetry import TelemetrySnapshot, snapshot
from .tracker import DirtyDataTracker, SnapshotDiffTracker

__all__ = [
    "AllocLib",
    "DirtyDataTracker",
    "EvictionHandler",
    "EvictionStats",
    "FailureManager",
    "FallbackMode",
    "FetchOutcome",
    "KonaConfig",
    "KonaRuntime",
    "MachineCheckException",
    "Poller",
    "ResourceManager",
    "SnapshotDiffTracker",
    "TelemetrySnapshot",
    "VFMEM_BASE",
    "build_rack",
    "snapshot",
]
