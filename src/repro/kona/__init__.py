"""Kona: the coherence-based remote-memory runtime (the paper's core)."""

from .alloclib import AllocLib
from .config import KonaConfig
from .eviction import EvictionHandler, EvictionStats, PendingWritebackBuffer
from .failures import (
    FailureManager,
    FallbackMode,
    FetchOutcome,
    MachineCheckException,
)
from .health import HealthMonitor, HealthState, Incident
from .poller import Poller
from .resource_manager import ResourceManager
from .runtime import VFMEM_BASE, KonaRuntime, build_rack
from .telemetry import TelemetrySnapshot, snapshot
from .tracker import DirtyDataTracker, SnapshotDiffTracker

__all__ = [
    "AllocLib",
    "DirtyDataTracker",
    "EvictionHandler",
    "EvictionStats",
    "FailureManager",
    "FallbackMode",
    "FetchOutcome",
    "HealthMonitor",
    "HealthState",
    "Incident",
    "KonaConfig",
    "KonaRuntime",
    "MachineCheckException",
    "PendingWritebackBuffer",
    "Poller",
    "ResourceManager",
    "SnapshotDiffTracker",
    "TelemetrySnapshot",
    "VFMEM_BASE",
    "build_rack",
    "snapshot",
]
