"""Configuration of the Kona runtime."""

from __future__ import annotations

from dataclasses import dataclass

from ..common import units
from ..common.errors import ConfigError
from ..cluster.slab import DEFAULT_SLAB_BYTES


@dataclass(frozen=True)
class KonaConfig:
    """Tunables of a Kona deployment on one compute node.

    The defaults mirror the paper's evaluation setup: 4 KB fetch blocks
    into a 4-way FMem cache, cache-line dirty tracking, asynchronous
    eviction through an aggregated cache-line log.
    """

    # Memory sizing
    fmem_capacity: int = 256 * units.MB     # local DRAM cache for remote data
    vfmem_capacity: int = 1 * units.GB      # fake physical space exposed
    slab_bytes: int = DEFAULT_SLAB_BYTES    # coarse allocation unit
    page_size: int = units.PAGE_4K

    # Fetch path
    fetch_block: int = units.PAGE_4K        # bytes fetched per FMem fill
    fmem_ways: int = 4                      # FMem associativity (section 4.4)
    prefetch_next_page: bool = False
    #: Prefetch policy name ("none", "next-page", "stride", "leap");
    #: overrides prefetch_next_page when set to anything but "none".
    prefetch_policy: str = "none"

    # Eviction path
    evict_high_watermark: float = 0.90      # start evicting above this
    evict_low_watermark: float = 0.75       # stop evicting below this
    log_capacity_records: int = 8192        # CL-log ring size
    rdma_batch_bytes: int = 64 * units.KB   # max log bytes per RDMA write
    full_page_threshold: int = 56           # >= this many dirty lines:
                                            # ship the whole page instead
    replication_factor: int = 1             # replicas written on eviction

    # Durability under faults (section 4.5)
    #: Capacity of the pending-writeback park for dirty lines whose
    #: destination node is unreachable (records, 64 B each).
    pending_writeback_records: int = 8192
    #: Fraction of the park above which eviction signals backpressure.
    writeback_backpressure: float = 0.75
    #: Retry budget for eviction-path RDMA writes.
    retry_max_attempts: int = 4
    #: First backoff after a failed eviction write (doubles per retry).
    retry_base_backoff_ns: float = 4_000.0
    #: Seed of the retry-jitter RNG (campaign determinism).
    retry_seed: int = 0
    #: Total-deadline budget on cumulative retry backoff per call
    #: (0 = unbounded).  Keeps fenced/partitioned replicas from
    #: retrying past the failover window inside a campaign.
    retry_deadline_ns: float = 0.0

    # Replication & failover (memnode failure recovery)
    #: Primaryship lease TTL on the simulated clock.  Promotion after
    #: a primary crash must wait out the dead node's lease, so this is
    #: the floor of the modeled failover unavailability window.
    lease_ttl_ns: float = 50_000.0
    #: Slots re-replicated per background maintenance tick.
    rereplication_slots_per_tick: int = 1

    # Tracking
    eager_upgrade_tracking: bool = False
    #: Coherence protocol family ("msi", "mesi", "moesi").  MSI makes
    #: every first write an explicit upgrade (useful with eager
    #: tracking); MOESI defers writebacks through dirty sharing.
    protocol: str = "mesi"

    # Batched-engine selection (see :mod:`repro.kona.engine`).  The
    # engine adapts between three execution strategies — vectorized
    # bulk hits, per-event replay and the dict-cache scalar loop — and
    # these knobs tune the switchover points per workload.
    #: A classified 256-access segment is replayed access-by-access
    #: (instead of run/patch-resolved) when at least this fraction of
    #: it misses the CPU cache, i.e. when its pure-hit fraction falls
    #: below ``1 - miss_replay_density``.
    miss_replay_density: float = 0.5
    #: Without the fused miss lane (tracing, extra agents, content
    #: shadow), leave vectorized mode when more than this fraction of
    #: a chunk fell back to scalar replay.
    batch_escape_density: float = 0.5
    #: Re-enter vectorized mode only after a scalar chunk ran at at
    #: least this CPU-cache hit fraction.  The gap against
    #: ``batch_escape_density`` is the oscillation hysteresis (every
    #: switch re-imports or re-exports the cache); the same fraction
    #: also re-opens segment classification after a coalesced
    #: all-miss stretch.
    batch_reenter_hits: float = 0.875
    #: Grant replayed misses through one directory transaction per
    #: page run (``engine="batched"`` honors this; the explicit
    #: ``engine="coalesced"`` forces it on).  Results are
    #: bit-identical either way — this is purely a speed knob.
    coalesced_replay: bool = True

    # Resource management
    slab_batch: int = 4                     # slabs pre-allocated per request

    def __post_init__(self) -> None:
        if self.fmem_capacity <= 0 or self.vfmem_capacity <= 0:
            raise ConfigError("memory capacities must be positive")
        if self.vfmem_capacity < self.fmem_capacity:
            raise ConfigError("VFMem must be at least as large as FMem")
        if self.vfmem_capacity % self.slab_bytes:
            raise ConfigError("VFMem capacity must be a multiple of slab size")
        if not 0.0 < self.evict_low_watermark <= self.evict_high_watermark <= 1.0:
            raise ConfigError(
                f"watermarks must satisfy 0 < low <= high <= 1, got "
                f"{self.evict_low_watermark}/{self.evict_high_watermark}")
        if self.replication_factor < 1:
            raise ConfigError("replication factor must be >= 1")
        if not 1 <= self.full_page_threshold <= units.LINES_PER_PAGE:
            raise ConfigError("full_page_threshold must be in [1, 64]")
        if self.slab_batch < 1:
            raise ConfigError("slab_batch must be >= 1")
        if self.page_size % units.PAGE_4K:
            raise ConfigError("page_size must be a 4 KiB multiple")
        if self.fetch_block < units.CACHE_LINE:
            raise ConfigError("fetch_block must be at least one cache line")
        if self.pending_writeback_records < 1:
            raise ConfigError("pending_writeback_records must be >= 1")
        if not 0.0 < self.writeback_backpressure <= 1.0:
            raise ConfigError("writeback_backpressure must be in (0, 1]")
        if self.retry_max_attempts < 1:
            raise ConfigError("retry_max_attempts must be >= 1")
        if self.retry_base_backoff_ns < 0:
            raise ConfigError("retry_base_backoff_ns must be non-negative")
        if self.retry_deadline_ns < 0:
            raise ConfigError("retry_deadline_ns must be non-negative")
        if self.lease_ttl_ns <= 0:
            raise ConfigError("lease_ttl_ns must be positive")
        if self.rereplication_slots_per_tick < 1:
            raise ConfigError("rereplication_slots_per_tick must be >= 1")
        if not 0.0 < self.miss_replay_density <= 1.0:
            raise ConfigError("miss_replay_density must be in (0, 1]")
        if not 0.0 < self.batch_escape_density <= 1.0:
            raise ConfigError("batch_escape_density must be in (0, 1]")
        if not 0.0 <= self.batch_reenter_hits <= 1.0:
            raise ConfigError("batch_reenter_hits must be in [0, 1]")
        if self.protocol not in ("msi", "mesi", "moesi"):
            raise ConfigError(
                f"unknown protocol {self.protocol!r}; "
                f"choose msi, mesi or moesi")
