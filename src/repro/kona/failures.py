"""Failure mitigation (paper section 4.5).

Three failure classes and their Kona-side handling:

1. **Application/compute-host crash** — out of scope for the runtime
   (same blast radius as a monolithic server); nothing to model here.
2. **Network failure or delay** — dangerous because cache-coherence
   protocols are not built for unbounded latency: a stalled remote
   fetch turns into a machine check exception (MCE).  Kona either
   handles the MCE (Intel machine-check architecture) or falls back to
   page-fault mode: mark the affected pages not-present so the next
   access traps to software, which can wait, retry, or report.
3. **Memory-node failure** — survivable with eviction-time replication:
   reads fail over to a replica; lost nodes are repopulated lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import List, Optional, Tuple

from ..common.errors import NodeFailure, ReproError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.stats import Counter
from ..cluster.controller import RackController
from ..fpga.translation import RemoteLocation, RemoteTranslationMap
from ..mem.pagetable import PageTable


class MachineCheckException(ReproError):
    """The coherence protocol timed out waiting for remote data."""


class FallbackMode(Enum):
    """How the runtime reacts to a network timeout."""

    MCE_HANDLER = auto()         # catch the MCE, retry in the handler
    PAGE_FAULT_FALLBACK = auto() # mark pages not-present, trap to software


@dataclass(frozen=True)
class FetchOutcome:
    """Result of a failure-aware remote fetch."""

    location: RemoteLocation
    used_replica: bool
    retries: int
    extra_latency_ns: float


class FailureManager:
    """Implements the fetch-side failure policy."""

    def __init__(self, translation: RemoteTranslationMap,
                 controller: RackController,
                 mode: FallbackMode = FallbackMode.PAGE_FAULT_FALLBACK,
                 page_table: Optional[PageTable] = None,
                 latency: LatencyModel = DEFAULT_LATENCY,
                 coherence_timeout_ns: float = 100_000.0,
                 fabric=None) -> None:
        self.translation = translation
        self.controller = controller
        #: Optional fabric reference: every node failure registers in
        #: ``fabric._down`` (``MemoryNode.fail`` calls ``fail_node``),
        #: so an empty set proves the whole rack healthy and the fetch
        #: path can skip the replica walk.
        self.fabric = fabric
        self.mode = mode
        self.page_table = page_table
        self.latency = latency
        self.coherence_timeout_ns = coherence_timeout_ns
        self.counters = Counter()
        #: Pages degraded to fault-on-access, with the pfn each one had
        #: at degradation time so recovery can restore the real frame.
        self.degraded_pages: List[Tuple[int, int]] = []
        #: Replication manager (set by the runtime when replication is
        #: on): fetches verify stored checksums and read-repair from a
        #: backup on mismatch.
        self.replication = None

    # -- fetch path ----------------------------------------------------------------

    def resolve_for_fetch(self, vfmem_addr: int) -> FetchOutcome:
        """Pick a live location for a fetch, failing over to replicas.

        Raises :class:`MachineCheckException` (MCE mode) or
        :class:`NodeFailure` after page-fault degradation (fallback
        mode) when no replica is reachable.
        """
        fabric = self.fabric
        if fabric is not None and not fabric._down:
            # Healthy rack: the primary is alive by construction, which
            # is exactly what the replica walk below would conclude —
            # skip materializing the replica list on the hot fetch path.
            return FetchOutcome(
                location=self.translation.resolve(vfmem_addr),
                used_replica=False, retries=0, extra_latency_ns=0.0)
        locations = self.translation.resolve_replicas(vfmem_addr)
        retries = 0
        for i, location in enumerate(locations):
            node = self.controller.node(location.node)
            if node.alive:
                if i > 0:
                    self.counters.add("replica_failovers")
                return FetchOutcome(location=location, used_replica=i > 0,
                                    retries=retries,
                                    extra_latency_ns=retries
                                    * self.coherence_timeout_ns)
            retries += 1
            self.counters.add("dead_primaries" if i == 0 else "dead_replicas")
        return self._all_replicas_down(vfmem_addr, retries)

    def verify_fetch(self, vfmem_page_addr: int,
                     outcome: FetchOutcome) -> float:
        """Checksum-verify a fetched page's stored lines; returns ns.

        Corrupt lines are read-repaired from an intact replica before
        the fill proceeds, so a ``data_corruption`` chaos fault never
        propagates bad bytes into FMem.  No-op without replication.
        """
        if self.replication is None:
            return 0.0
        mismatches, repairs, ns = self.replication.verify_page(
            vfmem_page_addr, outcome.location.node)
        if mismatches:
            self.counters.add("fetch_checksum_mismatches", mismatches)
            self.counters.add("fetch_read_repairs", repairs)
        return ns

    def _all_replicas_down(self, vfmem_addr: int, retries: int) -> FetchOutcome:
        if self.mode is FallbackMode.MCE_HANDLER:
            self.counters.add("mce_raised")
            raise MachineCheckException(
                f"fetch of {vfmem_addr:#x} timed out on all replicas")
        # PAGE_FAULT_FALLBACK: degrade the page so software sees a fault
        # on the next access and can wait for the outage to clear.
        self.counters.add("pages_degraded")
        if self.page_table is not None:
            vpn = self.page_table.vpn_of(vfmem_addr)
            entry = self.page_table.entry(vpn)
            if entry is not None:
                self.degraded_pages.append((vpn, entry.pfn))
                self.page_table.mark_not_present(vpn)
            else:
                self.degraded_pages.append((vpn, vpn))
        raise NodeFailure(
            f"all replicas for {vfmem_addr:#x} are down; "
            f"page degraded to fault-on-access")

    # -- network-delay handling ---------------------------------------------------------

    def classify_delay(self, observed_latency_ns: float) -> bool:
        """Return True if a fetch latency would trip the coherence timeout.

        Callers use this to decide between absorbing a slow fetch and
        taking the fallback path.
        """
        tripped = observed_latency_ns > self.coherence_timeout_ns
        if tripped:
            self.counters.add("timeouts_detected")
        return tripped

    def recover_degraded(self) -> int:
        """Re-arm degraded pages after the outage clears; returns count.

        Each page gets back the pfn recorded when it was degraded —
        re-arming with a made-up frame would silently remap the page.
        """
        count = len(self.degraded_pages)
        if self.page_table is not None:
            for vpn, pfn in self.degraded_pages:
                if self.page_table.entry(vpn) is not None:
                    self.page_table.mark_present(vpn, pfn=pfn)
        self.degraded_pages.clear()
        if count:
            self.counters.add("recoveries")
        return count
