"""Discrete-event simulation of the eviction pipeline.

The Figure 11 cost models treat producer/NIC/receiver overlap with a
closed-form "wire exposure" constant.  This module checks that constant
the honest way: it simulates the three pipeline stages as discrete
events —

* the **producer** scans bitmaps and copies dirty lines into log
  batches (CPU-bound),
* the **NIC** DMAs posted batches onto the wire (bandwidth-bound),
* the **receiver** scatters records at the memory node and returns
  credits (remote-CPU-bound, ring flow control)

— and reports the end-to-end time plus each stage's busy time.  The
test suite asserts the closed-form model's totals land within a few
percent of the DES results, so the fast models used by the benchmark
harness stay anchored to an executable ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common import units
from ..common.clock import EventQueue
from ..common.errors import ConfigError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..net.ring import RECORD_BYTES


@dataclass
class PipelineResult:
    """Outcome of one simulated eviction stream."""

    pages: int
    lines_per_page: int
    elapsed_ns: float
    producer_busy_ns: float
    nic_busy_ns: float
    receiver_busy_ns: float
    batches: int

    @property
    def dirty_bytes(self) -> int:
        """Useful payload moved."""
        return self.pages * self.lines_per_page * units.CACHE_LINE

    def goodput_bytes_per_s(self) -> float:
        """Useful bytes per second end to end."""
        return self.dirty_bytes / (self.elapsed_ns / units.S)

    @property
    def bottleneck(self) -> str:
        """Which stage bounded the run."""
        stages = {
            "producer": self.producer_busy_ns,
            "nic": self.nic_busy_ns,
            "receiver": self.receiver_busy_ns,
        }
        return max(stages, key=stages.get)

    def wire_exposure(self) -> float:
        """Fraction of NIC time not hidden behind the producer.

        This is the quantity the closed-form model approximates with
        ``LatencyModel.log_wire_exposure``.
        """
        if self.nic_busy_ns == 0:
            return 0.0
        hidden = min(self.producer_busy_ns, self.nic_busy_ns)
        overlap_deficit = self.elapsed_ns - self.producer_busy_ns
        return max(min(overlap_deficit / self.nic_busy_ns, 1.0), 0.0)


class EvictionPipeline:
    """DES model of producer -> NIC -> receiver with ring credits."""

    def __init__(self, latency: LatencyModel = DEFAULT_LATENCY,
                 batch_bytes: int = 64 * units.KB,
                 ring_batches: int = 4,
                 receiver_ns_per_record: float = 45.0) -> None:
        if batch_bytes < RECORD_BYTES:
            raise ConfigError("batch must hold at least one record")
        if ring_batches < 1:
            raise ConfigError("ring must hold at least one batch in flight")
        self.latency = latency
        self.batch_bytes = batch_bytes
        self.ring_batches = ring_batches
        self.receiver_ns_per_record = receiver_ns_per_record

    # -- stage costs -------------------------------------------------------------

    def _producer_page_ns(self, lines: int) -> float:
        lat = self.latency
        scan = lat.bitmap_scan_per_line_ns * units.LINES_PER_PAGE + 62.0
        copy = lat.copy_segments_ns([lines])
        return scan + copy

    def _nic_batch_ns(self, records: int) -> float:
        lat = self.latency
        nbytes = records * RECORD_BYTES
        return (lat.rdma_linked_wr_ns + lat.rdma_nic_wr_ns
                + lat.rdma_per_byte_ns * nbytes)

    def _receiver_batch_ns(self, records: int) -> float:
        return records * self.receiver_ns_per_record

    # -- the simulation -------------------------------------------------------------

    def run(self, pages: int, lines_per_page: int) -> PipelineResult:
        """Simulate evicting ``pages`` with ``lines_per_page`` dirty."""
        if pages <= 0:
            raise ConfigError("pages must be positive")
        if not 1 <= lines_per_page <= units.LINES_PER_PAGE:
            raise ConfigError("lines_per_page must be in [1, 64]")
        queue = EventQueue()
        records_per_batch = max(self.batch_bytes // RECORD_BYTES, 1)
        total_records = pages * lines_per_page
        page_ns = self._producer_page_ns(lines_per_page)

        state = {
            "produced": 0,            # records staged so far
            "posted_batches": 0,
            "credits": self.ring_batches,
            "pending_post": 0,        # staged records not yet posted
            "nic_free_at": 0.0,
            "receiver_free_at": 0.0,
            "producer_busy": 0.0,
            "nic_busy": 0.0,
            "receiver_busy": 0.0,
            "done_at": 0.0,
            "batches": 0,
            "want_post": False,
        }

        def produce_page():
            state["produced"] += lines_per_page
            state["pending_post"] += lines_per_page
            state["producer_busy"] += page_ns
            flush = (state["pending_post"] >= records_per_batch
                     or state["produced"] >= total_records)
            if flush and state["pending_post"] > 0:
                try_post()
            if state["produced"] < total_records:
                queue.schedule(page_ns, produce_page)

        def try_post():
            if state["credits"] <= 0:
                # Ring full: posting resumes when a credit comes back
                # with the receiver's next acknowledgment.
                state["want_post"] = True
                return
            records = min(state["pending_post"], records_per_batch)
            if records == 0:
                return
            if (records < records_per_batch
                    and state["produced"] < total_records):
                return   # wait for a full batch while production runs
            state["pending_post"] -= records
            state["credits"] -= 1
            state["batches"] += 1
            start = max(queue.clock.now, state["nic_free_at"])
            nic_ns = self._nic_batch_ns(records)
            state["nic_free_at"] = start + nic_ns
            state["nic_busy"] += nic_ns
            queue.schedule_at(state["nic_free_at"],
                              lambda r=records: deliver(r))

        def deliver(records: int):
            start = max(queue.clock.now, state["receiver_free_at"])
            rec_ns = self._receiver_batch_ns(records)
            state["receiver_free_at"] = start + rec_ns
            state["receiver_busy"] += rec_ns
            queue.schedule_at(state["receiver_free_at"], ack)

        def ack():
            state["credits"] += 1
            state["done_at"] = queue.clock.now
            state["want_post"] = False
            if state["pending_post"] > 0:
                try_post()

        queue.schedule(0.0, produce_page)
        max_batches = total_records // records_per_batch + 2
        queue.run(max_events=pages * 4 + max_batches * 8 + 256)
        return PipelineResult(
            pages=pages,
            lines_per_page=lines_per_page,
            elapsed_ns=state["done_at"],
            producer_busy_ns=state["producer_busy"],
            nic_busy_ns=state["nic_busy"],
            receiver_busy_ns=state["receiver_busy"],
            batches=state["batches"],
        )
