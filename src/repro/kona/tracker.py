"""The Dirty Data Tracker: Kona's view over the coherence bitmap.

With the hardware primitive available, tracking is free for the
application — the FPGA sets bitmap bits as writebacks flow past.  This
module wraps the bitmap with the amplification accounting the paper
reports, and provides the snapshot-diff *emulation* mode (the ~200 LoC
KTracker-lite of paper section 5.1) used when no coherence events are
available: for each page fetched from remote memory, keep a copy, and
on eviction diff the page against the copy to discover dirty lines.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..common import units
from ..common.errors import ConfigError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.stats import Counter
from ..fpga.bitmap import DirtyBitmap


class DirtyDataTracker:
    """Cache-line dirty tracking over the FPGA bitmap."""

    def __init__(self, bitmap: DirtyBitmap,
                 page_size: int = units.PAGE_4K) -> None:
        self.bitmap = bitmap
        self.page_size = page_size
        self.counters = Counter()

    # -- reporting ----------------------------------------------------------------

    def dirty_bytes_cacheline(self) -> int:
        """Dirty data at 64 B tracking granularity."""
        return self.bitmap.total_dirty_bytes()

    def dirty_bytes_page(self) -> int:
        """What page-granularity tracking would report for the same writes."""
        pages = sum(1 for _ in self.bitmap.dirty_pages())
        return pages * self.page_size

    def amplification_vs_page(self) -> float:
        """Page-tracking bytes over cache-line-tracking bytes.

        This is the per-window ratio Figure 9 plots (>= 1; equals 1 only
        when every dirty page is fully dirty).
        """
        cl = self.dirty_bytes_cacheline()
        if cl == 0:
            return float("nan")
        return self.dirty_bytes_page() / cl


class SnapshotDiffTracker:
    """Emulated cache-line tracking by page snapshot + diff.

    This is the fallback Kona uses without hardware (paper section 5.1):
    when a page is fetched, stash a copy; when the eviction thread takes
    the page, memcmp 64 B chunks against the copy.  The diff cost is
    charged so the emulation-overhead experiment (section 6.3) can be
    reproduced.
    """

    def __init__(self, page_size: int = units.PAGE_4K,
                 latency: LatencyModel = DEFAULT_LATENCY) -> None:
        if page_size % units.CACHE_LINE:
            raise ConfigError("page size must be line aligned")
        self.page_size = page_size
        self.lines_per_page = page_size // units.CACHE_LINE
        self.latency = latency
        self._snapshots: Dict[int, np.ndarray] = {}
        self.counters = Counter()
        self.diff_time_ns = 0.0

    def on_fetch(self, page: int, data: np.ndarray) -> None:
        """A page arrived from remote memory; snapshot it."""
        if data.size != self.page_size:
            raise ConfigError(
                f"page snapshot must be {self.page_size} bytes, got {data.size}")
        self._snapshots[page] = np.array(data, dtype=np.uint8, copy=True)
        self.counters.add("snapshots")

    def diff_on_evict(self, page: int, current: np.ndarray) -> int:
        """Diff a page against its snapshot; returns the dirty-line mask."""
        snapshot = self._snapshots.pop(page, None)
        self.counters.add("diffs")
        self.diff_time_ns += self.latency.memcmp_ns(self.page_size)
        if snapshot is None:
            # No snapshot: conservatively treat the page as fully dirty.
            self.counters.add("unsnapshotted_pages")
            return (1 << self.lines_per_page) - 1
        if current.size != self.page_size:
            raise ConfigError("page size mismatch on diff")
        changed = (np.asarray(current, dtype=np.uint8) != snapshot)
        per_line = changed.reshape(self.lines_per_page,
                                   units.CACHE_LINE).any(axis=1)
        mask = 0
        for i in np.flatnonzero(per_line).tolist():
            mask |= 1 << i
        self.counters.add("dirty_lines_found", int(per_line.sum()))
        return mask

    @property
    def tracked_pages(self) -> int:
        """Pages currently holding snapshots."""
        return len(self._snapshots)
