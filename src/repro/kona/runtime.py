"""KLib: the Kona runtime facade.

This is the library an application links against (paper Figure 4).  It
assembles the whole stack — rack controller, memory nodes, FPGA memory
agent, CPU coherent cache, resource manager, AllocLib, dirty-data
tracker, eviction handler, poller — and exposes the application-facing
operations: ``malloc``/``free``/``mmap`` plus ``read``/``write`` memory
accesses, all transparently backed by disaggregated memory.

Time accounting: every access returns its critical-path cost; the
runtime splits time into application compute, FMem hits, remote
fetches, and (background) eviction so the experiment harness can
reproduce the paper's breakdowns.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..common import units
from ..common.clock import Account
from ..common.errors import AddressError, ConfigError, NodeFailure
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.retry import Retrier, RetryPolicy
from ..common.stats import Counter
from ..cluster.controller import RackController
from ..cluster.memnode import MemoryNode
from ..cluster.replication import DataPlane, ReplicationManager
from ..coherence.agent import CoherentCache
from ..coherence.states import Protocol
from ..fpga.agent import AgentConfig, MemoryAgent
from ..fpga.fmem import FMemCache
from ..fpga.translation import RemoteTranslationMap
from ..mem.address import AddressRange, align_down
from ..mem.pagetable import PageTable
from ..net.fabric import Fabric
from ..obs import FlightRecorder, traced
from ..vm.swap import ExecutionReport
from .alloclib import AllocLib
from .config import KonaConfig
from .engine import run_trace_batched
from .eviction import EvictionHandler
from .failures import FailureManager, FallbackMode, MachineCheckException
from .health import HealthMonitor, HealthState
from .poller import Poller
from .resource_manager import ResourceManager
from .tracker import DirtyDataTracker

#: Physical base address where the FPGA exposes VFMem.
VFMEM_BASE = 4 * units.GB

#: Accesses materialized per chunk by the scalar trace loop.
_SCALAR_CHUNK = 1 << 16


def build_rack(fabric: Fabric, num_nodes: int, node_capacity: int,
               slab_bytes: int) -> RackController:
    """Stand up a rack controller with ``num_nodes`` memory nodes."""
    controller = RackController()
    for i in range(num_nodes):
        node = MemoryNode(f"mem{i}", node_capacity, fabric,
                          slab_bytes=slab_bytes)
        controller.register_node(node)
    return controller


class KonaRuntime:
    """A complete Kona deployment for one application."""

    def __init__(self, config: Optional[KonaConfig] = None,
                 latency: LatencyModel = DEFAULT_LATENCY,
                 controller: Optional[RackController] = None,
                 fabric: Optional[Fabric] = None,
                 num_memory_nodes: int = 2,
                 cpu_cache_capacity: int = 8 * units.MB,
                 app_ns_per_access: float = 70.0,
                 failure_mode: FallbackMode = FallbackMode.PAGE_FAULT_FALLBACK,
                 recorder: Optional[FlightRecorder] = None) -> None:
        self.config = config if config is not None else KonaConfig()
        self.latency = latency
        self.app_ns_per_access = app_ns_per_access
        cfg = self.config

        # -- observability ---------------------------------------------------
        # The flight recorder (metrics registry + span tracer + sampler)
        # shares the fabric's sim clock; when the caller supplies both a
        # fabric and a recorder, the recorder is rebound to the fabric's
        # clock so timestamps agree.
        self.obs = recorder if recorder is not None else FlightRecorder()
        # Bound once: the access hot path checks tracer.enabled without
        # going through the recorder's property chain.
        self._tracer = self.obs.tracer

        # -- rack ------------------------------------------------------------
        if fabric is None:
            fabric = Fabric(latency, clock=self.obs.clock)
        self.fabric = fabric
        self.obs.bind_clock(self.fabric.clock)
        self.fabric.tracer = self.obs.tracer
        if not self.fabric.has_node("compute"):
            self.fabric.add_node("compute")
        if controller is None:
            per_node = max(
                2 * cfg.vfmem_capacity // max(num_memory_nodes, 1),
                4 * cfg.slab_bytes)
            controller = build_rack(self.fabric, num_memory_nodes,
                                    per_node, cfg.slab_bytes)
        self.controller = controller

        # -- compute-node hardware --------------------------------------------
        self.vfmem = AddressRange(VFMEM_BASE, cfg.vfmem_capacity)
        self.fmem = FMemCache(cfg.fmem_capacity, cfg.page_size, cfg.fmem_ways)
        self.translation = RemoteTranslationMap(self.vfmem.start,
                                                cfg.slab_bytes)
        self.page_table = PageTable(cfg.page_size)
        self.failures = FailureManager(self.translation, self.controller,
                                       mode=failure_mode,
                                       page_table=self.page_table,
                                       latency=latency,
                                       fabric=self.fabric)
        prefetcher = None
        if cfg.prefetch_policy != "none":
            from ..fpga.prefetcher import make_prefetcher
            prefetcher = make_prefetcher(cfg.prefetch_policy)
        self.agent = MemoryAgent(
            self.vfmem, self.fmem, self.translation, latency,
            AgentConfig(fetch_block=cfg.fetch_block,
                        prefetch_next_page=cfg.prefetch_next_page,
                        eager_upgrade_tracking=cfg.eager_upgrade_tracking),
            remote_read_ns=self._remote_read_ns,
            locate=self._locate_with_failover,
            prefetcher=prefetcher,
            protocol=Protocol(cfg.protocol),
            tracer=self.obs.tracer,
        )
        self.cpu_cache = CoherentCache(
            agent_id=0, resolver=self._directory_for,
            capacity=cpu_cache_capacity, protocol=Protocol(cfg.protocol))
        self.cpu_cache.attach(self.agent.directory)

        # -- KLib components -----------------------------------------------------
        self.resource_manager = ResourceManager(
            cfg, self.controller, self.translation, self.vfmem,
            self.page_table)
        self.alloclib = AllocLib(self.resource_manager)
        self.tracker = DirtyDataTracker(self.agent.bitmap, cfg.page_size)
        self.health = HealthMonitor(self.fabric.clock,
                                    tracer=self.obs.tracer)
        self.retrier = Retrier(
            RetryPolicy(max_attempts=cfg.retry_max_attempts,
                        base_backoff_ns=cfg.retry_base_backoff_ns,
                        max_total_backoff_ns=cfg.retry_deadline_ns),
            seed=cfg.retry_seed, clock=self.fabric.clock)
        self.eviction = EvictionHandler(cfg, self.translation,
                                        self.controller, latency,
                                        retrier=self.retrier,
                                        on_fault=self.health.degrade,
                                        fabric=self.fabric,
                                        tracer=self.obs.tracer)
        self.agent.on_page_eviction(self._eviction_sink)
        self.poller = Poller()

        # -- replication & durability ---------------------------------------------
        #: Optional content shadow (attach_data_plane) for durability
        #: proofs; None keeps the batched trace engine eligible.
        self.content: Optional[DataPlane] = None
        self.replication: Optional[ReplicationManager] = None
        if cfg.replication_factor > 1:
            self.replication = ReplicationManager(
                self.controller, self.translation, self.fabric.clock,
                vfmem_base=self.vfmem.start, slab_bytes=cfg.slab_bytes,
                replication_factor=cfg.replication_factor,
                lease_ttl_ns=cfg.lease_ttl_ns, tracer=self.obs.tracer)
            self.resource_manager.replication = self.replication
            self.eviction.replication = self.replication
            self.failures.replication = self.replication

        # -- accounting ------------------------------------------------------------
        self.account = Account()
        self.counters = Counter()
        self.background_ns = 0.0
        #: Causal fault capture (attach_causal_capture); None keeps the
        #: access and replay hot paths at a single pointer test.
        self._capture = None
        self._register_metrics()

    # -- wiring helpers -----------------------------------------------------------

    def _register_metrics(self) -> None:
        """Register every component metric as a labeled registry gauge.

        Hot paths keep their cheap :class:`Counter` bags; the registry
        overlays them with callable gauges so telemetry, the sampler
        and the exporters all read one namespace (see
        :func:`repro.kona.telemetry.snapshot`, now a registry view).
        """
        reg = self.obs.registry
        gauges = {
            "memory.vfmem_bytes": lambda: self.vfmem.size,
            "memory.fmem_bytes": lambda: self.fmem.capacity,
            "memory.fmem_occupancy": lambda: self.fmem.occupancy,
            "memory.fmem_hit_ratio": lambda: round(self.fmem.hit_ratio, 4),
            "memory.bound_remote_bytes":
                lambda: self.resource_manager.bound_bytes,
            "memory.live_alloc_bytes": lambda: self.alloclib.live_bytes,
            "fetch.cache_hits": lambda: self.counters["cache_hits"],
            "fetch.cache_misses": lambda: self.counters["cache_misses"],
            "fetch.fmem_hits": lambda: self.agent.counters["fmem_hits"],
            "fetch.remote_fetches":
                lambda: self.agent.counters["remote_fetches"],
            "fetch.pages_prefetched":
                lambda: self.agent.counters["pages_prefetched"],
            "tracking.writebacks_tracked":
                lambda: self.agent.counters["writebacks_tracked"],
            "tracking.lines_snooped":
                lambda: self.agent.counters["lines_snooped"],
            "tracking.dirty_lines_pending":
                lambda: self.agent.bitmap.total_dirty_lines(),
            "eviction.pages_evicted": lambda: self.eviction.stats.pages_evicted,
            "eviction.clean_pages": lambda: self.eviction.stats.clean_pages,
            "eviction.full_page_writes":
                lambda: self.eviction.stats.full_page_writes,
            "eviction.lines_logged": lambda: self.eviction.stats.lines_logged,
            "eviction.dirty_bytes": lambda: self.eviction.stats.dirty_bytes,
            "eviction.wire_bytes": lambda: self.eviction.stats.wire_bytes,
            "eviction.goodput_mb_s": lambda: round(
                self.eviction.stats.goodput_bytes_per_s() / units.MB, 2)
                if self.eviction.stats.elapsed_ns > 0 else 0.0,
            "faults.page_faults":
                lambda: self.page_table.counters["faults_missing"],
            "faults.protection_faults":
                lambda: self.page_table.counters["faults_protection"],
            "faults.replica_failovers":
                lambda: self.failures.counters["replica_failovers"],
            "faults.degraded_pages":
                lambda: len(self.failures.degraded_pages),
            "health.state": lambda: self.health.state.name,
            "health.degradations":
                lambda: self.health.counters["degradations"],
            "health.recoveries":
                lambda: self.health.counters["recoveries_completed"],
            "health.mttr_ns": lambda: round(self.health.mttr_ns, 1),
            "health.time_in_degraded_ns":
                lambda: round(self.health.time_in_degraded_ns, 1),
            "health.flush_retries":
                lambda: self.eviction.counters["flush_retries"],
            "health.flush_failures":
                lambda: self.eviction.counters["flush_failures"],
            "health.lines_requeued":
                lambda: self.eviction.counters["lines_requeued"],
            "health.lines_redelivered":
                lambda: self.eviction.counters["lines_redelivered"],
            "health.parked_records": lambda: self.eviction.parked_records,
            "health.backpressure_stalls":
                lambda: self.eviction.counters["backpressure_stalls"],
            "health.eviction_failovers":
                lambda: self.eviction.counters["eviction_failovers"],
            "replication.factor": lambda: (
                self.replication.replication_factor
                if self.replication is not None
                else self.config.replication_factor),
            "replication.backlog_slots": lambda: (
                self.replication.backlog_slots
                if self.replication is not None else 0),
            "replication.lag_records": lambda: (
                self.replication.lag_records
                if self.replication is not None else 0),
            "replication.failovers": lambda: (
                self.replication.counters["failovers"]
                if self.replication is not None else 0),
            "replication.promotions": lambda: (
                self.replication.counters["promotions"]
                if self.replication is not None else 0),
            "replication.max_epoch": lambda: (
                self.replication.max_epoch
                if self.replication is not None else 0),
            "replication.stale_epoch_fenced": lambda: (
                self.replication.counters["stale_epoch_writes_fenced"]
                if self.replication is not None else 0),
            "replication.lines_replicated": lambda: (
                self.replication.counters["lines_replicated"]
                if self.replication is not None else 0),
            "replication.lines_rereplicated": lambda: (
                self.replication.counters["lines_rereplicated"]
                if self.replication is not None else 0),
            "replication.checksum_mismatches": lambda: (
                self.replication.counters["checksum_mismatches"]
                if self.replication is not None else 0),
            "replication.read_repairs": lambda: (
                self.replication.counters["read_repairs"]
                if self.replication is not None else 0),
            "replication.failover_mttr_ns":
                lambda: round(self.health.mttr_ns, 1),
            "replication.writebacks_redirected":
                lambda: self.eviction.counters["lines_redirected"],
            "network.transfers": lambda: self.fabric.counters["transfers"],
            "network.bytes_moved": lambda: self.fabric.bytes_moved,
            "network.failed_transfers":
                lambda: self.fabric.counters["failed_transfers"],
            "coherence.get_s": lambda: self.agent.directory.counters["get_s"],
            "coherence.get_m": lambda: self.agent.directory.counters["get_m"],
            "coherence.put_m": lambda: self.agent.directory.counters["put_m"],
            "coherence.snoops":
                lambda: self.agent.directory.counters["snoops"],
            "coherence.invalidations":
                lambda: self.agent.directory.counters["invalidations"],
            "coherence.owned_transitions":
                lambda: self.agent.directory.counters["owned_transitions"],
        }
        for name, fn in gauges.items():
            reg.gauge(name, fn=fn)
        # Latency distributions, fed on the access path while tracing
        # is enabled (log-bucketed; p50/p95/p99 in the exports).
        self._stall_hist = reg.histogram(
            "kona_access_stall_ns",
            help="critical-path stall per CPU-cache miss (ns)")
        self._evict_hist = reg.histogram(
            "kona_evict_page_ns",
            help="eviction-handler time per evicted page (ns)")

    @property
    def tracer(self):
        """The flight recorder's span tracer (for ``@traced`` methods)."""
        return self.obs.tracer

    def _directory_for(self, line_addr: int):
        return self.agent.directory if line_addr in self.vfmem else None

    def _remote_read_ns(self, node: str, nbytes: int) -> float:
        # The FPGA agent's fetch completes when the data arrives on the
        # coherent link; there is no CQE for software to poll on the
        # critical path (hardware data path, section 3).
        return self.fabric.transfer_cost_ns("compute", node, nbytes,
                                            linked=True, signaled=False)

    def _locate_with_failover(self, vfmem_addr: int):
        try:
            outcome = self.failures.resolve_for_fetch(vfmem_addr)
        except (NodeFailure, MachineCheckException):
            self.health.degrade("fetch path lost all replicas")
            raise
        if outcome.used_replica:
            self.counters.add("replica_reads")
            self.health.degrade("fetch failed over to replica")
        if outcome.extra_latency_ns:
            self.account.charge("failover_wait", outcome.extra_latency_ns)
        if self._capture is not None and (outcome.extra_latency_ns
                                          or outcome.used_replica):
            # Stash the failover outcome for the fault record the fill
            # is about to emit (the fetch that triggered this locate).
            self._capture._repl_ns = outcome.extra_latency_ns
            self._capture._used_replica = outcome.used_replica
        if self.content is not None:
            # Checksum-verify the page as the fill streams in; repairs
            # overlap with the DMA, so the cost stays off the critical
            # path but is still accounted.
            page = align_down(vfmem_addr, self.config.page_size)
            verify_ns = self.failures.verify_fetch(page, outcome)
            if verify_ns:
                self.account.charge("integrity_verify", verify_ns)
                self.background_ns += verify_ns
        return outcome.location

    def _eviction_sink(self, vfmem_page_addr: int, dirty_mask: int) -> None:
        # Eviction runs off the critical path (paper section 4.4): the
        # handler's time accrues to the background budget.
        elapsed = self.eviction.evict_page(vfmem_page_addr, dirty_mask)
        self.background_ns += elapsed
        if self.obs.enabled:
            self._evict_hist.observe(elapsed)

    def attach_data_plane(self) -> DataPlane:
        """Attach the content shadow used for durability proofs.

        Once attached, every completed write advances its line's
        version, eviction records carry versioned payloads into the
        memnode stores, and fetches checksum-verify stored lines.
        Trace runs fall back to the scalar engine, whose per-access
        path observes every write.
        """
        if self.content is None:
            self.content = DataPlane()
            self.eviction.content = self.content
            if self.replication is not None:
                self.replication.content_active = True
        return self.content

    def attach_causal_capture(self, **kwargs):
        """Attach per-access causal fault capture; returns the sink.

        Every CPU-cache miss served from here on emits one columnar
        record ``(seq, line, node, kind, per-hop stall breakdown,
        health/chaos state)`` into a :class:`~repro.obs.causal.
        CausalCapture`; read the mergeable aggregate via ``.log``.
        Capture only observes — counters, accounts and the simulated
        clock are untouched, so runs with and without it are
        bit-identical (differential-tested).  ``kwargs`` pass through
        to :class:`~repro.obs.causal.CausalCapture` (window size,
        top-K, reservoir seed...).
        """
        if self._capture is None:
            from ..obs.causal import CausalCapture
            kwargs.setdefault("page_size", self.config.page_size)
            cap = CausalCapture(**kwargs)
            cap.bind_fabric(self.fabric._down)
            cap.on_health(self.health.state.name)
            self.health.add_context_provider(cap.on_health)
            self._capture = cap
            self.agent._capture = cap
        return self._capture

    def fleet_snapshot(self, component: Optional[str] = None,
                       tenant: Optional[str] = None, slo=None):
        """This runtime's telemetry as a fleet component snapshot.

        Freezes the flight recorder (metrics, histograms, sampled
        series, tracer events) plus the health monitor's annotated
        transitions and — when causal capture is attached — the
        drained fault log, under the recorder's component identity
        (override with ``component``/``tenant``).  ``slo`` is an
        optional :class:`~repro.obs.slo.SLOEngine` whose verdicts ride
        along.  Pure observation: nothing simulation-visible changes.
        """
        from ..obs.fleet import ComponentSnapshot
        return ComponentSnapshot.from_recorder(
            self.obs, component=component, tenant=tenant,
            health=self.health, fault_log=self._capture, slo=slo)

    def fleet_members(self, component: Optional[str] = None,
                      tenant: Optional[str] = None, slo=None) -> list:
        """Snapshots for this runtime *and* its rack: runtime, fabric,
        every registered memory node.

        The one-call way to capture a whole single-runtime topology
        into a :class:`~repro.obs.fleet.FleetRecorder`; sharded
        drivers instead collect per-shard members with distinct
        component labels.
        """
        members = [self.fleet_snapshot(component=component,
                                       tenant=tenant, slo=slo)]
        members.append(self.fabric.component_snapshot(tenant=tenant))
        for name in self.controller.nodes:
            members.append(
                self.controller.node(name).component_snapshot(
                    tenant=tenant))
        return members

    # -- allocation API ---------------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Transparent allocation backed by disaggregated memory."""
        return self.alloclib.malloc(size)

    def free(self, addr: int) -> None:
        """Release an allocation."""
        self.alloclib.free(addr)

    def mmap(self, size: int) -> AddressRange:
        """Map a large region backed by disaggregated memory."""
        return self.alloclib.mmap(size)

    # -- data-path API -----------------------------------------------------------------

    def access(self, addr: int, is_write: bool) -> float:
        """One memory access; returns its critical-path latency in ns.

        A CPU-cache hit costs nothing extra beyond application compute;
        a miss pays the FMem or remote-fetch latency the agent reports.
        Page faults never appear on this path — VFMem pages are always
        present.
        """
        if addr not in self.vfmem:
            raise AddressError(f"{addr:#x} is not Kona-managed memory")
        cap = self._capture
        if cap is not None:
            # Scalar path: each access is the next global ordinal.  The
            # batched engine manages ``base`` around scalar stretches so
            # both engines number faults identically.
            cap.seq = cap.base
            cap.base += 1
        hit = self.cpu_cache.access(addr, is_write)
        if is_write and self.content is not None:
            # The access completed (no fault raised): the write is now
            # application-visible, so its version is durable-pending.
            self.content.record_write(addr)
        if hit:
            self.counters.add("cache_hits")
            return 0.0
        cost = self.agent.last_access_ns
        self.account.charge("memory_stall", cost)
        self.counters.add("cache_misses")
        if self._tracer.enabled:
            self._stall_hist.observe(cost)
        return cost

    def read(self, addr: int, size: int = units.WORD) -> float:
        """Read ``size`` bytes; returns total stall ns across lines."""
        return self._span_access(addr, size, is_write=False)

    def write(self, addr: int, size: int = units.WORD) -> float:
        """Write ``size`` bytes; returns total stall ns across lines."""
        return self._span_access(addr, size, is_write=True)

    def _span_access(self, addr: int, size: int, is_write: bool) -> float:
        if size <= 0:
            raise ConfigError(f"access of {size} bytes")
        first = align_down(addr, units.CACHE_LINE)
        last = align_down(addr + size - 1, units.CACHE_LINE)
        total = 0.0
        for line in range(first, last + 1, units.CACHE_LINE):
            total += self.access(line, is_write)
        return total

    def run_workload(self, model, windows: int = 2, seed: int = 0,
                     max_accesses: Optional[int] = None,
                     engine: str = "batched") -> ExecutionReport:
        """Run a :class:`~repro.workloads.base.WorkloadModel` end to end.

        Convenience wrapper: generates the workload's trace, maps a
        region for its heap, rebases the addresses into Kona-managed
        memory and executes the stream.  ``max_accesses`` truncates the
        stream for quick runs.
        """
        trace = model.generate(windows=windows, seed=seed)
        region = self.mmap(model.memory_bytes)
        n = len(trace) if max_accesses is None else min(max_accesses,
                                                        len(trace))
        addrs = trace.addrs[:n] + np.uint64(region.start)
        writes = trace.writes[:n].copy()
        report = self.run_trace(addrs, writes, engine=engine)
        report.name = f"kona[{model.name}]"
        return report

    def run_trace(self, addrs: np.ndarray, writes: np.ndarray,
                  engine: str = "batched", base: int = 0) -> ExecutionReport:
        """Execute an access stream; returns the same report shape as
        the page-based engine, so Figure 7 can compare them directly.

        ``engine="batched"`` (default) bulk-resolves pure CPU-cache
        hits through the vectorized front-end and replays everything
        else through the scalar back-end (see :mod:`repro.kona.engine`);
        ``engine="coalesced"`` additionally grants replayed misses
        through one directory transaction per page run (the batched
        engine already does this when ``KonaConfig.coalesced_replay``
        is set — the explicit name forces it on);
        ``engine="scalar"`` is the one-access-at-a-time oracle.  All
        produce bit-identical reports, counters and component state.

        ``base`` adds a constant offset to every address as it is
        consumed — streamed columnar traces store region-relative
        addresses, and rebasing per chunk avoids materializing a
        shifted copy of a 100M-entry array.
        """
        if addrs.shape != writes.shape:
            raise ConfigError("addrs and writes must have identical shape")
        if engine in ("batched", "coalesced") and self.content is not None:
            # The data plane versions writes per access; the batched
            # front-end bulk-resolves hits and would skip them.
            engine = "scalar"
        if engine == "batched":
            stall = run_trace_batched(self, addrs, writes, base=base)
        elif engine == "coalesced":
            stall = run_trace_batched(self, addrs, writes, base=base,
                                      coalesced=True)
        elif engine == "scalar":
            stall = self._run_trace_scalar(addrs, writes, base=base)
        else:
            raise ConfigError(f"unknown run_trace engine {engine!r}; "
                              "choose 'batched', 'coalesced' or 'scalar'")
        app = self.app_ns_per_access * addrs.size
        self.account.charge("app_compute", app)
        return ExecutionReport(
            name="kona",
            accesses=int(addrs.size),
            elapsed_ns=stall + app,
            background_ns=self.background_ns,
            account=self.account,
            counters=self.counters,
            bytes_fetched=(self.agent.counters["remote_fetches"]
                           * self.config.fetch_block),
            bytes_written_back=self.eviction.stats.wire_bytes,
        )

    def run_trace_stream(self, chunks, engine: str = "batched",
                         base: int = 0) -> ExecutionReport:
        """Execute a chunked access stream without holding it in RAM.

        ``chunks`` yields ``(addrs, writes)`` array pairs (e.g. from
        :func:`repro.workloads.trace.iter_trace_chunks`).  Every chunk
        except the last must be a multiple of the 256-access
        maintenance cadence, which makes the ``maybe_evict``/sampler
        schedule — and therefore every counter and the bit-exact
        ``elapsed_ns`` — identical to one monolithic ``run_trace`` over
        the concatenated trace.  One float stall-accumulation chain
        threads through all chunks (see the ordering contract in
        ``docs/architecture.md``).
        """
        if engine not in ("batched", "coalesced", "scalar"):
            raise ConfigError(f"unknown run_trace engine {engine!r}; "
                              "choose 'batched', 'coalesced' or 'scalar'")
        if engine in ("batched", "coalesced") and self.content is not None:
            engine = "scalar"
        stall = 0.0
        total = 0
        pending = False   # a non-multiple chunk must be the last one
        for addrs, writes in chunks:
            if addrs.shape != writes.shape:
                raise ConfigError("addrs and writes must have identical "
                                  "shape")
            if pending:
                raise ConfigError(
                    "streamed chunks must be multiples of the 256-access "
                    "maintenance cadence (only the final chunk may be "
                    "ragged)")
            n = int(addrs.size)
            if n == 0:
                continue
            if n % 256:
                pending = True
            if engine == "batched":
                stall = run_trace_batched(self, addrs, writes, base=base,
                                          stall=stall)
            elif engine == "coalesced":
                stall = run_trace_batched(self, addrs, writes, base=base,
                                          stall=stall, coalesced=True)
            else:
                stall = self._run_trace_scalar(addrs, writes, stall,
                                               base=base)
            total += n
        app = self.app_ns_per_access * total
        self.account.charge("app_compute", app)
        return ExecutionReport(
            name="kona",
            accesses=total,
            elapsed_ns=stall + app,
            background_ns=self.background_ns,
            account=self.account,
            counters=self.counters,
            bytes_fetched=(self.agent.counters["remote_fetches"]
                           * self.config.fetch_block),
            bytes_written_back=self.eviction.stats.wire_bytes,
        )

    def _run_trace_scalar(self, addrs: np.ndarray, writes: np.ndarray,
                          stall: float = 0.0, base: int = 0) -> float:
        """The oracle loop: one Python call chain per access.

        Iterates the trace in fixed-size chunks so large traces never
        materialize whole-array ``tolist`` copies.  ``stall`` seeds the
        accumulator so a caller (the batched engine's scalar stretches)
        can continue one float-accumulation chain — float addition is
        not associative, and the engines must agree bit for bit.
        """
        access = self.access
        maybe_evict = self.maybe_evict
        # The tick only drives the gauge sampler; skip it entirely when
        # none is attached instead of paying a call every 256 accesses.
        tick = self.obs.tick if self.obs.sampler is not None else None
        n = int(addrs.size)
        i = 0
        for pos in range(0, n, _SCALAR_CHUNK):
            hi = min(pos + _SCALAR_CHUNK, n)
            for addr, is_write in zip(addrs[pos:hi].tolist(),
                                      writes[pos:hi].tolist()):
                stall += access(int(addr) + base, is_write)
                if i & 0xFF == 0:
                    maybe_evict()   # background reclaimer ticks periodically
                    if tick is not None:
                        tick()      # gauge sampler, when one is attached
                i += 1
        return stall

    # -- maintenance ----------------------------------------------------------------------

    def maybe_evict(self, evict_page=None) -> int:
        """Watermark-driven proactive eviction (config watermarks).

        When FMem occupancy exceeds the high watermark, reclaim LRU
        pages down to the low watermark — off the critical path, the
        way the paper's Eviction Handler "monitors the cache
        utilization and evicts pages to make room" (section 4.1).
        ``evict_page`` optionally substitutes the agent's per-page
        drain (see ``MemoryAgent.proactive_evict``).  Returns pages
        reclaimed.
        """
        if self.replication is not None and self.replication.backlog_slots:
            # Background maintenance: rebuild the replication factor a
            # few slots per tick, then let health observe progress.
            ns = self.replication.re_replicate(
                self.config.rereplication_slots_per_tick)
            self.background_ns += ns
            self._check_replication_recovered()
        if self.fmem.occupancy_fraction <= self.config.evict_high_watermark:
            return 0
        target = int(self.config.evict_low_watermark * self.fmem.num_frames)
        count = self.fmem.occupancy - target
        if count <= 0:
            return 0
        self.counters.add("watermark_reclaims")
        return self.agent.proactive_evict(count, evict_page=evict_page)

    def _check_replication_recovered(self) -> None:
        """Close the health loop once redundancy is fully rebuilt."""
        if (self.health.state is HealthState.RECOVERING
                and self.eviction.parked_records == 0
                and len(self.failures.degraded_pages) == 0
                and (self.replication is None
                     or self.replication.backlog_slots == 0)):
            self.health.recovered()

    @traced("runtime.failover", cat="recovery")
    def on_memnode_failure(self, node_name: str) -> float:
        """Controller-driven failover after a memory-node crash.

        Promotes backups for every window the dead node primaried
        (waiting out its lease — the modeled unavailability window),
        redirects the writebacks parked for it to the promoted
        primaries, and moves health DEGRADED -> RECOVERING while the
        background re-replication task rebuilds redundancy.  Returns
        simulated ns consumed by the failover.
        """
        if self.replication is None:
            return 0.0
        report = self.replication.on_node_failure(node_name)
        if not report.affected:
            return 0.0
        self.health.degrade(f"memnode {node_name} failed")
        if report.lease_wait_ns > 0:
            # New primaries must not serve before the dead node's lease
            # expires; the fencing wait is real unavailability.
            self.fabric.clock.advance(report.lease_wait_ns)
            self.account.charge("failover_lease_wait", report.lease_wait_ns)
        # In-flight batches staged for the dead node reroute through the
        # epoch fence; parked ones drain to the promoted primaries.
        redirected_ns = self.eviction.flush_node(node_name)
        redirected_ns += self.eviction.redirect_parked(node_name)
        self.background_ns += redirected_ns
        self.counters.add("memnode_failovers")
        if report.promoted_slots:
            self.health.start_recovery()
            self._check_replication_recovered()
        return report.lease_wait_ns + redirected_ns

    @traced("runtime.recover", cat="recovery")
    def recover(self) -> float:
        """Recovery path after an outage clears (paper section 4.5).

        Drains parked writebacks to every node that came back, re-arms
        pages degraded to fault-on-access, rebuilds any remaining
        replication deficit and scrubs stored checksums, then walks the
        health state machine RECOVERING -> HEALTHY once nothing is left
        parked or under-replicated.  Returns background ns consumed.
        """
        repl_ns = 0.0
        if self.replication is not None:
            repl_ns = self.replication.re_replicate_all()
            _, repaired, scrub_ns = self.replication.scrub()
            repl_ns += scrub_ns
            if repaired:
                self.counters.add("scrub_repairs", repaired)
            self.background_ns += repl_ns
        if (self.health.state is HealthState.HEALTHY
                and self.eviction.parked_records == 0):
            return repl_ns
        if self.health.state is HealthState.DEGRADED:
            self.health.start_recovery()
        drained_ns = self.eviction.drain_recovered()
        self.background_ns += drained_ns
        pages = self.failures.recover_degraded()
        if pages:
            self.counters.add("pages_rearmed", pages)
        if (self.health.state is HealthState.RECOVERING
                and self.eviction.parked_records == 0
                and (self.replication is None
                     or self.replication.backlog_slots == 0)):
            self.health.recovered()
        return drained_ns + repl_ns

    @traced("runtime.flush", cat="runtime")
    def flush(self) -> float:
        """Write everything back: CPU caches, FMem, pending logs.

        Returns background ns consumed.  Used at teardown and by tests
        asserting end-to-end dirty-data conservation.
        """
        before = self.background_ns
        self.cpu_cache.flush_tracked()
        for page_addr in self.fmem.resident_pages():
            self.fmem.drop(page_addr)
            mask = self.agent.bitmap.clear_page(
                page_addr // self.config.page_size)
            self.background_ns += self.eviction.evict_page(page_addr, mask)
        self.background_ns += self.eviction.flush_all()
        return self.background_ns - before

    def close(self) -> None:
        """Flush and release every slab back to the rack."""
        self.flush()
        if self.replication is not None:
            self.replication.release_all_slabs()
        self.resource_manager.release_all()

    def __enter__(self) -> "KonaRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
