"""KLib's Resource Manager: slab pre-allocation and VFMem binding.

The resource manager talks to the rack controller *off the critical
path*: it requests slabs in batches, binds each slab to a slab-aligned
VFMem window in the remote-translation map, and installs always-present
page-table entries for the window (paper section 4.4, "Allocating
remote memory" — no physical memory is allocated, only translations to
the fake VFMem space).
"""

from __future__ import annotations

from typing import List, Optional

from ..common.errors import AllocationError
from ..common.stats import Counter
from ..cluster.controller import RackController
from ..cluster.slab import Slab
from ..fpga.translation import RemoteTranslationMap
from ..mem.address import AddressRange
from ..mem.pagetable import PageTable, Protection
from .config import KonaConfig


class ResourceManager:
    """Pre-allocates disaggregated memory and wires up translations."""

    def __init__(self, config: KonaConfig, controller: RackController,
                 translation: RemoteTranslationMap, vfmem: AddressRange,
                 page_table: Optional[PageTable] = None) -> None:
        self.config = config
        self.controller = controller
        self.translation = translation
        self.vfmem = vfmem
        self.page_table = page_table
        self._next_window = 0         # next unbound slab slot in VFMem
        self._windows: List[int] = [] # VFMem start addresses of bound windows
        self._slabs: List[Slab] = []
        self._replica_slabs: List[Slab] = []
        #: Replication manager (set by the runtime): learns each bound
        #: window's replica set so it can lease, promote and re-replicate.
        self.replication = None
        self.counters = Counter()

    @property
    def bound_bytes(self) -> int:
        """Remote memory currently reachable through VFMem."""
        return len(self._windows) * self.config.slab_bytes

    @property
    def vfmem_windows(self) -> int:
        """Total slab-sized windows VFMem can hold."""
        return self.vfmem.size // self.config.slab_bytes

    def ensure(self, nbytes: int) -> None:
        """Guarantee at least ``nbytes`` of bound remote memory exist.

        Called by AllocLib before an application allocation; grows the
        binding in slab batches so most calls are no-ops.
        """
        while self.bound_bytes < nbytes:
            self._grow()

    def _grow(self) -> None:
        windows_left = self.vfmem_windows - len(self._windows)
        if windows_left <= 0:
            raise AllocationError(
                f"VFMem exhausted: {self.vfmem_windows} windows bound")
        batch = min(self.config.slab_batch, windows_left)
        replicas_needed = self.config.replication_factor - 1
        primaries = self.controller.allocate_slabs(batch)
        self._slabs.extend(primaries)
        for primary in primaries:
            replica_slabs: List[Slab] = []
            if replicas_needed:
                replica_slabs = self.controller.allocate_slabs(
                    replicas_needed, exclude=[primary.node])
                self._replica_slabs.extend(replica_slabs)
            vf_addr = self.vfmem.start + self._next_window * self.config.slab_bytes
            self.translation.bind(vf_addr, primary,
                                  replicas=replica_slabs or None)
            if self.replication is not None:
                self.replication.register(vf_addr, primary, replica_slabs)
            self._windows.append(vf_addr)
            self._next_window += 1
            self._map_window(vf_addr)
        self.counters.add("slab_batches")
        self.counters.add("slabs_bound", len(primaries))

    def _map_window(self, vf_addr: int) -> None:
        """Install always-present PTEs covering one VFMem window.

        Pages are marked present immediately — VFMem is fake physical
        memory, so no data moves; this is what removes page faults from
        Kona's data path.
        """
        if self.page_table is None:
            return
        page_size = self.page_table.page_size
        first = vf_addr // page_size
        count = self.config.slab_bytes // page_size
        for vpn in range(first, first + count):
            self.page_table.map(vpn, pfn=vpn, present=True,
                                protection=Protection.READ_WRITE)
        self.counters.add("pages_mapped", count)

    def release_all(self) -> None:
        """Return every slab to the rack (process teardown)."""
        self.controller.release_slabs(self._slabs + self._replica_slabs)
        for vf_addr in self._windows:
            self.translation.unbind(vf_addr)
        self._slabs.clear()
        self._replica_slabs.clear()
        self._windows.clear()
        self._next_window = 0
        self.counters.add("teardowns")
