"""AllocLib: the allocation interposition library.

Applications keep calling ``malloc``/``free``/``mmap``; AllocLib
interposes (paper section 4.1) and serves them from VFMem-backed
memory, asking the Resource Manager to bind more slabs when the
reserve runs low.  The allocator is a simple segregated free-list over
a bump pointer — enough fidelity for the runtime's accounting; the
interesting behaviour (slab batching off the critical path) lives in
the Resource Manager.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..common import units
from ..common.errors import AllocationError, ConfigError
from ..common.stats import Counter
from ..mem.address import AddressRange, align_up
from ..mem.pagetable import Protection
from ..mem.vma import VMA, VMAMap
from .resource_manager import ResourceManager

#: Allocations are rounded up to this granularity (one cache line), so
#: distinct objects never share a line and dirty tracking stays precise.
MIN_ALIGN = units.CACHE_LINE


class AllocLib:
    """malloc/free/mmap interposition over VFMem."""

    def __init__(self, resource_manager: ResourceManager) -> None:
        self.rm = resource_manager
        self._bump = resource_manager.vfmem.start
        self._limit = resource_manager.vfmem.end
        self._live: Dict[int, int] = {}          # addr -> size
        self._free_lists: Dict[int, List[int]] = {}   # size -> [addr]
        #: Kernel-side region bookkeeping.  Kona touches this only at
        #: mmap time; page-based systems walk it on every fault.
        self.vmas = VMAMap()
        self.counters = Counter()
        self.bytes_allocated = 0
        self.bytes_freed = 0

    # -- malloc/free ---------------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes of transparent remote memory."""
        if size <= 0:
            raise ConfigError(f"malloc of {size} bytes")
        rounded = align_up(size, MIN_ALIGN)
        addr = self._take_from_free_list(rounded)
        if addr is None:
            addr = self._bump_allocate(rounded)
        self._live[addr] = rounded
        self.bytes_allocated += rounded
        self.counters.add("mallocs")
        return addr

    def free(self, addr: int) -> None:
        """Release an allocation back to the local free lists."""
        size = self._live.pop(addr, None)
        if size is None:
            raise AllocationError(f"free of unallocated address {addr:#x}")
        self._free_lists.setdefault(size, []).append(addr)
        self.bytes_freed += size
        self.counters.add("frees")

    def mmap(self, size: int) -> AddressRange:
        """Map a page-aligned region (large allocations take this path)."""
        if size <= 0:
            raise ConfigError(f"mmap of {size} bytes")
        rounded = align_up(size, units.PAGE_4K)
        self._bump = align_up(self._bump, units.PAGE_4K)
        addr = self._bump_allocate(rounded)
        self._live[addr] = rounded
        self.bytes_allocated += rounded
        region = AddressRange(addr, rounded)
        self.vmas.insert(VMA(region, Protection.READ_WRITE,
                             name="kona-remote", remote=True))
        self.counters.add("mmaps")
        return region

    # -- internals --------------------------------------------------------------------

    def _take_from_free_list(self, size: int) -> Optional[int]:
        bucket = self._free_lists.get(size)
        if bucket:
            self.counters.add("free_list_hits")
            return bucket.pop()
        return None

    def _bump_allocate(self, size: int) -> int:
        if self._bump + size > self._limit:
            raise AllocationError(
                f"VFMem address space exhausted "
                f"({self._limit - self._bump} bytes left, need {size})")
        # Make sure remote backing exists before handing out the range.
        needed = (self._bump + size) - self.rm.vfmem.start
        self.rm.ensure(needed)
        addr = self._bump
        self._bump += size
        return addr

    # -- inspection ---------------------------------------------------------------------

    @property
    def live_bytes(self) -> int:
        """Bytes currently allocated to the application."""
        return sum(self._live.values())

    def size_of(self, addr: int) -> int:
        """Size of a live allocation."""
        try:
            return self._live[addr]
        except KeyError:
            raise AllocationError(f"{addr:#x} is not a live allocation") from None

    def owns(self, addr: int) -> bool:
        """True if ``addr`` is inside any live allocation."""
        for start, size in self._live.items():
            if start <= addr < start + size:
                return True
        return False
