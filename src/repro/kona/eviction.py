"""The Eviction Handler: cache-line-granularity writeback via a CL log.

When FMem drops a page, only its *dirty cache lines* travel back to the
memory node (paper section 4.4): the handler scans the page's dirty
bitmap, copies the dirty lines into an RDMA-registered log buffer
(aggregating lines from many pages), and ships the log with few, large
RDMA writes.  A receiver thread on the memory node scatters the lines
and acknowledges.

Near-fully-dirty pages are cheaper to ship whole (one 4 KB write, no
log framing, no remote scatter), so a threshold switches strategy
per page — this is also what keeps Kona "on par" with page-granularity
eviction when every line is dirty (Figure 11a at 64 lines).

Replication (paper section 4.5): with ``replication_factor`` > 1 the
same data is written to each replica before the eviction completes;
the cost model charges the extra writes but they overlap on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common import units
from ..common.clock import Account
from ..common.errors import NetworkError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.stats import Counter
from ..cluster.controller import RackController
from ..fpga.translation import RemoteLocation, RemoteTranslationMap
from ..net.ring import RECORD_BYTES, LogRecord, pack_dirty_lines
from .config import KonaConfig


def _mask_segments(mask: int):
    """Contiguous dirty runs in a 64-bit line mask: (start, length)."""
    segments = []
    i = 0
    while i < units.LINES_PER_PAGE:
        if mask & (1 << i):
            start = i
            while i < units.LINES_PER_PAGE and mask & (1 << i):
                i += 1
            segments.append((start, i - start))
        else:
            i += 1
    return segments


@dataclass
class EvictionStats:
    """What eviction moved and how long each stage took."""

    pages_evicted: int = 0
    clean_pages: int = 0
    full_page_writes: int = 0
    lines_logged: int = 0
    dirty_bytes: int = 0          # useful payload (the dirty lines)
    wire_bytes: int = 0           # payload + log framing actually sent
    account: Account = field(default_factory=Account)

    @property
    def elapsed_ns(self) -> float:
        """Total eviction time across all stages."""
        return self.account.total

    def goodput_bytes_per_s(self) -> float:
        """Useful dirty bytes per second of eviction time (Figure 11)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.dirty_bytes / (self.elapsed_ns / units.S)


class EvictionHandler:
    """Aggregates dirty lines and writes them to memory nodes."""

    def __init__(self, config: KonaConfig, translation: RemoteTranslationMap,
                 controller: Optional[RackController] = None,
                 latency: LatencyModel = DEFAULT_LATENCY) -> None:
        self.config = config
        self.translation = translation
        self.controller = controller
        self.latency = latency
        self.stats = EvictionStats()
        self.counters = Counter()
        # Pending log records per destination node, staged in the
        # RDMA-registered buffer until a batch is worth a doorbell.
        self._pending: Dict[str, List[LogRecord]] = {}

    # -- the eviction sink (wired to MemoryAgent.on_page_eviction) -----------------

    def evict_page(self, vfmem_page_addr: int, dirty_mask: int) -> float:
        """Evict one page given its dirty-line mask; returns ns spent.

        Clean pages are dropped silently (no network at all) — the big
        structural win over page-based systems, which must either track
        at page granularity or rewrite clean data.
        """
        self.stats.pages_evicted += 1
        if dirty_mask == 0:
            self.stats.clean_pages += 1
            self.counters.add("silent_evictions")
            return 0.0
        dirty_lines = dirty_mask.bit_count()
        # Scanning the bitmap for set bits costs per tracked line.
        scan = self.latency.bitmap_scan_per_line_ns * units.LINES_PER_PAGE
        self.stats.account.charge("bitmap", scan)
        elapsed = scan
        if dirty_lines >= self.config.full_page_threshold:
            elapsed += self._write_full_page(vfmem_page_addr)
        else:
            elapsed += self._log_dirty_lines(vfmem_page_addr, dirty_mask)
        return elapsed

    # -- whole-page path ---------------------------------------------------------------

    def _write_full_page(self, vfmem_page_addr: int) -> float:
        page = self.config.page_size
        locations = self._locations(vfmem_page_addr)
        copy = self.latency.memcpy_ns(page)
        self.stats.account.charge("copy", copy)
        wire = 0.0
        for location in locations:
            self._check_alive(location)
            wire = max(wire, self.latency.rdma_transfer_ns(
                page, linked=True, signaled=False))
            self.stats.wire_bytes += page
        self.stats.account.charge("rdma_write", wire)
        self.stats.full_page_writes += 1
        self.stats.dirty_bytes += page
        self.counters.add("full_page_writes")
        return copy + wire

    # -- cache-line log path --------------------------------------------------------------

    def _log_dirty_lines(self, vfmem_page_addr: int, dirty_mask: int) -> float:
        primary = self.translation.resolve(vfmem_page_addr)
        line_addrs = [
            vfmem_page_addr + i * units.CACHE_LINE
            for i in range(units.LINES_PER_PAGE) if dirty_mask & (1 << i)
        ]
        records, _ = pack_dirty_lines([
            primary.remote_addr + (a - vfmem_page_addr) for a in line_addrs])
        # Copy each dirty segment into the registered log buffer (the
        # "Copy" slice of Figure 11c — the dominant cost).  Dirty lines
        # are cold in the CPU caches, so the copy model charges a DRAM
        # stall per segment, not a warm memcpy.
        segments = [length for _, length in _mask_segments(dirty_mask)]
        copy = self.latency.copy_segments_ns(segments)
        self.stats.account.charge("copy", copy)
        pending = self._pending.setdefault(primary.node, [])
        pending.extend(records)
        self.stats.lines_logged += len(records)
        self.stats.dirty_bytes += len(records) * units.CACHE_LINE
        elapsed = copy
        if len(pending) * RECORD_BYTES >= self.config.rdma_batch_bytes:
            elapsed += self.flush_node(primary.node)
        return elapsed

    def flush_node(self, node: str) -> float:
        """Ship the node's pending log with one RDMA write; wait for ack.

        Replica writes are fully priced (wire bytes and posting time)
        but only the primary's receiver thread is materialized in the
        simulation — replica receivers run the identical scatter loop,
        so modeling one is sufficient for every quantity we measure.
        """
        records = self._pending.pop(node, [])
        if not records:
            return 0.0
        log_bytes = len(records) * RECORD_BYTES
        replicas = max(self.config.replication_factor, 1)
        # A pipelined producer exposes only the posting cost and part of
        # the wire time (the NIC DMAs while the next batch is staged).
        posting = self.latency.rdma_linked_wr_ns + self.latency.rdma_nic_wr_ns
        wire = (posting + self.latency.log_wire_exposure
                * self.latency.rdma_per_byte_ns * log_bytes)
        # Replica writes are posted back-to-back; wire time overlaps but
        # each extra replica adds a posting cost.
        wire += (replicas - 1) * posting
        self.stats.account.charge("rdma_write", wire)
        self.stats.wire_bytes += log_bytes * replicas
        # Remote scatter + acknowledgment round trip, partially hidden
        # behind preparing the next batch (the small "Ack wait" slice
        # of Figure 11c).
        self._deliver(node, records)
        ack_exposed = self.latency.rdma_base_ns * 1.2
        self.stats.account.charge("ack_wait", ack_exposed)
        self.counters.add("log_flushes")
        return wire + ack_exposed

    def flush_all(self) -> float:
        """Flush every node's pending records (barrier/teardown)."""
        total = 0.0
        for node in list(self._pending):
            total += self.flush_node(node)
        return total

    # -- helpers ------------------------------------------------------------------------------

    def _locations(self, vfmem_page_addr: int) -> List[RemoteLocation]:
        if self.config.replication_factor > 1:
            return self.translation.resolve_replicas(vfmem_page_addr)[
                :self.config.replication_factor]
        return [self.translation.resolve(vfmem_page_addr)]

    def _check_alive(self, location: RemoteLocation) -> None:
        if self.controller is None:
            return
        node = self.controller.node(location.node)
        if not node.alive:
            raise NetworkError(f"memory node {location.node!r} is down")

    def _deliver(self, node_name: str, records: List[LogRecord]) -> None:
        """Hand the log batch to the memory node's receiver thread."""
        if self.controller is None:
            return
        node = self.controller.node(node_name)
        if not node.alive:
            raise NetworkError(f"memory node {node_name!r} is down")
        node.receive_log(records)
        receipt = node.drain_log()
        # Remote unpack time is remote CPU time; it overlaps with the
        # producer, so it is recorded but not charged to eviction.
        self.counters.add("records_delivered", receipt.records)

    @property
    def pending_records(self) -> int:
        """Records staged but not yet shipped."""
        return sum(len(v) for v in self._pending.values())
