"""The Eviction Handler: cache-line-granularity writeback via a CL log.

When FMem drops a page, only its *dirty cache lines* travel back to the
memory node (paper section 4.4): the handler scans the page's dirty
bitmap, copies the dirty lines into an RDMA-registered log buffer
(aggregating lines from many pages), and ships the log with few, large
RDMA writes.  A receiver thread on the memory node scatters the lines
and acknowledges.

Near-fully-dirty pages are cheaper to ship whole (one 4 KB write, no
log framing, no remote scatter), so a threshold switches strategy
per page — this is also what keeps Kona "on par" with page-granularity
eviction when every line is dirty (Figure 11a at 64 lines).

Replication (paper section 4.5): with ``replication_factor`` > 1 the
same data is written to each replica before the eviction completes;
the cost model charges the extra writes but they overlap on the wire.

Durability under faults (also section 4.5): a writeback whose target
node is unreachable is never dropped.  Dirty-line writes fail over to a
live replica when one exists; otherwise the records park in a bounded
:class:`PendingWritebackBuffer` and are redelivered by
:meth:`EvictionHandler.drain_recovered` once the node returns.  Flushes
to a live-but-flaky node retry under a seeded exponential-backoff
:class:`~repro.common.retry.Retrier` before parking.  When the park
fills past its watermark the handler signals backpressure, and records
pushed past hard capacity charge a producer-throttle stall — the buffer
still accepts them, because losing acknowledged-dirty data is the one
failure mode the paper's design rules out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..common import units
from ..common.clock import Account
from ..common.errors import NetworkError, RetryExhausted
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.retry import Retrier
from ..common.stats import Counter
from ..cluster.controller import RackController
from ..fpga.translation import RemoteLocation, RemoteTranslationMap
from ..net.fabric import Fabric
from ..net.ring import RECORD_BYTES, LogRecord, pack_dirty_lines
from ..obs.trace import Tracer, traced
from .config import KonaConfig


def _mask_segments(mask: int):
    """Contiguous dirty runs in a 64-bit line mask: (start, length).

    Bit tricks keep this O(runs) instead of O(64): ``mask & -mask``
    isolates the lowest set bit (skip the zeros below it in one step)
    and ``(mask + 1) & ~mask`` isolates the bit just above the trailing
    ones (the run length falls out of its position).
    """
    segments = []
    i = 0
    while mask:
        zeros = (mask & -mask).bit_length() - 1
        i += zeros
        mask >>= zeros
        run = ((mask + 1) & ~mask).bit_length() - 1   # trailing ones
        segments.append((i, run))
        i += run
        mask >>= run
    return segments


@dataclass
class EvictionStats:
    """What eviction moved and how long each stage took."""

    pages_evicted: int = 0
    clean_pages: int = 0
    full_page_writes: int = 0
    lines_logged: int = 0
    dirty_bytes: int = 0          # useful payload (the dirty lines)
    wire_bytes: int = 0           # payload + log framing actually sent
    account: Account = field(default_factory=Account)

    @property
    def elapsed_ns(self) -> float:
        """Total eviction time across all stages."""
        return self.account.total

    def goodput_bytes_per_s(self) -> float:
        """Useful dirty bytes per second of eviction time (Figure 11)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.dirty_bytes / (self.elapsed_ns / units.S)


class PendingWritebackBuffer:
    """Bounded per-node park for records whose destination is down.

    The buffer is the durability backstop: records enter when every
    path to their home node is dead and leave through
    :meth:`EvictionHandler.drain_recovered`.  ``backpressure`` trips at
    ``watermark * capacity`` so the producer can throttle before the
    hard limit; past capacity the buffer *still accepts* (dropping
    dirty data is not an option) but reports the overflow so the caller
    can charge a stall.
    """

    def __init__(self, capacity_records: int, watermark: float) -> None:
        self.capacity = capacity_records
        self.watermark = watermark
        self._parked: Dict[str, List[LogRecord]] = {}
        self.counters = Counter()

    def park(self, node: str, records: List[LogRecord]) -> int:
        """Park records destined for ``node``; returns overflow count."""
        if not records:
            return 0
        before = self.total_records
        self._parked.setdefault(node, []).extend(records)
        self.counters.add("records_parked", len(records))
        overflow = max(0, before + len(records) - self.capacity)
        if overflow:
            self.counters.add("overflow_records", overflow)
        return overflow

    def drain(self, node: str) -> List[LogRecord]:
        """Remove and return everything parked for ``node``."""
        records = self._parked.pop(node, [])
        if records:
            self.counters.add("records_drained", len(records))
        return records

    def nodes(self) -> List[str]:
        """Nodes with parked records."""
        return list(self._parked)

    @property
    def total_records(self) -> int:
        """Records currently parked across all nodes."""
        return sum(len(v) for v in self._parked.values())

    @property
    def backpressure(self) -> bool:
        """Whether occupancy crossed the throttle watermark."""
        return self.total_records >= self.watermark * self.capacity


class EvictionHandler:
    """Aggregates dirty lines and writes them to memory nodes."""

    def __init__(self, config: KonaConfig, translation: RemoteTranslationMap,
                 controller: Optional[RackController] = None,
                 latency: LatencyModel = DEFAULT_LATENCY,
                 retrier: Optional[Retrier] = None,
                 on_fault: Optional[Callable[[str], None]] = None,
                 fabric: Optional[Fabric] = None,
                 local_node: str = "compute",
                 tracer: Optional[Tracer] = None) -> None:
        self.config = config
        self.translation = translation
        self.controller = controller
        self.latency = latency
        self.retrier = retrier
        self.on_fault = on_fault
        self.fabric = fabric
        self.local_node = local_node
        self.tracer = tracer
        self.stats = EvictionStats()
        self.counters = Counter()
        #: Replication manager (set by the runtime when the factor > 1):
        #: routes writebacks by epoch, fences stale ones, mirrors
        #: delivered batches to backup stores.
        self.replication = None
        #: Data plane (set by ``KonaRuntime.attach_data_plane``): stamps
        #: records with line versions/payloads and keeps the
        #: acknowledged-write ledger for durability proofs.
        self.content = None
        # Pending log records per destination node, staged in the
        # RDMA-registered buffer until a batch is worth a doorbell.
        self._pending: Dict[str, List[LogRecord]] = {}
        self.writeback_buffer = PendingWritebackBuffer(
            config.pending_writeback_records,
            config.writeback_backpressure)

    # -- the eviction sink (wired to MemoryAgent.on_page_eviction) -----------------

    def evict_page(self, vfmem_page_addr: int, dirty_mask: int) -> float:
        """Evict one page given its dirty-line mask; returns ns spent.

        Clean pages are dropped silently (no network at all) — the big
        structural win over page-based systems, which must either track
        at page granularity or rewrite clean data.
        """
        self.stats.pages_evicted += 1
        if dirty_mask == 0:
            self.stats.clean_pages += 1
            self.counters.add("silent_evictions")
            return 0.0
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span("evict.page", "evict",
                             page=vfmem_page_addr,
                             dirty_lines=dirty_mask.bit_count()) as span:
                elapsed = self._evict_dirty(vfmem_page_addr, dirty_mask)
                span.extend(elapsed)
            return elapsed
        return self._evict_dirty(vfmem_page_addr, dirty_mask)

    def _evict_dirty(self, vfmem_page_addr: int, dirty_mask: int) -> float:
        dirty_lines = dirty_mask.bit_count()
        # Scanning the bitmap for set bits costs per tracked line.
        scan = self.latency.bitmap_scan_per_line_ns * units.LINES_PER_PAGE
        self.stats.account.charge("bitmap", scan)
        self._emit("evict.bitmap_scan", scan)
        elapsed = scan
        if dirty_lines >= self.config.full_page_threshold:
            elapsed += self._write_full_page(vfmem_page_addr)
        else:
            elapsed += self._log_dirty_lines(vfmem_page_addr, dirty_mask)
        return elapsed

    def _emit(self, name: str, dur_ns: float, **args) -> None:
        """Record a child span when the tracer is live (hot-path cheap)."""
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(name, dur_ns, "evict", **args)

    # -- whole-page path ---------------------------------------------------------------

    def _write_full_page(self, vfmem_page_addr: int) -> float:
        page = self.config.page_size
        locations = self._locations(vfmem_page_addr)
        copy = self.latency.memcpy_ns(page)
        self.stats.account.charge("copy", copy)
        self._emit("evict.copy", copy, nbytes=page)
        live = [loc for loc in locations if self._location_alive(loc)]
        self.stats.full_page_writes += 1
        self.stats.dirty_bytes += page
        self.counters.add("full_page_writes")
        if not live:
            # Every copy target is down: park the page as line records
            # addressed to the primary so recovery can redeliver it.
            full_mask = (1 << units.LINES_PER_PAGE) - 1
            records = self._records_for(vfmem_page_addr, full_mask,
                                        locations[0])
            self.counters.add("lines_enqueued", len(records))
            return copy + self._park_records(locations[0].node, records)
        if len(live) < len(locations):
            self.counters.add("replica_writes_skipped",
                              len(locations) - len(live))
        wire = 0.0
        for location in live:
            wire = max(wire, self.latency.rdma_transfer_ns(
                page, linked=True, signaled=False))
            self.stats.wire_bytes += page
        self.stats.account.charge("rdma_write", wire)
        self._emit("rdma.write", wire, nbytes=page * len(live),
                   full_page=True)
        if self.content is not None and self.controller is not None:
            # A whole-page write lands every written line's current
            # content on each live copy; the store fences versions, so
            # applying the same page twice is harmless.
            full_mask = (1 << units.LINES_PER_PAGE) - 1
            records = self._records_for(vfmem_page_addr, full_mask, live[0])
            for location in live:
                store = self.controller.node(location.node).store
                for record in records:
                    store.apply(record)
            self.content.acknowledge(records)
        return copy + wire

    # -- cache-line log path --------------------------------------------------------------

    def _log_dirty_lines(self, vfmem_page_addr: int, dirty_mask: int) -> float:
        primary = self.translation.resolve(vfmem_page_addr)
        target = self._live_location(vfmem_page_addr, primary)
        # Copy each dirty segment into the registered log buffer (the
        # "Copy" slice of Figure 11c — the dominant cost).  Dirty lines
        # are cold in the CPU caches, so the copy model charges a DRAM
        # stall per segment, not a warm memcpy.
        segments = [length for _, length in _mask_segments(dirty_mask)]
        copy = self.latency.copy_segments_ns(segments)
        self.stats.account.charge("copy", copy)
        self._emit("evict.copy", copy, segments=len(segments))
        if target is None:
            # Primary and every replica unreachable: park for recovery.
            records = self._records_for(vfmem_page_addr, dirty_mask, primary)
            self.stats.lines_logged += len(records)
            self.stats.dirty_bytes += len(records) * units.CACHE_LINE
            self.counters.add("lines_enqueued", len(records))
            return copy + self._park_records(primary.node, records)
        records = self._records_for(vfmem_page_addr, dirty_mask, target)
        pending = self._pending.setdefault(target.node, [])
        pending.extend(records)
        self.counters.add("lines_enqueued", len(records))
        self.stats.lines_logged += len(records)
        self.stats.dirty_bytes += len(records) * units.CACHE_LINE
        elapsed = copy
        if len(pending) * RECORD_BYTES >= self.config.rdma_batch_bytes:
            elapsed += self.flush_node(target.node)
        return elapsed

    def flush_node(self, node: str) -> float:
        """Ship the node's pending log with one RDMA write; wait for ack.

        Replica writes are fully priced (wire bytes and posting time)
        but only the primary's receiver thread is materialized in the
        simulation — replica receivers run the identical scatter loop,
        so modeling one is sufficient for every quantity we measure.
        """
        records = self._pending.pop(node, [])
        if not records:
            return 0.0
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span("evict.flush", "evict", node=node,
                             records=len(records)) as span:
                elapsed = self._flush_records(node, records)
                span.extend(elapsed)
            return elapsed
        return self._flush_records(node, records)

    def _flush_records(self, node: str, records: List[LogRecord]) -> float:
        elapsed = 0.0
        if self.replication is not None:
            # Epoch fence: records stamped under a deposed primary are
            # re-stamped and rerouted to the promoted one before they
            # touch the wire.
            records, moved = self.replication.redirect_records(node, records)
            for target, batch in moved.items():
                self.counters.add("lines_redirected", len(batch))
                self._pending.setdefault(target, []).extend(batch)
                elapsed += self.flush_node(target)
            if not records:
                return elapsed
        if not self._node_alive(node):
            # The node died between staging and the doorbell: park
            # without burning the retry budget on a known-dead target.
            self.counters.add("flushes_deferred")
            return elapsed + self._park_records(node, records)
        log_bytes = len(records) * RECORD_BYTES
        if (self.replication is not None and self.content is not None
                and self.fabric is not None):
            # Fan the write out to the primary plus each slot's live
            # backups; wire time overlaps, each extra destination adds
            # a posting, the slowest injected link delay gates the ack.
            dsts = [node] + self.replication.backup_nodes_for(records)
            wire = self.fabric.replicated_log_write_cost_ns(
                self.local_node, dsts, log_bytes)
            replicas = len(dsts)
        else:
            replicas = max(self.config.replication_factor, 1)
            # A pipelined producer exposes only the posting cost and
            # part of the wire time (the NIC DMAs while the next batch
            # is staged).
            posting = (self.latency.rdma_linked_wr_ns
                       + self.latency.rdma_nic_wr_ns)
            wire = (posting + self.latency.log_wire_exposure
                    * self.latency.rdma_per_byte_ns * log_bytes)
            # Replica writes are posted back-to-back; wire time overlaps
            # but each extra replica adds a posting cost.
            wire += (replicas - 1) * posting
        self.stats.account.charge("rdma_write", wire)
        self.stats.wire_bytes += log_bytes * replicas
        self._emit("rdma.write", wire, nbytes=log_bytes * replicas,
                   node=node)
        # Remote scatter + acknowledgment round trip, partially hidden
        # behind preparing the next batch (the small "Ack wait" slice
        # of Figure 11c).
        backoff_ns = 0.0
        try:
            if self.retrier is not None:
                self.retrier.call(lambda: self._deliver(node, records))
                backoff_ns = self.retrier.last_outcome.backoff_ns
                retries = self.retrier.last_outcome.attempts - 1
                if retries > 0:
                    self.counters.add("flush_retries", retries)
                    self.stats.account.charge("retry_backoff", backoff_ns)
                    self._emit("evict.retry_backoff", backoff_ns,
                               retries=retries)
            else:
                self._deliver(node, records)
        except (NetworkError, RetryExhausted):
            if self.retrier is not None:
                backoff_ns = self.retrier.last_outcome.backoff_ns
                self.counters.add(
                    "flush_retries", self.retrier.last_outcome.attempts - 1)
                self.stats.account.charge("retry_backoff", backoff_ns)
            self.counters.add("flush_failures")
            return elapsed + wire + backoff_ns + self._park_records(
                node, records)
        if self.replication is not None:
            self.replication.apply_to_backups(records)
        if self.content is not None:
            self.content.acknowledge(records)
        ack_exposed = self.latency.rdma_base_ns * 1.2
        self.stats.account.charge("ack_wait", ack_exposed)
        self._emit("evict.ack_wait", ack_exposed)
        self.counters.add("log_flushes")
        return elapsed + wire + backoff_ns + ack_exposed

    def flush_all(self) -> float:
        """Flush every node's pending records (barrier/teardown)."""
        total = 0.0
        for node in list(self._pending):
            total += self.flush_node(node)
        return total

    # -- helpers ------------------------------------------------------------------------------

    def _locations(self, vfmem_page_addr: int) -> List[RemoteLocation]:
        if self.config.replication_factor > 1:
            return self.translation.resolve_replicas(vfmem_page_addr)[
                :self.config.replication_factor]
        return [self.translation.resolve(vfmem_page_addr)]

    def _node_alive(self, node_name: str) -> bool:
        """Whether ``node_name`` is up *and* reachable from here.

        A partitioned node counts as dead for writeback purposes: its
        records park and drain once the partition heals.
        """
        if (self.fabric is not None
                and self.fabric.has_node(node_name)
                and not self.fabric.reachable(self.local_node, node_name)):
            return False
        if self.controller is None:
            return True
        return self.controller.node(node_name).alive

    def _location_alive(self, location: RemoteLocation) -> bool:
        return self._node_alive(location.node)

    def _live_location(self, vfmem_page_addr: int,
                       primary: RemoteLocation) -> Optional[RemoteLocation]:
        """Primary if alive, else the first live replica, else None."""
        if self._location_alive(primary):
            return primary
        for location in self.translation.resolve_replicas(
                vfmem_page_addr)[1:]:
            if self._location_alive(location):
                self.counters.add("eviction_failovers")
                return location
        return None

    def _records_for(self, vfmem_page_addr: int, dirty_mask: int,
                     location: RemoteLocation) -> List[LogRecord]:
        """Log records for a page's dirty lines, addressed at ``location``.

        With a data plane attached each record carries the line's VFMem
        address, write version, current epoch and modeled payload, so
        the receiving store can fence stale redeliveries and the
        durability ledger can match acknowledgments to writes.
        """
        offsets = [i * units.CACHE_LINE
                   for i in range(units.LINES_PER_PAGE)
                   if dirty_mask & (1 << i)]
        if self.content is None:
            records, _ = pack_dirty_lines(
                [location.remote_addr + off for off in offsets])
            return records
        epoch = (self.replication.epoch_of(vfmem_page_addr)
                 if self.replication is not None else 0)
        records = []
        for off in offsets:
            vfmem_addr = vfmem_page_addr + off
            version, payload = self.content.content(vfmem_addr)
            records.append(LogRecord(
                remote_addr=location.remote_addr + off,
                vfmem_addr=vfmem_addr, version=version,
                epoch=epoch, payload=payload))
        return records

    def _park_records(self, node: str, records: List[LogRecord]) -> float:
        """Park records for ``node`` until it recovers; returns stall ns."""
        self.counters.add("lines_requeued", len(records))
        overflow = self.writeback_buffer.park(node, records)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant("evict.park", "evict", node=node,
                                records=len(records), overflow=overflow)
        self._fault(f"writebacks parked for {node}")
        if overflow == 0:
            return 0.0
        # Past hard capacity the producer is throttled: model the wait
        # as one base round trip per overflowing record.
        stall = overflow * self.latency.rdma_base_ns
        self.stats.account.charge("backpressure_stall", stall)
        self.counters.add("backpressure_stalls")
        self._emit("evict.backpressure_stall", stall, overflow=overflow)
        return stall

    @traced("evict.redirect_parked", cat="recovery")
    def redirect_parked(self, dead_node: str) -> float:
        """Reroute writebacks parked for a node that just failed over.

        Once the replication manager promoted backups, records parked
        for the dead primary have a live home again: re-stamp them to
        the promoted primaries (epoch fence included) and flush there
        instead of waiting out the dead node's restart.  Records whose
        window has no live replica (orphaned slots) stay parked.
        """
        if self.replication is None:
            return 0.0
        records = self.writeback_buffer.drain(dead_node)
        if not records:
            return 0.0
        keep, moved = self.replication.redirect_records(dead_node, records)
        total = 0.0
        if keep:
            # No promoted home for these; they wait for the node itself.
            self.writeback_buffer.park(dead_node, keep)
        for target, batch in moved.items():
            self.counters.add("lines_redelivered", len(batch))
            self.counters.add("lines_redirected", len(batch))
            self._pending.setdefault(target, []).extend(batch)
            total += self.flush_node(target)
        return total

    @traced("evict.drain_recovered", cat="recovery")
    def drain_recovered(self) -> float:
        """Redeliver parked writebacks to every node that came back.

        Called on the recovery path; returns simulated ns spent.  Nodes
        still down keep their parked records.
        """
        total = 0.0
        for node in self.writeback_buffer.nodes():
            if not self._node_alive(node):
                continue
            records = self.writeback_buffer.drain(node)
            self.counters.add("lines_redelivered", len(records))
            self._pending.setdefault(node, []).extend(records)
            total += self.flush_node(node)
        return total

    def _deliver(self, node_name: str, records: List[LogRecord]) -> None:
        """Hand the log batch to the memory node's receiver thread."""
        if self.controller is None:
            return
        node = self.controller.node(node_name)
        if not node.alive:
            raise NetworkError(f"memory node {node_name!r} is down")
        if (self.fabric is not None and self.fabric.has_node(node_name)
                and self.fabric.drops_transfer(self.local_node, node_name)):
            raise NetworkError(
                f"flaky link dropped log flush to {node_name!r}")
        node.receive_log(records)
        receipt = node.drain_log()
        # Remote unpack time is remote CPU time; it overlaps with the
        # producer, so it is recorded but not charged to eviction.
        self.counters.add("records_delivered", receipt.records)

    def _fault(self, reason: str) -> None:
        if self.on_fault is not None:
            self.on_fault(reason)

    @property
    def pending_records(self) -> int:
        """Records staged but not yet shipped."""
        return sum(len(v) for v in self._pending.values())

    @property
    def parked_records(self) -> int:
        """Records parked awaiting a node recovery."""
        return self.writeback_buffer.total_records

    @property
    def backpressure(self) -> bool:
        """Whether the pending-writeback park is past its watermark."""
        return self.writeback_buffer.backpressure
