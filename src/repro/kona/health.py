"""Runtime health state machine (paper section 4.5).

A Kona deployment is **HEALTHY** until a fault (dead memory node,
network partition, flaky link) forces a fallback path, at which point
it is **DEGRADED**: fetches fail over to replicas, pages degrade to
fault-on-access, and dirty writebacks park in the pending buffer.  When
the operator (or the chaos campaign) signals that the outage cleared,
the runtime enters **RECOVERING** while it drains parked writebacks and
re-arms degraded pages, then returns to HEALTHY.

The monitor charges wall time in each state to the *simulated* clock,
so campaigns can report MTTR and time-in-degraded deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import List, Optional, Tuple

from typing import Any, Callable, Dict

from ..common.clock import SimClock
from ..common.errors import SimulationError
from ..common.stats import Counter
from ..obs.trace import Tracer


class HealthState(Enum):
    """Coarse runtime health, in degradation order."""

    HEALTHY = auto()
    DEGRADED = auto()
    RECOVERING = auto()


#: Legal transitions of the health state machine.
_TRANSITIONS = {
    (HealthState.HEALTHY, HealthState.DEGRADED),
    (HealthState.DEGRADED, HealthState.RECOVERING),
    (HealthState.RECOVERING, HealthState.HEALTHY),
    # A relapse: a second fault lands while draining the first.
    (HealthState.RECOVERING, HealthState.DEGRADED),
}


@dataclass(frozen=True)
class Incident:
    """One completed degradation episode."""

    degraded_at_ns: float
    recovered_at_ns: float
    reason: str

    @property
    def mttr_ns(self) -> float:
        """Time from degradation to full recovery."""
        return self.recovered_at_ns - self.degraded_at_ns


class HealthMonitor:
    """Tracks the HEALTHY / DEGRADED / RECOVERING state machine."""

    def __init__(self, clock: SimClock,
                 tracer: Optional[Tracer] = None) -> None:
        self.clock = clock
        self.tracer = tracer
        self.state = HealthState.HEALTHY
        self.counters = Counter()
        self.transitions: List[Tuple[float, str]] = []
        self.transition_context: List[Dict[str, Any]] = []
        self.context_providers: List[Callable[[str], Dict[str, Any]]] = []
        self.incidents: List[Incident] = []
        self._entered_at = clock.now
        self._degraded_at: Optional[float] = None
        self._degraded_reason = ""
        self._time_in: dict = {state: 0.0 for state in HealthState}

    # -- transitions -------------------------------------------------------------

    def degrade(self, reason: str = "") -> None:
        """Enter DEGRADED (idempotent while already degraded)."""
        if self.state is HealthState.DEGRADED:
            self.counters.add("repeat_faults")
            return
        self._move(HealthState.DEGRADED, reason=reason)
        if self._degraded_at is None:
            self._degraded_at = self.clock.now
            self._degraded_reason = reason
        self.counters.add("degradations")

    def start_recovery(self) -> None:
        """Enter RECOVERING once the underlying outage has cleared."""
        if self.state is HealthState.RECOVERING:
            return
        self._move(HealthState.RECOVERING)
        self.counters.add("recoveries_started")

    def recovered(self) -> None:
        """Return to HEALTHY; closes the open incident and records MTTR."""
        self._move(HealthState.HEALTHY)
        if self._degraded_at is not None:
            self.incidents.append(Incident(
                degraded_at_ns=self._degraded_at,
                recovered_at_ns=self.clock.now,
                reason=self._degraded_reason))
            self._degraded_at = None
            self._degraded_reason = ""
        self.counters.add("recoveries_completed")

    def add_context_provider(
            self, provider: Callable[[str], Dict[str, Any]]) -> None:
        """Attach a context source consulted on every transition.

        ``provider(new_state_name)`` returns a dict merged into the
        transition's context — this is how the SLO engine
        (:meth:`repro.obs.slo.SLOEngine.attach`) makes DEGRADED /
        RECOVERING transitions carry the alerts active at that instant.
        """
        self.context_providers.append(provider)

    @property
    def annotated_transitions(self) -> List[Tuple[float, str,
                                                  Dict[str, Any]]]:
        """(ns, state, context) per transition, in order."""
        return [(ts, name, ctx) for (ts, name), ctx
                in zip(self.transitions, self.transition_context)]

    def _move(self, to: HealthState, reason: str = "") -> None:
        if (self.state, to) not in _TRANSITIONS:
            raise SimulationError(
                f"illegal health transition {self.state.name} -> {to.name}")
        came_from = self.state
        self._time_in[self.state] += self.clock.now - self._entered_at
        self.state = to
        self._entered_at = self.clock.now
        self.transitions.append((self.clock.now, to.name))
        context: Dict[str, Any] = {}
        for provider in self.context_providers:
            extra = provider(to.name)
            if extra:
                context.update(extra)
        self.transition_context.append(context)
        if self.tracer is not None and self.tracer.enabled:
            # Health transitions live in the trace itself, so MTTR is
            # derivable from DEGRADED -> HEALTHY instants alone.
            args = {"from": came_from.name}
            if reason:
                args["reason"] = reason
            alerts = context.get("alerts")
            if alerts:
                args["alerts"] = list(alerts)
            self.tracer.instant(f"health.{to.name}", "health", **args)

    # -- reporting ---------------------------------------------------------------

    def time_in_ns(self, state: HealthState) -> float:
        """Cumulative simulated ns spent in ``state`` (including now)."""
        accrued = self._time_in[state]
        if self.state is state:
            accrued += self.clock.now - self._entered_at
        return accrued

    @property
    def time_in_degraded_ns(self) -> float:
        """Simulated ns not fully healthy (DEGRADED plus RECOVERING)."""
        return (self.time_in_ns(HealthState.DEGRADED)
                + self.time_in_ns(HealthState.RECOVERING))

    @property
    def mttr_ns(self) -> float:
        """Mean time to repair over completed incidents (0 if none)."""
        if not self.incidents:
            return 0.0
        return (sum(i.mttr_ns for i in self.incidents)
                / len(self.incidents))

    @property
    def healthy(self) -> bool:
        """Whether the runtime is fully healthy right now."""
        return self.state is HealthState.HEALTHY
