"""YCSB-style workload driver for the remote KV store.

The Yahoo Cloud Serving Benchmark's core workload mixes are the lingua
franca of KV-store evaluation; running them against
:class:`~repro.apps.kvstore.RemoteKVStore` measures how a real service
pattern behaves on disaggregated memory — the end-to-end view the
paper's Redis experiments motivate.

Implemented mixes (request distribution is Zipfian, as in YCSB):

* **A** — update heavy (50/50 read/update)
* **B** — read mostly (95/5)
* **C** — read only
* **D** — read latest (95/5 with inserts, latest-skewed reads)
* **F** — read-modify-write
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..common.errors import ConfigError
from .kvstore import RemoteKVStore

#: (read, update, insert, rmw) fractions per mix.
MIXES: Dict[str, tuple] = {
    "A": (0.50, 0.50, 0.00, 0.00),
    "B": (0.95, 0.05, 0.00, 0.00),
    "C": (1.00, 0.00, 0.00, 0.00),
    "D": (0.95, 0.00, 0.05, 0.00),
    "F": (0.50, 0.00, 0.00, 0.50),
}


@dataclass
class YCSBResult:
    """Outcome of one YCSB run."""

    mix: str
    operations: int
    reads: int = 0
    updates: int = 0
    inserts: int = 0
    rmws: int = 0
    stall_ns: float = 0.0
    remote_fetches: int = 0
    dirty_lines: int = 0

    def stall_per_op_ns(self) -> float:
        """Average memory-stall time per operation."""
        return self.stall_ns / max(self.operations, 1)


class YCSBDriver:
    """Runs YCSB core mixes against a RemoteKVStore."""

    def __init__(self, store: RemoteKVStore, records: int = 1000,
                 value_bytes: int = 100, zipf_s: float = 1.2,
                 seed: int = 0) -> None:
        if records <= 0:
            raise ConfigError("records must be positive")
        self.store = store
        self.records = records
        self.value_bytes = value_bytes
        self.zipf_s = zipf_s
        self._rng = np.random.default_rng(seed)
        self._next_insert = records

    def load(self) -> None:
        """The YCSB load phase: populate the record space."""
        for i in range(self.records):
            self.store.put(self._key(i), self._value(i))

    def run(self, mix: str, operations: int = 2000) -> YCSBResult:
        """Execute one mix; returns per-op accounting."""
        try:
            read_f, update_f, insert_f, rmw_f = MIXES[mix.upper()]
        except KeyError:
            raise ConfigError(
                f"unknown mix {mix!r}; choose from {sorted(MIXES)}") from None
        result = YCSBResult(mix=mix.upper(), operations=operations)
        runtime = self.store.runtime
        fetches_before = runtime.agent.counters["remote_fetches"]
        stall_before = self.store.stats.stall_ns
        choices = self._rng.random(operations)
        for roll in choices.tolist():
            if roll < read_f:
                self.store.get(self._pick_key(mix))
                result.reads += 1
            elif roll < read_f + update_f:
                key = self._pick_key(mix)
                self.store.put(key, self._value(hash(key) & 0xFFFF))
                result.updates += 1
            elif roll < read_f + update_f + insert_f:
                self.store.put(self._key(self._next_insert),
                               self._value(self._next_insert))
                self._next_insert += 1
                result.inserts += 1
            else:
                key = self._pick_key(mix)
                value = self.store.get(key) or b""
                self.store.put(key, value[:self.value_bytes // 2]
                               + b"!" * (self.value_bytes // 2))
                result.rmws += 1
        result.stall_ns = self.store.stats.stall_ns - stall_before
        result.remote_fetches = (runtime.agent.counters["remote_fetches"]
                                 - fetches_before)
        runtime.cpu_cache.flush_tracked()
        result.dirty_lines = runtime.agent.bitmap.total_dirty_lines()
        return result

    # -- key selection ------------------------------------------------------------

    def _key(self, i: int) -> str:
        return f"user{i:08d}"

    def _value(self, i: int) -> bytes:
        payload = f"field-{i}-".encode()
        reps = -(-self.value_bytes // len(payload))
        return (payload * reps)[:self.value_bytes]

    def _pick_key(self, mix: str) -> str:
        population = self._next_insert
        if mix.upper() == "D":
            # Read-latest: skew toward recently inserted records.
            offset = int(self._rng.zipf(self.zipf_s)) - 1
            index = max(population - 1 - offset, 0)
        else:
            index = (int(self._rng.zipf(self.zipf_s)) - 1) % population
            # Spread the hot ranks across the keyspace.
            index = (index * 2654435761) % population
        return self._key(index)
