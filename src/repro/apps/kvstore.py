"""A key-value store living in Kona-managed disaggregated memory.

Open-addressing hash table: a bucket array plus a bump-allocated value
log, both in memory the runtime backs remotely.  Every probe, header
read, and value write goes through :meth:`KonaRuntime.read`/
:meth:`~repro.kona.KonaRuntime.write`, so the store transparently gets
fault-free fetches, line-granularity dirty tracking, and dirty-line
eviction — without containing a single line of remote-memory code.

The simulated memory substrate carries no payload bytes, so the store
keeps a host-side mirror of the values for correctness while all data
*movement* happens through the runtime; the mirror is what a unit test
compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..common import units
from ..common.errors import AllocationError, ConfigError
from ..kona.runtime import KonaRuntime

#: Bucket record: 8 B key hash + 8 B value address + 4 B value size.
BUCKET_BYTES = 20
#: Value record header preceding the payload in the value log.
VALUE_HEADER = 8


@dataclass
class KVStats:
    """Operation counters and accumulated memory-stall time."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    hits: int = 0
    misses: int = 0
    probes: int = 0
    stall_ns: float = 0.0


class RemoteKVStore:
    """An open-addressing hash table over a Kona runtime."""

    def __init__(self, runtime: KonaRuntime, capacity: int = 4096,
                 value_log_bytes: int = 8 * units.MB) -> None:
        if capacity <= 0 or capacity & (capacity - 1):
            raise ConfigError("capacity must be a positive power of two")
        self.runtime = runtime
        self.capacity = capacity
        self._buckets = runtime.mmap(capacity * BUCKET_BYTES)
        self._log = runtime.mmap(value_log_bytes)
        self._log_head = self._log.start
        # Host-side shadow state: slot occupancy and value mirror.
        self._slots: Dict[int, str] = {}       # slot -> key
        self._values: Dict[str, bytes] = {}
        self._value_addr: Dict[str, int] = {}
        self.stats = KVStats()

    # -- hashing -------------------------------------------------------------------

    @staticmethod
    def _hash(key: str) -> int:
        h = 14695981039346656037
        for ch in key.encode():
            h = ((h ^ ch) * 1099511628211) & 0xFFFFFFFFFFFFFFFF
        return h

    def _bucket_addr(self, slot: int) -> int:
        return self._buckets.start + slot * BUCKET_BYTES

    def _find_slot(self, key: str, for_insert: bool) -> Optional[int]:
        """Linear probing; each probe reads the bucket record remotely."""
        slot = self._hash(key) & (self.capacity - 1)
        for _ in range(self.capacity):
            self.stats.probes += 1
            self.stats.stall_ns += self.runtime.read(
                self._bucket_addr(slot), BUCKET_BYTES)
            occupant = self._slots.get(slot)
            if occupant is None:
                return slot if for_insert else None
            if occupant == key:
                return slot
            slot = (slot + 1) & (self.capacity - 1)
        return None

    # -- the API -----------------------------------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        """Insert or update a key."""
        slot = self._find_slot(key, for_insert=True)
        if slot is None:
            raise AllocationError("hash table is full")
        payload = VALUE_HEADER + len(value)
        if self._log_head + payload > self._log.end:
            raise AllocationError("value log exhausted")
        value_addr = self._log_head
        self._log_head += -(-payload // units.CACHE_LINE) * units.CACHE_LINE
        # Write the value bytes, then publish the bucket record.
        self.stats.stall_ns += self.runtime.write(value_addr, payload)
        self.stats.stall_ns += self.runtime.write(
            self._bucket_addr(slot), BUCKET_BYTES)
        self._slots[slot] = key
        self._values[key] = bytes(value)
        self._value_addr[key] = value_addr
        self.stats.puts += 1

    def get(self, key: str) -> Optional[bytes]:
        """Look a key up; returns None when absent."""
        self.stats.gets += 1
        slot = self._find_slot(key, for_insert=False)
        if slot is None or self._slots.get(slot) != key:
            self.stats.misses += 1
            return None
        value = self._values[key]
        self.stats.stall_ns += self.runtime.read(
            self._value_addr[key], VALUE_HEADER + len(value))
        self.stats.hits += 1
        return value

    def delete(self, key: str) -> bool:
        """Remove a key; returns True if it existed.

        Uses tombstone-free backward-shift deletion on the shadow
        state; the bucket rewrite is what touches remote memory.
        """
        slot = self._find_slot(key, for_insert=False)
        if slot is None or self._slots.get(slot) != key:
            return False
        self.stats.stall_ns += self.runtime.write(
            self._bucket_addr(slot), BUCKET_BYTES)
        del self._slots[slot]
        del self._values[key]
        del self._value_addr[key]
        self._shift_back(slot)
        self.stats.deletes += 1
        return True

    def _shift_back(self, hole: int) -> None:
        slot = (hole + 1) & (self.capacity - 1)
        while slot in self._slots:
            key = self._slots[slot]
            home = self._hash(key) & (self.capacity - 1)
            if self._distance(home, hole) < self._distance(home, slot):
                self.stats.stall_ns += self.runtime.write(
                    self._bucket_addr(hole), BUCKET_BYTES)
                self.stats.stall_ns += self.runtime.write(
                    self._bucket_addr(slot), BUCKET_BYTES)
                self._slots[hole] = key
                del self._slots[slot]
                hole = slot
            slot = (slot + 1) & (self.capacity - 1)

    def _distance(self, home: int, slot: int) -> int:
        return (slot - home) & (self.capacity - 1)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: str) -> bool:
        return key in self._values
