"""Applications built on the Kona public API.

These are consumers of the runtime, not part of it: a key-value store
and a graph engine whose data lives transparently in disaggregated
memory.  They demonstrate (and test) that unmodified application logic
— hash probing, CSR traversal — runs on Kona with nothing but a
``malloc``/``read``/``write`` contract.
"""

from .graph import RemoteGraph
from .kvstore import RemoteKVStore
from .ycsb import MIXES, YCSBDriver, YCSBResult

__all__ = ["MIXES", "RemoteGraph", "RemoteKVStore", "YCSBDriver",
           "YCSBResult"]
