"""A graph engine over Kona-managed disaggregated memory.

Stores a graph in CSR form — an offsets array and an edge array — in
remotely-backed memory and runs BFS and PageRank against it.  Every
offset lookup and edge scan is a runtime read, so traversal exhibits
exactly the access pattern the paper's graph workloads (GraphLab) put
on remote memory: clustered reads over the vertex arrays, strided
scans over the edge lists, and per-iteration writes to a rank/level
array.

Results are computed with plain Python/numpy on a host-side mirror of
the arrays (the simulated memory carries no payload); the remote
traffic is the point.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..common import units
from ..common.errors import ConfigError
from ..kona.runtime import KonaRuntime

#: Bytes per CSR entry (vertex offset or edge id) and per rank cell.
ENTRY = 8


class RemoteGraph:
    """CSR graph resident in disaggregated memory."""

    def __init__(self, runtime: KonaRuntime,
                 edges: Sequence[Tuple[int, int]],
                 num_vertices: Optional[int] = None) -> None:
        if not edges:
            raise ConfigError("graph needs at least one edge")
        self.runtime = runtime
        arr = np.asarray(edges, dtype=np.int64)
        n = int(arr.max()) + 1 if num_vertices is None else num_vertices
        self.num_vertices = n
        # Build CSR (undirected: insert both directions).
        both = np.concatenate([arr, arr[:, ::-1]])
        order = np.lexsort((both[:, 1], both[:, 0]))
        both = both[order]
        self._dst = both[:, 1].copy()
        self._offsets = np.zeros(n + 1, dtype=np.int64)
        np.add.at(self._offsets, both[:, 0] + 1, 1)
        self._offsets = np.cumsum(self._offsets)
        # Remote layout: offsets | edges | per-vertex state.
        self.offsets_region = runtime.mmap((n + 1) * ENTRY)
        self.edges_region = runtime.mmap(max(len(both) * ENTRY,
                                             units.PAGE_4K))
        self.state_region = runtime.mmap(max(n * ENTRY, units.PAGE_4K))
        self.stall_ns = 0.0
        self._load()

    def _load(self) -> None:
        """Populate the remote arrays (sequential bulk writes)."""
        self.stall_ns += self.runtime.write(self.offsets_region.start,
                                            self.offsets_region.size)
        self.stall_ns += self.runtime.write(self.edges_region.start,
                                            self.edges_region.size)

    # -- remote access helpers -------------------------------------------------------

    def _read_offsets(self, vertex: int) -> Tuple[int, int]:
        self.stall_ns += self.runtime.read(
            self.offsets_region.start + vertex * ENTRY, 2 * ENTRY)
        return int(self._offsets[vertex]), int(self._offsets[vertex + 1])

    def _read_edges(self, begin: int, end: int) -> np.ndarray:
        if end > begin:
            self.stall_ns += self.runtime.read(
                self.edges_region.start + begin * ENTRY,
                (end - begin) * ENTRY)
        return self._dst[begin:end]

    def _write_state(self, vertex: int) -> None:
        self.stall_ns += self.runtime.write(
            self.state_region.start + vertex * ENTRY, ENTRY)

    def degree(self, vertex: int) -> int:
        """Out-degree of a vertex (one remote offsets read)."""
        begin, end = self._read_offsets(vertex)
        return end - begin

    # -- algorithms ---------------------------------------------------------------------

    def bfs(self, source: int = 0) -> Dict[int, int]:
        """Breadth-first levels from ``source``."""
        if not 0 <= source < self.num_vertices:
            raise ConfigError(f"source {source} out of range")
        levels = {source: 0}
        self._write_state(source)
        frontier = deque([source])
        while frontier:
            vertex = frontier.popleft()
            begin, end = self._read_offsets(vertex)
            for neighbor in self._read_edges(begin, end).tolist():
                if neighbor not in levels:
                    levels[neighbor] = levels[vertex] + 1
                    self._write_state(neighbor)
                    frontier.append(neighbor)
        return levels

    def pagerank(self, iterations: int = 10,
                 damping: float = 0.85) -> np.ndarray:
        """Power-iteration PageRank with per-iteration remote writes."""
        if iterations <= 0:
            raise ConfigError("iterations must be positive")
        n = self.num_vertices
        rank = np.full(n, 1.0 / n)
        degrees = np.diff(self._offsets)
        for _ in range(iterations):
            contribution = np.where(degrees > 0, rank / np.maximum(degrees, 1),
                                    0.0)
            nxt = np.full(n, (1.0 - damping) / n)
            for vertex in range(n):
                begin, end = self._read_offsets(vertex)
                neighbors = self._read_edges(begin, end)
                if neighbors.size:
                    nxt[vertex] += damping * float(
                        contribution[neighbors].sum())
                self._write_state(vertex)
            rank = nxt
        return rank
