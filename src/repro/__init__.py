"""repro: a reproduction of "Rethinking Software Runtimes for
Disaggregated Memory" (Calciu et al., ASPLOS 2021 — the Kona system)
as a simulation-backed Python library.

Public API layers:

* :mod:`repro.kona` — the Kona runtime (the paper's contribution):
  coherence-based remote memory with cache-line dirty tracking.
* :mod:`repro.baselines` — Kona-VM, LegoOS, Infiniswap cost models and
  the Figure 11 eviction strategies.
* :mod:`repro.tools` — KCacheSim, KTracker, and the Pin-style trace
  analyzer used by the evaluation.
* :mod:`repro.workloads` — synthetic models of the paper's nine
  application workloads.
* Substrates: :mod:`repro.cache`, :mod:`repro.coherence`,
  :mod:`repro.net`, :mod:`repro.vm`, :mod:`repro.mem`,
  :mod:`repro.cluster`, :mod:`repro.fpga`.

Quick start::

    import repro

    runtime = repro.KonaRuntime()
    buf = runtime.mmap(16 * repro.units.MB)
    runtime.write(buf.start, 64)          # no page fault, line-tracked
    print(runtime.tracker.dirty_bytes_cacheline())
"""

from .common import units
from .common.latency import DEFAULT_LATENCY, LatencyModel
from .kona import KonaConfig, KonaRuntime
from .workloads import WORKLOADS

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_LATENCY",
    "KonaConfig",
    "KonaRuntime",
    "LatencyModel",
    "WORKLOADS",
    "__version__",
    "units",
]
