"""The control tower: SLO-monitored chaos campaign with profiling.

This is the Kona-specific wiring for the generic analysis layer in
:mod:`repro.obs`: it runs the section 4.5 node-failure campaign with
the full flight recorder enabled (spans, sampler, time-series store),
attaches an :class:`~repro.obs.slo.SLOEngine` with the Kona rule set
to the runtime's health monitor, and returns everything the ``repro
profile`` / ``repro slo`` commands render:

* the campaign result and its recovery invariants;
* the trace profile (self time, critical path, stall windows);
* the burn-rate alert timeline and per-rule compliance verdicts;
* the health transitions *annotated* with the alerts active at each
  transition instant — a DEGRADED transition carries the alert that
  explains it, not just a timestamp.

The rule set lives here (not in ``repro.obs``) because metric names
and realistic bounds are runtime knowledge; the engine itself never
imports Kona code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..chaos import CampaignResult
from ..obs import (
    Alert,
    FlightRecorder,
    ProfileReport,
    SLOEngine,
    SLORule,
    profile,
)
from .chaos import run_chaos
from .flight import SAMPLE_INTERVAL_NS

#: Span categories that count as stall time in windowed attribution.
STALL_CATEGORIES = ("fetch", "evict", "rdma", "net", "coherence", "fault")

#: Default attribution window for ``repro profile`` (sim ns).
STALL_WINDOW_NS = 100_000.0

#: The Kona SLO rule set evaluated over every control-tower campaign.
#:
#: Bounds are calibrated against the default campaign scale (seed 0,
#: 8k accesses): the fault-path rules are *meant* to burn during the
#: outage — that is what ties alerts to the DEGRADED transition —
#: while the recovery rules (park drained, MTTR ceiling, stall tail)
#: must hold once the campaign ends.
KONA_SLOS: Tuple[SLORule, ...] = (
    SLORule(name="no-degraded-pages", metric="faults.degraded_pages",
            kind="rate", op="<=", bound=0.0,
            description="no page degrades to fault-on-access"),
    SLORule(name="no-replica-failovers", metric="faults.replica_failovers",
            kind="rate", op="<=", bound=0.0,
            description="no fetch fails over to a replica"),
    SLORule(name="no-eviction-backpressure",
            metric="health.backpressure_stalls",
            kind="rate", op="<=", bound=0.0,
            description="the writeback park never stalls the app"),
    SLORule(name="park-drained", metric="health.parked_records",
            kind="level", op="<=", bound=0.0,
            description="no dirty records parked awaiting a dead node"),
    SLORule(name="access-stall-p99", metric="kona_access_stall_ns",
            kind="quantile", op="<=", bound=60_000.0, quantile=0.99,
            description="p99 miss stall stays under 60 us"),
    SLORule(name="mttr-ceiling", metric="health.mttr_ns",
            kind="level", op="<=", bound=2_000_000.0,
            description="mean time to repair stays under 2 ms"),
)


@dataclass
class ControlReport:
    """Everything one control-tower campaign produced."""

    result: CampaignResult
    recorder: FlightRecorder
    engine: SLOEngine
    trace_profile: ProfileReport
    annotated_transitions: List[Tuple[float, str, Dict[str, Any]]]

    @property
    def alerts(self) -> List[Alert]:
        """Every alert raised (hook plus sweep), in time order."""
        return sorted(self.engine.alerts, key=lambda a: (a.at_ns, a.rule))

    def degraded_alerts(self) -> List[str]:
        """Alert briefs attached to DEGRADED transitions.

        Non-empty means the burn-rate alerting explained at least one
        degradation *at the instant it happened* — the acceptance
        check behind ``repro slo``.
        """
        briefs: List[str] = []
        for _, state, context in self.annotated_transitions:
            if state == "DEGRADED":
                briefs.extend(context.get("alerts", []))
        return briefs

    def verdict_rows(self) -> List[Tuple[str, str, str, str]]:
        """(rule, objective, measured good fraction, met) table rows."""
        by_name = {rule.name: rule for rule in self.engine.rules}
        return [(name, f"{by_name[name].objective:.3f}",
                 f"{good_fraction:.3f}", "met" if met else "VIOLATED")
                for name, good_fraction, met in self.engine.verdicts()]


def run_control(seed: int = 0, ops: int = 8_000,
                rules: Optional[Sequence[SLORule]] = None,
                sample_interval_ns: float = SAMPLE_INTERVAL_NS,
                max_events: int = 500_000) -> ControlReport:
    """Run the SLO-monitored chaos campaign; returns a ControlReport.

    The SLO engine is attached to the health monitor *before* the
    first access, so every health transition is annotated with the
    alerts firing at that instant; after the campaign a full sweep
    replays the sampled series so the alert timeline is complete.
    """
    recorder = FlightRecorder(tracing=True,
                              sample_interval_ns=sample_interval_ns,
                              max_events=max_events)
    wiring: Dict[str, Any] = {}

    def attach_engine(runtime) -> None:
        """Bind the SLO engine to this campaign's health monitor."""
        engine = SLOEngine(recorder.tsdb,
                           list(rules if rules is not None else KONA_SLOS),
                           registry=recorder.registry,
                           sampler=recorder.sampler)
        engine.attach(runtime.health)
        wiring["engine"] = engine

    result = run_chaos(seed=seed, ops=ops, recorder=recorder,
                       on_runtime=attach_engine)
    engine: SLOEngine = wiring["engine"]
    engine.sweep()
    return ControlReport(
        result=result,
        recorder=recorder,
        engine=engine,
        trace_profile=profile(recorder.tracer.events),
        annotated_transitions=list(result.health_transitions),
    )
