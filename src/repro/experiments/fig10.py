"""Figure 10: tracking speedup relative to write-protection (section 6.3).

For each workload, KTracker computes how much application runtime
write-protection-based dirty tracking steals (protect rounds + one
minor fault per dirtied page per window, at the application's *native*
dirty-page rate).  Coherence-based tracking is free for the
application, so that stolen share is the speedup.  The paper reports a
range from 1% (Redis-Seq, Histogram) to 35% (Redis-Rand).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..tools.ktracker import KTracker
from ..workloads import WORKLOADS

#: The Figure 10 workloads, in the paper's x-axis order.
FIG10_WORKLOADS = (
    "redis-rand", "redis-seq", "histogram", "linear-regression",
    "connected-components", "graph-coloring", "label-propagation",
    "page-rank",
)


@dataclass
class Fig10Result:
    """Speedup (percent) per workload."""

    speedup_pct: Dict[str, float]

    def max_workload(self) -> str:
        """Workload with the biggest benefit (paper: Redis-Rand)."""
        return max(self.speedup_pct, key=self.speedup_pct.get)

    def rows(self):
        """(workload, speedup %) rows in figure order."""
        for name in FIG10_WORKLOADS:
            if name in self.speedup_pct:
                yield name, self.speedup_pct[name]


def run_fig10(workloads: Sequence[str] = FIG10_WORKLOADS,
              windows: int = 2, seed: int = 0) -> Fig10Result:
    """Compute the write-protection speedup per workload."""
    speedups: Dict[str, float] = {}
    for name in workloads:
        model = WORKLOADS[name]()
        trace = model.generate(windows=windows, seed=seed)
        report = KTracker(model.memory_bytes).run(trace, name=name)
        speedups[name] = report.tracking_speedup_percent()
    return Fig10Result(speedup_pct=speedups)
