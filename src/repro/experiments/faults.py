"""Causal fault attribution: campaigns, reports, and the overhead gate.

This driver turns the causal capture plane
(:mod:`repro.obs.causal`) into the two artifacts the observability
story is judged by:

* **attribution** — re-run the memnode-failover durability campaign
  with capture attached and reduce its fault log to an explanation:
  which hop (directory, fabric, memnode, replication) dominates the
  stall budget, which pages and nodes are hot, where the tail
  anomalies sit, and the slowest individual fault chains with their
  per-hop breakdown.  During the outage window the tail must move
  from the memnode hop to the fabric/replication hops — the lease
  fence and failover wait are *visible in the data*, not inferred.
* **the overhead contract** — capture must observe without
  perturbing.  :func:`measure_capture_overhead` interleaves
  capture-on and capture-off runs of the canonical hot-mix case,
  proves the full cross-layer fingerprints bit-equal, and gates the
  wall-clock ratio at :data:`MAX_CAPTURE_OVERHEAD` (the CI
  ``faults-smoke`` job enforces it; the committed report is
  ``BENCH_causal.json``).
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

import numpy as np

from ..common.errors import SimulationError
from ..obs.causal import FaultLog, tail_anomalies
from .bench import (RUNTIME_CANONICAL_CASE, RuntimeBenchCase, _build_runtime,
                    _case_trace, host_metadata, runtime_fingerprint)
from .failover import FailoverResult, run_failover

#: Default report filename (capture-overhead suite).
CAUSAL_BENCH_FILENAME = "BENCH_causal.json"

#: The observability tax ceiling: capture-on wall clock may cost at
#: most this factor of capture-off on the canonical hot-mix case.
MAX_CAPTURE_OVERHEAD = 1.15


def run_fault_campaign(seed: int = 0, ops: int = 20_000,
                       **kwargs: Any) -> FailoverResult:
    """The failover durability campaign with causal capture attached.

    Same schedule as :func:`~repro.experiments.failover.run_failover`
    (victim killed mid-run, pressure burst in the outage, silent
    corruption on a survivor); the result additionally carries the
    full fault log for attribution.
    """
    kwargs.setdefault("capture", True)
    return run_failover(seed=seed, ops=ops, **kwargs)


def _exemplar_row(ex: tuple) -> Dict[str, Any]:
    """One exemplar tuple rendered as a readable hop-breakdown row."""
    return {
        "seq": ex[1],
        "page": ex[3],
        "node": ex[4],
        "kind": "remote" if ex[5] else "fmem",
        "health": ("HEALTHY", "DEGRADED", "RECOVERING")[ex[6]],
        "flags": ex[7],
        "total_ns": round(ex[0], 2),
        "hops_ns": {"dir": round(ex[8], 2), "fab": round(ex[9], 2),
                    "mem": round(ex[10], 2), "repl": round(ex[11], 2)},
    }


def attribution_report(log: FaultLog, top: int = 10) -> Dict[str, Any]:
    """Reduce a fault log to the attribution verdict.

    Partition-invariant throughout (built on :meth:`FaultLog.
    aggregate` members only, never the reservoir), so a sharded
    campaign reports identically to a monolithic one.
    """
    summary = log.summary()
    anomalies = tail_anomalies(log)
    return {
        "faults": log.n,
        "summary": summary,
        "hop_totals_ns": {h: round(v, 2)
                          for h, v in log.hop_totals().items()},
        "dominant_hop": log.dominant_hop(),
        "degraded_hop_counts": log.degraded_hop_counts(),
        "quantiles_ns": {q: round(log.quantile(v), 2)
                         for q, v in (("p50", 0.5), ("p90", 0.9),
                                      ("p99", 0.99), ("p999", 0.999))},
        "hot_pages": [{"page": page, "faults": count}
                      for page, count in log.hot_pages(top=top)],
        "nodes": [{"node": node, "fetches": fetches,
                   "stall_ns": round(stall, 2)}
                  for node, fetches, stall in log.node_table()],
        "tail_anomalies": anomalies[:top],
        "top_faults": [_exemplar_row(ex) for ex in log.exemplars[:top]],
    }


def measure_capture_overhead(case: RuntimeBenchCase = RUNTIME_CANONICAL_CASE,
                             runs: int = 3) -> Dict[str, Any]:
    """Time capture-on vs capture-off on one case; prove bit-identity.

    Methodology mirrors the engine bench: fresh runtime per run,
    untimed hot-set warmup, interleaved schedule so machine-load
    phases hit both modes, best-of-N wall time.  Before the ratio is
    trusted the full cross-layer fingerprints of the two modes are
    compared — capture changing *any* counter, account, bitmap bit or
    the elapsed clock fails the benchmark outright.
    """
    warm_addrs, warm_writes, addrs0, writes, mem_bytes, n = _case_trace(case)
    runs = max(runs, 1)
    timings = {"off": float("inf"), "on": float("inf")}
    fingerprints: Dict[str, Dict[str, Any]] = {}
    log: Optional[FaultLog] = None
    schedule = [mode for _ in range(runs) for mode in ("off", "on")]
    for mode in schedule:
        rt = _build_runtime(case)
        region = rt.mmap(mem_bytes)
        base = np.int64(region.start)
        cap = rt.attach_causal_capture() if mode == "on" else None
        if warm_addrs is not None:
            rt.run_trace(warm_addrs + base, warm_writes)
        addrs = addrs0 + base
        t0 = time.perf_counter()
        report = rt.run_trace(addrs, writes)
        timings[mode] = min(timings[mode], time.perf_counter() - t0)
        fingerprints[mode] = runtime_fingerprint(rt, report)
        if cap is not None:
            log = cap.log

    if fingerprints["on"] != fingerprints["off"]:
        diverged = [k for k in fingerprints["off"]
                    if fingerprints["off"][k] != fingerprints["on"][k]]
        raise SimulationError(
            f"capture perturbed the simulation: fingerprint sections "
            f"diverged: {diverged}")
    assert log is not None
    misses = fingerprints["off"]["runtime"].get("cache_misses", 0)
    if log.n != misses:
        raise SimulationError(
            f"capture coverage hole: {log.n} fault records vs "
            f"{misses} cache misses")
    overhead = timings["on"] / timings["off"]
    return {
        "workload": case.case_label,
        "num_accesses": n,
        "warmup_accesses": 0 if warm_addrs is None else int(warm_addrs.size),
        "seed": case.seed,
        "runs": runs,
        "off_seconds": timings["off"],
        "on_seconds": timings["on"],
        "overhead": overhead,
        "max_overhead": MAX_CAPTURE_OVERHEAD,
        "within_budget": overhead <= MAX_CAPTURE_OVERHEAD,
        "fingerprint_matches": True,
        "fault_records": log.n,
        "records_match_misses": True,
        "dominant_hop": log.dominant_hop(),
        "hop_totals_ns": {h: round(v, 2)
                          for h, v in log.hop_totals().items()},
    }


def run_causal_bench(case: RuntimeBenchCase = RUNTIME_CANONICAL_CASE,
                     runs: int = 3) -> Dict[str, Any]:
    """The committed capture-overhead report payload."""
    return {
        "benchmark": "kona-causal-capture-bench",
        "version": 1,
        "methodology": ("best-of-N wall time, capture-on vs capture-off "
                        "interleaved on identical traces, fresh runtime "
                        "per run; cross-layer fingerprints verified "
                        "bit-equal between modes"),
        "host": host_metadata(),
        "created_unix": int(time.time()),
        "case": measure_capture_overhead(case, runs=runs),
    }


def check_capture_overhead(payload: Dict[str, Any],
                           max_overhead: float = MAX_CAPTURE_OVERHEAD
                           ) -> List[str]:
    """Regression gate over a causal bench payload.

    Returns failure messages (empty when the gate passes): the
    overhead ratio must stay under ``max_overhead`` and the bit-
    identity checks must have held.
    """
    failures = []
    case = payload["case"]
    if case["overhead"] > max_overhead:
        failures.append(
            f"capture overhead {case['overhead']:.3f}x exceeds the "
            f"{max_overhead:.2f}x budget")
    if not case.get("fingerprint_matches", False):
        failures.append("capture-on fingerprint diverged from capture-off")
    if not case.get("records_match_misses", False):
        failures.append("fault record count diverged from cache misses")
    return failures


def write_causal_bench(payload: Dict[str, Any],
                       path: str = CAUSAL_BENCH_FILENAME) -> str:
    """Write the report JSON; returns the path."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path
