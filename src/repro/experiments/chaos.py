"""The section 4.5 chaos campaign: kill a memory node, survive, recover.

The paper's failure story is qualitative — network delays become MCEs
or page-fault fallbacks, memory-node failures are survived via
eviction-time replication — so this experiment makes it quantitative:
a seeded campaign kills one memory node mid-run (while dirty pages are
being evicted to it), lets the runtime degrade, restores the node, and
checks the recovery invariants:

* **writeback conservation** — every dirty line the eviction handler
  accepted is delivered, staged, or parked; none lost;
* **no scatter loss** — every acknowledged record was scattered on a
  memory node;
* **full recovery** — the health machine returns to HEALTHY with the
  park drained and degraded pages re-armed;
* **AMAT recovery** — the final measurement window is back within a
  tolerance of the pre-fault baseline.

Fault times are simulated-clock timestamps.  Because total runtime
depends on the workload, a short calibration run (same seed, same
config) estimates ns-per-access first, and the kill/recover points are
placed at fractions of the estimated total.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..chaos import CampaignResult, ChaosEngine
from ..common import units
from ..kona import KonaConfig, KonaRuntime
from ..obs import FlightRecorder

#: Mapped region driven by the campaign (spans both memory nodes).
REGION_BYTES = 32 * units.MB


def build_chaos_runtime(seed: int = 0, replication: int = 1,
                        recorder: Optional[FlightRecorder] = None
                        ) -> KonaRuntime:
    """A laptop-sized two-node runtime with seeded retry jitter.

    Pass a :class:`FlightRecorder` to trace the campaign (used by
    ``repro trace``); by default the runtime gets a disabled recorder.
    """
    config = KonaConfig(fmem_capacity=4 * units.MB,
                        vfmem_capacity=64 * units.MB,
                        slab_bytes=16 * units.MB,
                        replication_factor=replication,
                        retry_seed=seed)
    runtime = KonaRuntime(config, num_memory_nodes=2,
                          app_ns_per_access=70.0, recorder=recorder)
    # The default 100 us coherence timeout would swallow the whole
    # outage window in a handful of faulted accesses at this scale;
    # a 10 us timeout keeps the degraded phase populated with work.
    runtime.failures.coherence_timeout_ns = 10_000.0
    return runtime


def chaos_stream(region_start: int, ops: int,
                 seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """A seeded mixed read/write stream with mild page locality."""
    rng = np.random.default_rng(seed)
    pages = REGION_BYTES // units.PAGE_4K
    # Zipf-ish locality: cluster around a drifting hot set.
    hot = rng.integers(0, pages, size=ops // 64 + 1)
    page_idx = hot[np.arange(ops) // 64]
    jitter = rng.integers(0, 16, size=ops)
    page = (page_idx + jitter) % pages
    line = rng.integers(0, units.PAGE_4K // units.CACHE_LINE, size=ops)
    addrs = (region_start + page * units.PAGE_4K
             + line * units.CACHE_LINE).astype(np.uint64)
    writes = rng.random(ops) < 0.5
    return addrs, writes


def _estimate_ns_per_access(ops: int, seed: int) -> float:
    """Calibrate the campaign clock with a fault-free dry run."""
    probe = min(4000, ops)
    runtime = build_chaos_runtime(seed)
    region = runtime.mmap(REGION_BYTES)
    addrs, writes = chaos_stream(region.start, probe, seed)
    engine = ChaosEngine(runtime, seed=seed)
    engine.run(addrs, writes)
    return runtime.fabric.clock.now / probe


def run_chaos(seed: int = 0, ops: int = 30_000,
              kill_fraction: float = 0.30,
              recover_fraction: float = 0.70,
              amat_tolerance: float = 0.35,
              victim: str = "mem0",
              recorder: Optional[FlightRecorder] = None,
              on_runtime: Optional[Callable[[KonaRuntime], None]] = None
              ) -> CampaignResult:
    """Run the memory-node-failure campaign end to end.

    Schedule: kill the victim at ``kill_fraction`` of the estimated
    runtime, force a memory-pressure eviction burst mid-outage (so the
    failure provably lands while dirty lines homed on the dead node are
    being written back), then restore the node and let the runtime
    drain.

    ``on_runtime`` is called with the freshly built runtime before any
    access runs — the hook the control tower uses to attach the SLO
    engine to the health monitor (see
    :func:`repro.experiments.control.run_control`).
    """
    ns_per_access = _estimate_ns_per_access(ops, seed)
    total_est = ns_per_access * ops
    runtime = build_chaos_runtime(seed, recorder=recorder)
    if on_runtime is not None:
        on_runtime(runtime)
    region = runtime.mmap(REGION_BYTES)
    addrs, writes = chaos_stream(region.start, ops, seed)
    engine = ChaosEngine(runtime, seed=seed,
                         amat_tolerance=amat_tolerance)
    mid_outage = (kill_fraction + recover_fraction) / 2 * total_est
    engine.kill_node(kill_fraction * total_est, victim)
    engine.pressure(mid_outage, pages=runtime.fmem.num_frames // 2)
    engine.recover_node(recover_fraction * total_est, victim)
    return engine.run(addrs, writes)
