"""Fleet observability overhead: the identity/labeling tax gate.

The fleet plane (:mod:`repro.obs.fleet`) promises that component
identity, tenant labels and cross-component correlation cost nothing
on the hot path: identity lives on the recorder, labels are only read
at snapshot/merge/export time, and capture remains a pure observer.
This driver proves it with the same discipline as the causal-capture
gate (:mod:`repro.experiments.faults`):

* :func:`measure_fleet_overhead` interleaves fleet-on runs (identity
  labels carried on the recorder + causal capture attached) with
  plain runs of the canonical 1M hot-mix case, proves the cross-layer
  fingerprints bit-equal between modes, and reports the best-of-N
  wall-clock ratio of the replay itself.
* :func:`check_fleet_overhead` gates the ratio at
  :data:`MAX_FLEET_OVERHEAD` (CI enforces it; the committed report is
  ``BENCH_obs.json``).

The post-run fleet snapshot and :class:`~repro.obs.fleet.
FleetRecorder` assembly are timed *separately* and reported as
``snapshot_seconds``: they are export-time work that scales with the
component count, not the access count, so folding their fixed cost
into the per-access ratio would make the gate an accident of trace
length rather than a statement about the hot path.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List

import numpy as np

from ..common.errors import SimulationError
from ..obs.fleet import FleetRecorder
from .bench import (RUNTIME_CANONICAL_CASE, RuntimeBenchCase, _build_runtime,
                    _case_trace, host_metadata, runtime_fingerprint)

#: Default report filename (fleet-overhead suite).
OBS_BENCH_FILENAME = "BENCH_obs.json"

#: The fleet-plane tax ceiling on the canonical hot-mix case.
MAX_FLEET_OVERHEAD = 1.15


def measure_fleet_overhead(case: RuntimeBenchCase = RUNTIME_CANONICAL_CASE,
                           runs: int = 3) -> Dict[str, Any]:
    """Time fleet-on vs plain runs on one case; prove bit-identity.

    Fresh runtime per run, untimed hot-set warmup, interleaved
    schedule, best-of-N.  The fleet-on mode attaches causal capture
    and carries component/tenant identity on the recorder; after the
    timed replay it snapshots the full topology into a
    :class:`~repro.obs.fleet.FleetRecorder` (timed separately as
    ``snapshot_seconds``).  The two modes' cross-layer fingerprints
    must be bit-equal, and the fleet's fault log must cover every
    cache miss.
    """
    warm_addrs, warm_writes, addrs0, writes, mem_bytes, n = _case_trace(case)
    runs = max(runs, 1)
    timings = {"off": float("inf"), "on": float("inf")}
    fingerprints: Dict[str, Dict[str, Any]] = {}
    snapshot_seconds = float("inf")
    fleet_components = 0
    fleet_faults = 0
    schedule = [mode for _ in range(runs) for mode in ("off", "on")]
    for mode in schedule:
        rt = _build_runtime(case)
        if mode == "on":
            rt.obs.component = "runtime:bench"
            rt.obs.tenant = "bench"
            rt.attach_causal_capture()
        region = rt.mmap(mem_bytes)
        base = np.int64(region.start)
        if warm_addrs is not None:
            rt.run_trace(warm_addrs + base, warm_writes)
        addrs = addrs0 + base
        t0 = time.perf_counter()
        report = rt.run_trace(addrs, writes)
        timings[mode] = min(timings[mode], time.perf_counter() - t0)
        if mode == "on":
            t1 = time.perf_counter()
            fleet = FleetRecorder(name="bench")
            for member in rt.fleet_members(tenant="bench"):
                fleet.add(member)
            log = fleet.fault_log()
            snapshot_seconds = min(snapshot_seconds,
                                   time.perf_counter() - t1)
            fleet_components = len(fleet.members)
            fleet_faults = 0 if log is None else log.n
        fingerprints[mode] = runtime_fingerprint(rt, report)

    if fingerprints["on"] != fingerprints["off"]:
        diverged = [k for k in fingerprints["off"]
                    if fingerprints["off"][k] != fingerprints["on"][k]]
        raise SimulationError(
            f"fleet instrumentation perturbed the simulation: "
            f"fingerprint sections diverged: {diverged}")
    misses = fingerprints["off"]["runtime"].get("cache_misses", 0)
    if fleet_faults != misses:
        raise SimulationError(
            f"fleet fault-log coverage hole: {fleet_faults} records vs "
            f"{misses} cache misses")
    overhead = timings["on"] / timings["off"]
    return {
        "workload": case.case_label,
        "num_accesses": n,
        "warmup_accesses": 0 if warm_addrs is None else int(warm_addrs.size),
        "seed": case.seed,
        "runs": runs,
        "off_seconds": timings["off"],
        "on_seconds": timings["on"],
        "snapshot_seconds": snapshot_seconds,
        "overhead": overhead,
        "max_overhead": MAX_FLEET_OVERHEAD,
        "within_budget": overhead <= MAX_FLEET_OVERHEAD,
        "fingerprint_matches": True,
        "fleet_components": fleet_components,
        "fault_records": fleet_faults,
        "records_match_misses": True,
    }


def run_obs_bench(case: RuntimeBenchCase = RUNTIME_CANONICAL_CASE,
                  runs: int = 3) -> Dict[str, Any]:
    """The committed fleet-overhead report payload."""
    return {
        "benchmark": "kona-fleet-obs-bench",
        "version": 1,
        "methodology": ("best-of-N wall time, fleet-on (identity labels "
                        "+ causal capture) vs plain runs interleaved on "
                        "identical traces, fresh runtime per run; the "
                        "post-run fleet snapshot/assembly is timed "
                        "separately (snapshot_seconds: export-time work, "
                        "O(components) not O(accesses)); cross-layer "
                        "fingerprints verified bit-equal between modes"),
        "host": host_metadata(),
        "created_unix": int(time.time()),
        "case": measure_fleet_overhead(case, runs=runs),
    }


def check_fleet_overhead(payload: Dict[str, Any],
                         max_overhead: float = MAX_FLEET_OVERHEAD
                         ) -> List[str]:
    """Regression gate over a fleet-obs bench payload.

    Returns failure messages (empty when the gate passes).
    """
    failures = []
    case = payload["case"]
    if case["overhead"] > max_overhead:
        failures.append(
            f"fleet observability overhead {case['overhead']:.3f}x "
            f"exceeds the {max_overhead:.2f}x budget")
    if not case.get("fingerprint_matches", False):
        failures.append("fleet-on fingerprint diverged from plain run")
    if not case.get("records_match_misses", False):
        failures.append("fault record count diverged from cache misses")
    return failures


def write_obs_bench(payload: Dict[str, Any],
                    path: str = OBS_BENCH_FILENAME) -> str:
    """Write the report JSON; returns the path."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path
