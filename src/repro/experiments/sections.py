"""In-text experiments: sections 2.1, 6.1, 6.2(3), 6.3(3).

* **2.1 motivation** — Redis throughput drops >60% when 25% of its
  data is remote under Infiniswap; remote access costs 40 us against
  3 us of raw RDMA; eviction exceeds 32 us.
* **6.1 parity** — Kona-VM is similar to or faster than Infiniswap
  (up to 60%), validating it as the apples-to-apples baseline.
* **6.2(3)** — KCacheSim's simulation slowdown (paper: 43X).
* **6.3(3)** — KTracker's emulation overhead (~60% throughput loss,
  95% of it memory copy/compare).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .. import units
from ..baselines import infiniswap, kona_vm
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..tools.kcachesim import simulation_overhead
from ..tools.ktracker import KTracker, redis_rand_ktracker
from ..workloads.amat import redis_rand_spec


def run_sec21_motivation(latency: LatencyModel = DEFAULT_LATENCY,
                         seed: int = 0) -> Dict[str, float]:
    """Reproduce the section 2.1 motivation numbers.

    Returns throughput ratio (remote/local), fetch latency (us), raw
    RDMA latency (us) and eviction latency (us) for Infiniswap.
    """
    rng = np.random.default_rng(seed)
    region = 32 * units.MB
    pages = region // units.PAGE_4K
    # A Redis-like op stream over the whole keyspace.  Per-op cost
    # covers request parsing and data-structure work (~a few us/op for
    # a loaded Redis).  Local run: everything fits; remote run: 25% of
    # the data lives remotely.  Both engines are warmed with one full
    # pass first so the measurement is steady-state, not cold misses.
    warm_ids = np.arange(pages, dtype=np.uint64)
    warm_addrs = warm_ids * np.uint64(units.PAGE_4K)
    warm_writes = np.zeros(pages, dtype=bool)
    page_ids = rng.integers(0, pages, size=6000).astype(np.uint64)
    addrs = page_ids * np.uint64(units.PAGE_4K)
    writes = rng.random(6000) < 0.4

    app_ns = 3_000.0
    local = infiniswap(region + units.PAGE_4K, latency=latency,
                       app_ns_per_access=app_ns)
    remote = infiniswap(int(region * 0.75), latency=latency,
                        app_ns_per_access=app_ns)
    local.run(warm_addrs, warm_writes)
    remote.run(warm_addrs.copy(), warm_writes)
    # run() reports the incremental time of the pass it executed.
    r_local = local.run(addrs, writes)
    r_remote = remote.run(addrs.copy(), writes)
    throughput_drop = 1.0 - r_local.elapsed_ns / r_remote.elapsed_ns

    fetch_us = units.ns_to_us(infiniswap(region).access(0, False))
    rdma_us = units.ns_to_us(latency.rdma_transfer_ns(
        units.PAGE_4K, linked=True, signaled=False))
    evictor = infiniswap(units.PAGE_4K, latency=latency)
    evictor.access(0, True)
    evictor.access(units.PAGE_4K, False)
    evict_us = units.ns_to_us(evictor.account["evict_software"]
                              + evictor.account["evict_transfer"])
    return {
        "throughput_drop": throughput_drop,
        "fetch_us": fetch_us,
        "rdma_4k_us": rdma_us,
        "evict_us": evict_us,
    }


def run_sec61_baseline_parity(latency: LatencyModel = DEFAULT_LATENCY
                              ) -> Dict[str, float]:
    """Kona-VM vs Infiniswap on the same Redis-like stream.

    Per-op application cost included (request handling dominates a real
    Redis op); 25% of the data is remote, as in the paper's CloudLab
    comparison where Kona-VM came out similar to or up to 60% faster.
    """
    rng = np.random.default_rng(1)
    region = 16 * units.MB
    pages = region // units.PAGE_4K
    app_ns = 15_000.0
    warm = np.arange(pages, dtype=np.uint64) * np.uint64(units.PAGE_4K)
    addrs = (rng.integers(0, pages, size=5000).astype(np.uint64)
             * np.uint64(units.PAGE_4K))
    writes = rng.random(5000) < 0.4
    vm_engine = kona_vm(int(region * 0.75), latency=latency,
                        app_ns_per_access=app_ns)
    swap_engine = infiniswap(int(region * 0.75), latency=latency,
                             app_ns_per_access=app_ns)
    vm_engine.run(warm, np.zeros(pages, dtype=bool))
    swap_engine.run(warm.copy(), np.zeros(pages, dtype=bool))
    vm = vm_engine.run(addrs, writes)
    swap = swap_engine.run(addrs.copy(), writes)
    speedup = 1.0 - vm.elapsed_ns / swap.elapsed_ns
    return {
        "kona_vm_s": units.ns_to_s(vm.elapsed_ns),
        "infiniswap_s": units.ns_to_s(swap.elapsed_ns),
        "speedup_fraction": speedup,
    }


def run_sec62_simulation_overhead(num_ops: int = 12_000) -> float:
    """KCacheSim slowdown vs native replay (paper: 43X for Redis)."""
    return simulation_overhead(redis_rand_spec(data_bytes=8 * units.MB),
                               num_ops=num_ops)


def run_sec63_tracker_overhead(windows: int = 10,
                               seed: int = 4) -> Dict[str, float]:
    """KTracker emulation overhead at native Redis scale (4 GB RSS)."""
    model = redis_rand_ktracker(memory_bytes=32 * units.MB)
    trace = model.generate(windows=windows, seed=seed)
    report = KTracker(model.memory_bytes).run(trace, name="redis-rand")
    return report.emulation_overhead_fraction(4 * units.GB)
