"""Figure 11: eviction goodput by transfer strategy (section 6.4).

A 1 GB region where each 4 KB page has N dirty cache lines, contiguous
(panel a) or alternate (panel b); each strategy writes the dirty data
to a remote host and goodput is reported relative to Kona-VM's 4 KB
writes.  Panel (c) breaks Kona's CL-log time into Bitmap / Copy /
RDMA write / Ack wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .. import units
from ..baselines.eviction_strategies import (
    STRATEGIES,
    kona_cl_log,
    kona_vm_4k,
)
from ..common.latency import DEFAULT_LATENCY, LatencyModel

#: Dirty-line counts on the x-axes.
CONTIG_LINES = (1, 2, 4, 6, 8, 12, 16, 32, 64)
ALTERNATE_LINES = (1, 2, 4, 8, 12, 16, 32)
#: Densities shown in panel (c).
FIG11C_LINES = (1, 8, 64)

#: 1 GB region = 262144 pages in the paper; scaled down by default
#: (per-page costs are uniform, so ratios are unaffected).
DEFAULT_PAGES = 16384


@dataclass
class Fig11Result:
    """Relative goodput indexed by [strategy][n_lines]."""

    pattern: str
    relative_goodput: Dict[str, Dict[int, float]] = field(
        default_factory=dict)

    def series(self, strategy: str) -> List[Tuple[int, float]]:
        """(n_lines, goodput-vs-Kona-VM) points for one strategy."""
        return sorted(self.relative_goodput[strategy].items())

    def rows(self):
        """(n_lines, *strategy columns) rows."""
        strategies = sorted(self.relative_goodput)
        lines = sorted(next(iter(self.relative_goodput.values())))
        for n in lines:
            yield (n, *(self.relative_goodput[s][n] for s in strategies))


def run_fig11(pattern: str = "contiguous",
              line_counts: Sequence[int] = None,
              pages: int = DEFAULT_PAGES,
              strategies: Sequence[str] = ("kona-cl-log", "ideal-4k-nocopy",
                                           "ideal-cl-nocopy"),
              latency: LatencyModel = DEFAULT_LATENCY) -> Fig11Result:
    """Panels (a)/(b): relative goodput sweep."""
    if line_counts is None:
        line_counts = (CONTIG_LINES if pattern == "contiguous"
                       else ALTERNATE_LINES)
    result = Fig11Result(pattern=pattern)
    for name in strategies:
        strategy = STRATEGIES[name]
        result.relative_goodput[name] = {}
        for n in line_counts:
            baseline = kona_vm_4k(pages, n, pattern, latency)
            measured = strategy(pages, n, pattern, latency)
            result.relative_goodput[name][n] = (
                measured.goodput_relative_to(baseline))
    return result


def run_fig11c_breakdown(line_counts: Sequence[int] = FIG11C_LINES,
                         pages: int = DEFAULT_PAGES,
                         latency: LatencyModel = DEFAULT_LATENCY
                         ) -> Dict[int, Dict[str, float]]:
    """Panel (c): CL-log time fractions per dirty density, plus totals.

    Returns {n_lines: {bucket: fraction, "total_ms": ms}}.
    """
    out: Dict[int, Dict[str, float]] = {}
    for n in line_counts:
        result = kona_cl_log(pages, n, "contiguous", latency)
        fractions = dict(result.account.fractions())
        fractions["total_ms"] = units.ns_to_ms(result.total_ns)
        out[n] = fractions
    return out
