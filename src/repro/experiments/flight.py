"""The flight-recorder experiment behind ``repro trace``.

Runs the section 4.5 chaos campaign with span tracing and the periodic
gauge sampler enabled, so one command produces a full observability
artifact set: a Chrome trace-event timeline (nested fetch / eviction /
RDMA spans plus chaos fault and health-transition instants, viewable in
Perfetto), a Prometheus metrics dump, and a JSONL event log.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import List, Tuple

from ..chaos import CampaignResult
from ..obs import FlightRecorder
from .chaos import run_chaos

#: Sim-clock interval between sampler rows (50 us keeps a 30k-access
#: campaign at a few dozen time-series points).
SAMPLE_INTERVAL_NS = 50_000.0


def run_flight(seed: int = 0, ops: int = 8_000,
               max_events: int = 500_000
               ) -> Tuple[CampaignResult, FlightRecorder]:
    """Run a traced chaos campaign; returns (result, recorder).

    The recorder comes back with the span timeline, sampler series and
    metrics registry populated, ready for its ``write_*`` exporters.
    """
    recorder = FlightRecorder(tracing=True,
                              sample_interval_ns=SAMPLE_INTERVAL_NS,
                              max_events=max_events)
    result = run_chaos(seed=seed, ops=ops, recorder=recorder)
    return result, recorder


def span_summary(recorder: FlightRecorder) -> List[Tuple[str, int, float]]:
    """(name, count, total duration us) per span name, busiest first.

    Raw tracer events carry nanosecond durations (the Chrome exporter
    converts on the way out), so totals are scaled to us here.
    """
    counts: TallyCounter = TallyCounter()
    total_ns: dict = {}
    for event in recorder.tracer.events:
        if event.get("ph") != "X":
            continue
        name = event["name"]
        counts[name] += 1
        total_ns[name] = total_ns.get(name, 0.0) + event.get("dur", 0.0)
    return sorted(((name, counts[name], round(total_ns[name] / 1e3, 1))
                   for name in counts),
                  key=lambda row: -row[2])


def instant_summary(recorder: FlightRecorder) -> List[Tuple[str, int]]:
    """(category, count) per instant-event category, sorted by name."""
    counts: TallyCounter = TallyCounter()
    for event in recorder.tracer.events:
        if event.get("ph") == "i":
            counts[event.get("cat", "")] += 1
    return sorted(counts.items())
