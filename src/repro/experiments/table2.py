"""Table 2: dirty data amplification across tracking granularities.

Generates each workload's trace, runs the Pin-style analyzer and
aggregates steady-state amplification at 4 KB, 2 MB and 64 B tracking
granularity.  Startup windows and the final (tear-down) window are
excluded, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..analysis.paper import TABLE2, Table2Row
from ..tools.pintool import analyze
from ..workloads import WORKLOADS


@dataclass
class Table2Result:
    """Measured amplification per workload, with the paper reference."""

    measured: Dict[str, Dict[str, float]]
    reference: Dict[str, Table2Row]

    def rows(self):
        """(workload, 4k, 2m, cl, paper 4k, paper 2m, paper cl) rows."""
        for name in sorted(self.measured):
            m = self.measured[name]
            ref = self.reference[name]
            yield (name, m["4k"], m["2m"], m["cl"],
                   ref.amp_4k, ref.amp_2m, ref.amp_cl)

    def relative_error(self, name: str, granularity: str) -> float:
        """|measured - paper| / paper for one cell."""
        ref = {"4k": self.reference[name].amp_4k,
               "2m": self.reference[name].amp_2m,
               "cl": self.reference[name].amp_cl}[granularity]
        return abs(self.measured[name][granularity] - ref) / ref


def run_table2(workloads: Sequence[str] = None, windows: int = 6,
               seed: int = 3) -> Table2Result:
    """Run the amplification analysis for every Table 2 workload."""
    names = sorted(WORKLOADS) if workloads is None else list(workloads)
    measured: Dict[str, Dict[str, float]] = {}
    for name in names:
        model = WORKLOADS[name]()
        trace = model.generate(windows=windows, seed=seed)
        report = analyze(trace)
        # Keep at least one steady-state window even for short runs.
        skip_first = min(model.startup_windows, max(windows - 2, 0))
        skip_last = 1 if windows - skip_first > 1 else 0
        measured[name] = report.mean_amplification(
            skip_first=skip_first, skip_last=skip_last)
    return Table2Result(measured=measured,
                        reference={n: TABLE2[n] for n in names})
