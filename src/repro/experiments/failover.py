"""Memnode failover with zero data loss: the durability proof.

The replication design (section 4.5) promises that losing a memory
node loses no acknowledged write: every remote page has live backups,
a dead primary's slots are promoted behind the lease fence, in-flight
and parked writebacks are redirected to the new primaries, and the
replication factor is rebuilt in the background.  This driver turns
that promise into a *differential* experiment:

1. **Oracle run** — the exact same seeded access stream on an
   identical runtime with no faults; flush, recover, and snapshot the
   remote-memory image (per-line ``(version, payload)`` from the
   current primaries).
2. **Fault run** — same stream, but the campaign kills the victim
   memnode mid-run (it never comes back), forces a memory-pressure
   eviction burst during the outage, and silently corrupts stored
   lines on a surviving node.  After the campaign the driver flushes,
   recovers (re-replication plus checksum scrub with read-repair), and
   snapshots the image again.

The two images must be **dict-equal** — same lines, same versions,
same payloads — which is appended to the campaign's invariant list as
``durability_image_match``.  Because a backup exists for every slot,
the fault run must also complete with *zero* faulted accesses
(``no_faulted_accesses``): failover is invisible to the application
beyond the lease-wait stall.

An SLO engine rides along (same wiring as the control tower) so the
failover story is judged by recovery rules too: the park drains, the
re-replication backlog clears promptly, and the health machine's MTTR
stays under the ceiling.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..chaos import CampaignResult, ChaosEngine, InvariantCheck
from ..common import units
from ..kona import KonaConfig, KonaRuntime
from ..obs import FlightRecorder, SLOEngine, SLORule
from .chaos import REGION_BYTES, chaos_stream
from .flight import SAMPLE_INTERVAL_NS

#: Recovery rules for the failover campaign.  The backlog rule is
#: *meant* to go bad during the outage window — re-replication takes
#: simulated time — so its objective tolerates that window; the park
#: and MTTR rules must hold essentially everywhere.
FAILOVER_SLOS: Tuple[SLORule, ...] = (
    SLORule(name="park-drained", metric="health.parked_records",
            kind="level", op="<=", bound=0.0, objective=0.95,
            description="no dirty records parked awaiting a dead node"),
    SLORule(name="replication-backlog-drained",
            metric="replication.backlog_slots",
            kind="level", op="<=", bound=0.0, objective=0.70,
            description="re-replication restores the factor promptly"),
    SLORule(name="mttr-ceiling", metric="health.mttr_ns",
            kind="level", op="<=", bound=2_000_000.0,
            description="failover mean time to repair stays under 2 ms"),
)


def build_failover_runtime(seed: int = 0,
                           recorder: Optional[FlightRecorder] = None
                           ) -> KonaRuntime:
    """A three-node, factor-2 replicated runtime with a data plane.

    48 MB of virtual far memory over three nodes gives each node a
    page-aligned 32 MB (4 slabs of 8 MB): enough headroom that every
    slot killed with its primary can be re-replicated onto the two
    survivors.  The data plane is attached so writebacks carry real
    (versioned, checksummed) content and the final image is provable.
    """
    config = KonaConfig(fmem_capacity=4 * units.MB,
                        vfmem_capacity=48 * units.MB,
                        slab_bytes=8 * units.MB,
                        replication_factor=2,
                        retry_seed=seed,
                        retry_deadline_ns=200_000.0,
                        lease_ttl_ns=30_000.0,
                        rereplication_slots_per_tick=1)
    runtime = KonaRuntime(config, num_memory_nodes=3,
                          app_ns_per_access=70.0, recorder=recorder)
    runtime.failures.coherence_timeout_ns = 10_000.0
    runtime.attach_data_plane()
    return runtime


def _image_digest(image: Dict[int, Tuple[int, int]]) -> str:
    """Stable hex digest of a remote-memory image."""
    hasher = hashlib.sha256()
    for addr in sorted(image):
        version, payload = image[addr]
        hasher.update(f"{addr}:{version}:{payload};".encode())
    return hasher.hexdigest()[:16]


def _settled_image(runtime: KonaRuntime) -> Dict[int, Tuple[int, int]]:
    """Flush, recover (scrub + re-replicate), and snapshot the image."""
    runtime.flush()
    runtime.recover()
    return runtime.replication.image()


def _oracle_image(seed: int, ops: int) -> Tuple[Dict[int, Tuple[int, int]],
                                                float]:
    """The no-fault image plus the total simulated runtime (for fault
    placement: the fault run sees the identical stream, so the oracle
    clock doubles as the calibration run)."""
    runtime = build_failover_runtime(seed)
    region = runtime.mmap(REGION_BYTES)
    addrs, writes = chaos_stream(region.start, ops, seed)
    ChaosEngine(runtime, seed=seed).run(addrs, writes)
    image = _settled_image(runtime)
    total_ns = runtime.fabric.clock.now
    runtime.close()
    return image, total_ns


@dataclass
class FailoverResult:
    """The durability verdict for one failover campaign."""

    result: CampaignResult
    image_lines: int
    oracle_lines: int
    image_matches: bool
    image_digest: str
    mttr_ns: float
    failovers: int
    promotions: int
    scrub_repairs: int
    recorder: Optional[FlightRecorder] = None
    engine: Optional[SLOEngine] = None
    #: Causal fault log of the fault run (``capture=True`` only).
    #: Deliberately outside :meth:`fingerprint` — capture must never
    #: change campaign outcomes, and the tests pin that separately.
    fault_log: Optional[Any] = None
    #: Fleet view of the fault run's whole topology (``fleet=True``
    #: only): runtime, fabric and every memnode as components, ready
    #: for ``FleetRecorder.save`` / ``repro dashboard``.
    fleet: Optional[Any] = None

    @property
    def passed(self) -> bool:
        """Invariants (including the image proof) plus SLO verdicts."""
        if not self.result.passed:
            return False
        if self.engine is not None:
            return all(met for _, _, met in self.engine.verdicts())
        return True

    def fingerprint(self) -> str:
        """Campaign fingerprint extended with the image digest."""
        return (self.result.fingerprint()
                + f"\nimage={self.image_digest}:{self.image_lines}")

    def rows(self) -> List[Tuple[str, object]]:
        """(metric, value) rows for the CLI report."""
        out: List[Tuple[str, object]] = [
            ("image_lines", self.image_lines),
            ("oracle_lines", self.oracle_lines),
            ("image_digest", self.image_digest),
            ("image_matches", "yes" if self.image_matches else "NO"),
            ("failovers", self.failovers),
            ("promotions", self.promotions),
            ("scrub_repairs", self.scrub_repairs),
            ("mttr_us", round(self.mttr_ns / 1e3, 1)),
        ]
        out.extend(self.result.rows())
        return out

    def verdict_rows(self) -> List[Tuple[str, str, str, str]]:
        """(rule, objective, good fraction, met) SLO table rows."""
        if self.engine is None:
            return []
        by_name = {rule.name: rule for rule in self.engine.rules}
        return [(name, f"{by_name[name].objective:.3f}",
                 f"{good_fraction:.3f}", "met" if met else "VIOLATED")
                for name, good_fraction, met in self.engine.verdicts()]


def run_failover(seed: int = 0, ops: int = 20_000,
                 kill_fraction: float = 0.35,
                 corrupt_fraction: float = 0.60,
                 corrupt_lines: int = 24,
                 victim: str = "mem0",
                 corrupt_node: str = "mem1",
                 amat_tolerance: float = 0.50,
                 rules: Optional[Sequence[SLORule]] = None,
                 tracing: bool = False,
                 sample_interval_ns: float = SAMPLE_INTERVAL_NS,
                 max_events: int = 500_000,
                 capture: bool = False,
                 fleet: bool = False,
                 tenant: Optional[str] = None) -> FailoverResult:
    """Run the memnode-failover durability campaign end to end.

    Schedule: kill the victim at ``kill_fraction`` of the (oracle-
    measured) total runtime and *never restart it*; force a pressure
    burst mid-outage so dirty lines homed on the dead node are
    provably in flight; silently corrupt ``corrupt_lines`` stored
    lines on a surviving node at ``corrupt_fraction``.  The final
    image must still equal the no-fault oracle's, bit for bit.

    ``capture=True`` attaches causal fault tracing to the fault run:
    every remote fetch is attributed hop by hop, health transitions
    carry the dominant hop and tail exemplars, and the result's
    ``fault_log`` pins the outage-window tail to the fabric and
    replication hops.

    ``fleet=True`` additionally snapshots the whole topology —
    runtime, fabric, every memnode — into a
    :class:`~repro.obs.fleet.FleetRecorder` on ``result.fleet``
    (with SLO verdicts and, when capturing, the fault log attached),
    the artifact ``repro dashboard`` renders.  ``tenant`` labels
    every component for per-tenant attribution.
    """
    oracle, total_est = _oracle_image(seed, ops)
    recorder = FlightRecorder(tracing=tracing,
                              sample_interval_ns=sample_interval_ns,
                              max_events=max_events)
    runtime = build_failover_runtime(seed, recorder=recorder)
    slo_engine = SLOEngine(
        recorder.tsdb,
        list(rules if rules is not None else FAILOVER_SLOS),
        registry=recorder.registry,
        sampler=recorder.sampler)
    slo_engine.attach(runtime.health)
    cap = runtime.attach_causal_capture() if capture else None
    if cap is not None:
        slo_engine.attach_fault_log(cap)
    region = runtime.mmap(REGION_BYTES)
    addrs, writes = chaos_stream(region.start, ops, seed)
    engine = ChaosEngine(runtime, seed=seed, amat_tolerance=amat_tolerance)
    engine.kill_node(kill_fraction * total_est, victim)
    engine.pressure((kill_fraction + 0.10) * total_est,
                    pages=runtime.fmem.num_frames // 2)
    engine.corrupt_data(corrupt_fraction * total_est, corrupt_node,
                        corrupt_lines)
    result = engine.run(addrs, writes)
    image = _settled_image(runtime)
    slo_engine.sweep()
    matches = image == oracle
    result.invariants.append(InvariantCheck(
        name="durability_image_match",
        passed=matches,
        detail=(f"lines={len(image)} oracle_lines={len(oracle)} "
                f"digest={_image_digest(image)} "
                f"oracle_digest={_image_digest(oracle)}")))
    result.invariants.append(InvariantCheck(
        name="no_faulted_accesses",
        passed=result.faulted_accesses == 0,
        detail=(f"faulted={result.faulted_accesses} — replication must "
                f"make the outage invisible to the application")))
    flat: Dict[str, Any] = result.telemetry.flat()
    fleet_recorder = None
    if fleet:
        from ..obs.fleet import FleetRecorder
        fleet_recorder = FleetRecorder(name="memnode-failover")
        for member in runtime.fleet_members(component="runtime:failover",
                                            tenant=tenant,
                                            slo=slo_engine):
            fleet_recorder.add(member)
    return FailoverResult(
        result=result,
        image_lines=len(image),
        oracle_lines=len(oracle),
        image_matches=matches,
        image_digest=_image_digest(image),
        mttr_ns=float(runtime.health.mttr_ns),
        failovers=int(flat.get("replication.failovers", 0)),
        promotions=int(flat.get("replication.promotions", 0)),
        scrub_repairs=int(runtime.counters["scrub_repairs"]),
        recorder=recorder,
        engine=slo_engine,
        fault_log=cap.log if cap is not None else None,
        fleet=fleet_recorder,
    )
