"""Engine benchmark: scalar oracle vs vectorized kernel.

``repro bench`` times both trace-simulation engines on the same
generated traces, verifies they produce identical counters, and writes
a machine-readable report (``BENCH_kcachesim.json``) for regression
tracking.  Methodology:

* every engine runs the identical (addrs, writes) trace on a freshly
  built hierarchy; best-of-N wall time is reported (N differs per
  engine: the scalar oracle is ~10X slower, so it gets fewer runs);
* the engines' runs are interleaved, not batched, so slow machine
  phases (CPU contention on shared runners) hit both engines rather
  than skewing the reported ratio;
* before timing is trusted, the two engines' per-level hit/miss/
  eviction/writeback counters and remote fetch/writeback counters are
  compared — a benchmark that drifts from the oracle fails loudly;
* the canonical case is ``uniform-stress``: 1M single-line accesses
  uniform over a 64 MB region with a 32 MB DRAM cache, where nearly
  every access traverses all four levels and engine cost dominates.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cache.hierarchy import CacheHierarchy, DEFAULT_CPU_LEVELS, dram_cache_spec
from ..common.errors import SimulationError
from ..tools.kcachesim import _round_capacity
from ..workloads.amat import AMAT_SPECS, generate_exact_accesses

#: Default report filename.
BENCH_FILENAME = "BENCH_kcachesim.json"


def _git_sha() -> Optional[str]:
    """The repo's HEAD commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def host_metadata() -> Dict[str, object]:
    """Environment fingerprint recorded alongside benchmark numbers.

    Timings are only comparable between runs on the same interpreter,
    numpy build and core count; the git sha pins the code under test.
    """
    return {"python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "git_sha": _git_sha()}


@dataclass(frozen=True)
class BenchCase:
    """One benchmark configuration."""

    workload: str
    num_accesses: int
    cache_fraction: float = 0.5
    block_size: int = 4096
    ways: int = 4
    seed: int = 1234


#: The acceptance case: miss-heavy, all four levels exercised.
CANONICAL_CASE = BenchCase("uniform-stress", 1_000_000, 0.5)

#: Secondary coverage: spatial locality and skewed reuse.
EXTRA_CASES = (
    BenchCase("redis-rand", 300_000, 0.25),
    BenchCase("graph-coloring", 300_000, 0.25),
)

QUICK_CASES = (BenchCase("uniform-stress", 150_000, 0.5),)


def _build_hierarchy(case: BenchCase, data_bytes: int,
                     engine: str) -> CacheHierarchy:
    capacity = int(data_bytes * case.cache_fraction)
    dram = None
    if capacity >= case.block_size * case.ways:
        dram = dram_cache_spec(
            _round_capacity(capacity, case.block_size, case.ways),
            case.block_size, case.ways)
    return CacheHierarchy(DEFAULT_CPU_LEVELS, dram_cache=dram, engine=engine)


def _level_counters(h: CacheHierarchy) -> Dict[str, Dict[str, int]]:
    levels = list(h.levels) + ([h.dram_cache] if h.dram_cache else [])
    return {lvl.name: {"hits": lvl.stats.hits,
                       "misses": lvl.stats.misses,
                       "evictions": lvl.stats.evictions,
                       "dirty_writebacks": lvl.stats.dirty_writebacks}
            for lvl in levels}


def run_case(case: BenchCase, scalar_runs: int = 2,
             vectorized_runs: int = 3) -> Dict[str, object]:
    """Time both engines on one case and verify counter equality."""
    spec = AMAT_SPECS[case.workload]()
    addrs, writes = generate_exact_accesses(spec, case.num_accesses, case.seed)
    runs = {"scalar": max(scalar_runs, 1),
            "vectorized": max(vectorized_runs, 1)}
    timings: Dict[str, float] = {e: float("inf") for e in runs}
    finals: Dict[str, CacheHierarchy] = {}
    results = {}
    # Interleave the engines' runs so machine-load phases affect both
    # timings rather than biasing their ratio.
    schedule = [engine
                for i in range(max(runs.values()))
                for engine in ("scalar", "vectorized") if i < runs[engine]]
    for engine in schedule:
        h = _build_hierarchy(case, spec.data_bytes, engine)
        t0 = time.perf_counter()
        result = h.simulate(addrs, writes)
        timings[engine] = min(timings[engine], time.perf_counter() - t0)
        finals[engine] = h
        results[engine] = result

    if results["scalar"] != results["vectorized"]:
        raise SimulationError(
            f"engine mismatch on {case.workload}: "
            f"{results['scalar']} != {results['vectorized']}")
    scalar_counters = _level_counters(finals["scalar"])
    if scalar_counters != _level_counters(finals["vectorized"]):
        raise SimulationError(
            f"per-level counter mismatch on {case.workload}")

    n = case.num_accesses
    return {
        "workload": case.workload,
        "num_accesses": n,
        "cache_fraction": case.cache_fraction,
        "block_size": case.block_size,
        "seed": case.seed,
        "scalar": {"seconds": timings["scalar"], "runs": scalar_runs,
                   "maccesses_per_s": n / timings["scalar"] / 1e6},
        "vectorized": {"seconds": timings["vectorized"],
                       "runs": vectorized_runs,
                       "maccesses_per_s": n / timings["vectorized"] / 1e6},
        "speedup": timings["scalar"] / timings["vectorized"],
        "counters_match": True,
        "remote_fetches": results["scalar"].remote_fetches,
        "level_counters": scalar_counters,
    }


def run_bench(quick: bool = False,
              cases: Optional[Sequence[BenchCase]] = None) -> Dict[str, object]:
    """Run the benchmark suite; returns the report payload."""
    if cases is None:
        cases = QUICK_CASES if quick else (CANONICAL_CASE, *EXTRA_CASES)
    scalar_runs = 1 if quick else 2
    vectorized_runs = 2 if quick else 4
    case_results = [run_case(c, scalar_runs, vectorized_runs) for c in cases]
    canonical = next(
        (c for c in case_results if c["workload"] == "uniform-stress"),
        case_results[0])
    return {
        "benchmark": "kcachesim-engine-bench",
        "version": 1,
        "quick": quick,
        "methodology": ("best-of-N wall time per engine on identical "
                        "traces; per-level counters verified equal"),
        "host": host_metadata(),
        "created_unix": int(time.time()),
        "cases": case_results,
        "canonical_workload": canonical["workload"],
        "canonical_speedup": canonical["speedup"],
    }


def write_bench(payload: Dict[str, object], path: str = BENCH_FILENAME) -> str:
    """Write the report JSON; returns the path."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def check_speedup(payload: Dict[str, object], min_speedup: float) -> List[str]:
    """Regression gate: canonical speedup must reach ``min_speedup``.

    Returns a list of failure messages (empty when the gate passes).
    """
    failures = []
    got = payload["canonical_speedup"]
    if got < min_speedup:
        failures.append(
            f"canonical speedup {got:.2f}x below required {min_speedup}x")
    return failures
