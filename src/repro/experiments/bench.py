"""Engine benchmark: scalar oracle vs vectorized kernel.

``repro bench`` times both trace-simulation engines on the same
generated traces, verifies they produce identical counters, and writes
a machine-readable report (``BENCH_kcachesim.json``) for regression
tracking.  Methodology:

* every engine runs the identical (addrs, writes) trace on a freshly
  built hierarchy; best-of-N wall time is reported (N differs per
  engine: the scalar oracle is ~10X slower, so it gets fewer runs);
* the engines' runs are interleaved, not batched, so slow machine
  phases (CPU contention on shared runners) hit both engines rather
  than skewing the reported ratio;
* before timing is trusted, the two engines' per-level hit/miss/
  eviction/writeback counters and remote fetch/writeback counters are
  compared — a benchmark that drifts from the oracle fails loudly;
* the canonical case is ``uniform-stress``: 1M single-line accesses
  uniform over a 64 MB region with a 32 MB DRAM cache, where nearly
  every access traverses all four levels and engine cost dominates.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cache.hierarchy import CacheHierarchy, DEFAULT_CPU_LEVELS, dram_cache_spec
from ..common import units
from ..common.errors import SimulationError
from ..tools.kcachesim import _round_capacity
from ..workloads.amat import AMAT_SPECS, generate_exact_accesses

#: Default report filename (kcachesim suite).
BENCH_FILENAME = "BENCH_kcachesim.json"

#: Default report filename (end-to-end runtime suite).
RUNTIME_BENCH_FILENAME = "BENCH_runtime.json"

#: Default append-only log of every bench run (one JSON line each).
HISTORY_FILENAME = os.path.join("benchmarks", "out", "history.jsonl")


def _git_sha() -> Optional[str]:
    """The repo's HEAD commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def host_metadata() -> Dict[str, object]:
    """Environment fingerprint recorded alongside benchmark numbers.

    Timings are only comparable between runs on the same interpreter,
    numpy build and core count; the git sha pins the code under test.
    """
    return {"python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "git_sha": _git_sha()}


@dataclass(frozen=True)
class BenchCase:
    """One benchmark configuration."""

    workload: str
    num_accesses: int
    cache_fraction: float = 0.5
    block_size: int = 4096
    ways: int = 4
    seed: int = 1234


#: The acceptance case: miss-heavy, all four levels exercised.
CANONICAL_CASE = BenchCase("uniform-stress", 1_000_000, 0.5)

#: Secondary coverage: spatial locality and skewed reuse.
EXTRA_CASES = (
    BenchCase("redis-rand", 300_000, 0.25),
    BenchCase("graph-coloring", 300_000, 0.25),
)

QUICK_CASES = (BenchCase("uniform-stress", 150_000, 0.5),)


def _build_hierarchy(case: BenchCase, data_bytes: int,
                     engine: str) -> CacheHierarchy:
    capacity = int(data_bytes * case.cache_fraction)
    dram = None
    if capacity >= case.block_size * case.ways:
        dram = dram_cache_spec(
            _round_capacity(capacity, case.block_size, case.ways),
            case.block_size, case.ways)
    return CacheHierarchy(DEFAULT_CPU_LEVELS, dram_cache=dram, engine=engine)


def _level_counters(h: CacheHierarchy) -> Dict[str, Dict[str, int]]:
    levels = list(h.levels) + ([h.dram_cache] if h.dram_cache else [])
    return {lvl.name: {"hits": lvl.stats.hits,
                       "misses": lvl.stats.misses,
                       "evictions": lvl.stats.evictions,
                       "dirty_writebacks": lvl.stats.dirty_writebacks}
            for lvl in levels}


def run_case(case: BenchCase, scalar_runs: int = 2,
             vectorized_runs: int = 3) -> Dict[str, object]:
    """Time both engines on one case and verify counter equality."""
    spec = AMAT_SPECS[case.workload]()
    addrs, writes = generate_exact_accesses(spec, case.num_accesses, case.seed)
    runs = {"scalar": max(scalar_runs, 1),
            "vectorized": max(vectorized_runs, 1)}
    timings: Dict[str, float] = {e: float("inf") for e in runs}
    finals: Dict[str, CacheHierarchy] = {}
    results = {}
    # Interleave the engines' runs so machine-load phases affect both
    # timings rather than biasing their ratio.
    schedule = [engine
                for i in range(max(runs.values()))
                for engine in ("scalar", "vectorized") if i < runs[engine]]
    for engine in schedule:
        h = _build_hierarchy(case, spec.data_bytes, engine)
        t0 = time.perf_counter()
        result = h.simulate(addrs, writes)
        timings[engine] = min(timings[engine], time.perf_counter() - t0)
        finals[engine] = h
        results[engine] = result

    if results["scalar"] != results["vectorized"]:
        raise SimulationError(
            f"engine mismatch on {case.workload}: "
            f"{results['scalar']} != {results['vectorized']}")
    scalar_counters = _level_counters(finals["scalar"])
    if scalar_counters != _level_counters(finals["vectorized"]):
        raise SimulationError(
            f"per-level counter mismatch on {case.workload}")

    n = case.num_accesses
    return {
        "workload": case.workload,
        "num_accesses": n,
        "cache_fraction": case.cache_fraction,
        "block_size": case.block_size,
        "seed": case.seed,
        "scalar": {"seconds": timings["scalar"], "runs": scalar_runs,
                   "maccesses_per_s": n / timings["scalar"] / 1e6},
        "vectorized": {"seconds": timings["vectorized"],
                       "runs": vectorized_runs,
                       "maccesses_per_s": n / timings["vectorized"] / 1e6},
        "speedup": timings["scalar"] / timings["vectorized"],
        "counters_match": True,
        "remote_fetches": results["scalar"].remote_fetches,
        "level_counters": scalar_counters,
    }


def run_bench(quick: bool = False,
              cases: Optional[Sequence[BenchCase]] = None) -> Dict[str, object]:
    """Run the benchmark suite; returns the report payload."""
    if cases is None:
        cases = QUICK_CASES if quick else (CANONICAL_CASE, *EXTRA_CASES)
    scalar_runs = 1 if quick else 2
    vectorized_runs = 2 if quick else 4
    case_results = [run_case(c, scalar_runs, vectorized_runs) for c in cases]
    canonical = next(
        (c for c in case_results if c["workload"] == "uniform-stress"),
        case_results[0])
    return {
        "benchmark": "kcachesim-engine-bench",
        "version": 1,
        "quick": quick,
        "methodology": ("best-of-N wall time per engine on identical "
                        "traces; per-level counters verified equal"),
        "host": host_metadata(),
        "created_unix": int(time.time()),
        "cases": case_results,
        "canonical_workload": canonical["workload"],
        "canonical_speedup": canonical["speedup"],
    }


# -- the end-to-end runtime suite (scalar vs batched run_trace) ----------------


@dataclass(frozen=True)
class RuntimeBenchCase:
    """One end-to-end benchmark configuration (full Kona stack).

    ``workload`` is either a :data:`~repro.workloads.WORKLOADS` model
    name or the synthetic ``"hot-mix"``: uniform reuse over a hot set
    of ``hot_lines`` cache lines with a ``cold_fraction`` chance per
    access of touching a cold line anywhere in the region — the
    cache-hit/data-access mix :mod:`repro.workloads.amat` derives from
    the paper's AMAT model (hundreds of hot accesses per data access).
    Hot-mix runs prefill the hot set with an untimed warmup sweep so
    the timed section measures steady state, not cold fills.
    """

    workload: str
    num_accesses: int
    windows: int = 4
    seed: int = 7
    fmem_mb: int = 64
    vfmem_mb: int = 256
    app_ns: float = 70.0
    hot_lines: int = 16384            # 1 MiB hot working set
    cold_fraction: float = 0.002      # ~1 data access per 500 hot hits
    region_mb: int = 192
    write_fraction: float = 0.3
    #: Report/display key; lets two cases share a workload model at
    #: different scales without colliding in history and perf-gate
    #: joins (which key cases by this name).  Defaults to ``workload``.
    label: Optional[str] = None

    @property
    def case_label(self) -> str:
        """Display/report key: the label when set, else the workload."""
        return self.label or self.workload


#: The acceptance case: hot-set reuse, so the CPU coherent cache —
#: the layer the batched engine vectorizes — carries most accesses,
#: with enough cold misses to keep the whole FMem stack live.
RUNTIME_CANONICAL_CASE = RuntimeBenchCase("hot-mix", 1_000_000)

#: Secondary coverage: real workload models at miss-heavy ratios (the
#: adaptive engine's scalar-escape path) with an FMem small enough to
#: drive the eviction/writeback machinery, plus a 4M-access hot-mix
#: scale point (4x the canonical) pinning throughput at trace lengths
#: where per-run setup cost is fully amortized.
RUNTIME_EXTRA_CASES = (
    RuntimeBenchCase("page-rank", 150_000, fmem_mb=8),
    RuntimeBenchCase("voltdb-tpcc", 150_000, fmem_mb=8),
    RuntimeBenchCase("hot-mix", 4_000_000, label="hot-mix-4m"),
)

#: Quick (CI) cases mirror the full suite's workload mix at small trace
#: lengths so the perf gate's history records cover every committed
#: baseline case except the 4M scale point.  The ``page-rank-miss``
#: entry is the miss-heavy canonical case at full size (150k accesses,
#: seed 7, 8 MB FMem): ~99.6% of its accesses miss the front cache, so
#: it exercises the coalesced miss-replay engine end to end and pins
#: its speedup over the scalar oracle in every CI run.
RUNTIME_QUICK_CASES = (
    RuntimeBenchCase("hot-mix", 150_000),
    RuntimeBenchCase("page-rank", 60_000, fmem_mb=8),
    RuntimeBenchCase("voltdb-tpcc", 60_000, fmem_mb=8),
    RuntimeBenchCase("page-rank", 150_000, fmem_mb=8,
                     label="page-rank-miss"),
)

#: The streaming scale point: accesses replayed from a memory-mapped
#: columnar trace in fixed chunks (a multiple of the 256-access
#: maintenance cadence, so the stream is bit-identical to a monolithic
#: run — which is verified, not assumed).
STREAMING_CASE_ACCESSES = 2_000_000
STREAMING_CHUNK = 1 << 18


def _build_runtime(case: RuntimeBenchCase):
    from ..kona.config import KonaConfig
    from ..kona.runtime import KonaRuntime
    cfg = KonaConfig(fmem_capacity=case.fmem_mb * units.MB,
                     vfmem_capacity=case.vfmem_mb * units.MB,
                     slab_bytes=16 * units.MB)
    return KonaRuntime(cfg, app_ns_per_access=case.app_ns)


def _case_trace(case: RuntimeBenchCase):
    """Build the (warmup, timed) traces for a case, zero-based.

    Returns ``(warm_addrs, warm_writes, addrs, writes, mem_bytes, n)``;
    the caller rebases addresses onto the mapped region.  Warmup is
    ``None`` for workload-model cases (their interest *is* the cold
    fill/eviction path).
    """
    if case.workload == "hot-mix":
        region_bytes = case.region_mb * units.MB
        n = case.num_accesses
        rng = np.random.default_rng(case.seed)
        lines = rng.integers(0, case.hot_lines, size=n, dtype=np.int64)
        cold = rng.random(n) < case.cold_fraction
        lines[cold] = rng.integers(case.hot_lines,
                                   region_bytes // units.CACHE_LINE,
                                   size=int(cold.sum()), dtype=np.int64)
        addrs = lines * units.CACHE_LINE
        writes = rng.random(n) < case.write_fraction
        warm_addrs = np.arange(case.hot_lines, dtype=np.int64) \
            * units.CACHE_LINE
        warm_writes = np.zeros(case.hot_lines, dtype=bool)
        return warm_addrs, warm_writes, addrs, writes, region_bytes, n
    from ..workloads import WORKLOADS
    model = WORKLOADS[case.workload]()
    trace = model.generate(windows=case.windows, seed=case.seed)
    n = min(case.num_accesses, len(trace))
    addrs = trace.addrs[:n].astype(np.int64)
    return None, None, addrs, trace.writes[:n], model.memory_bytes, n


def runtime_fingerprint(rt, report) -> Dict[str, object]:
    """Everything observable after a ``run_trace``: the report fields,
    every layer's counters, the dirty bitmap and the time accounting.

    Two engines must produce *equal* fingerprints — the differential
    tests and this suite's counter verification both compare these.
    """
    bitmap = rt.agent.bitmap
    ev = rt.eviction.stats
    return {
        "accesses": report.accesses,
        "elapsed_ns": report.elapsed_ns,
        "background_ns": report.background_ns,
        "bytes_fetched": report.bytes_fetched,
        "bytes_written_back": report.bytes_written_back,
        "runtime": rt.counters.as_dict(),
        "cpu_cache": rt.cpu_cache.counters.as_dict(),
        "agent": rt.agent.counters.as_dict(),
        "directory": rt.agent.directory.counters.as_dict(),
        "fmem": rt.fmem.counters.as_dict(),
        "fabric": rt.fabric.counters.as_dict(),
        "bitmap": {page: bitmap.page_mask(page)
                   for page in sorted(bitmap.dirty_pages())},
        "bitmap_counters": bitmap.counters.as_dict(),
        "eviction": {"pages_evicted": ev.pages_evicted,
                     "clean_pages": ev.clean_pages,
                     "full_page_writes": ev.full_page_writes,
                     "lines_logged": ev.lines_logged,
                     "dirty_bytes": ev.dirty_bytes,
                     "wire_bytes": ev.wire_bytes,
                     "elapsed_ns": ev.elapsed_ns},
        "account": rt.account.as_dict(),
    }


def _fingerprint_diff(a: Dict[str, object], b: Dict[str, object]) -> str:
    """Human-readable summary of which fingerprint sections diverged."""
    parts = []
    for key in a:
        if a[key] != b[key]:
            parts.append(f"{key}: scalar={a[key]!r} batched={b[key]!r}")
    return "; ".join(parts) or "<no differing section?>"


def run_runtime_case(case: RuntimeBenchCase, scalar_runs: int = 2,
                     batched_runs: int = 3) -> Dict[str, object]:
    """Time both run_trace engines end to end; verify identical state.

    Every run gets a freshly built runtime (the engines must not share
    warmed state); runs are interleaved for the same reason as the
    kcachesim suite.  Hot-mix cases run an untimed warmup sweep before
    the timed trace (both engines, identically).  A fingerprint
    mismatch — any counter, the dirty bitmap, or the report's
    elapsed_ns — fails the benchmark.
    """
    warm_addrs, warm_writes, addrs0, writes, mem_bytes, n = _case_trace(case)
    runs = {"scalar": max(scalar_runs, 1), "batched": max(batched_runs, 1)}
    timings: Dict[str, float] = {e: float("inf") for e in runs}
    fingerprints: Dict[str, Dict[str, object]] = {}
    schedule = [engine
                for i in range(max(runs.values()))
                for engine in ("scalar", "batched") if i < runs[engine]]
    for engine in schedule:
        rt = _build_runtime(case)
        region = rt.mmap(mem_bytes)
        base = np.int64(region.start)
        if warm_addrs is not None:
            rt.run_trace(warm_addrs + base, warm_writes, engine=engine)
        addrs = addrs0 + base
        t0 = time.perf_counter()
        report = rt.run_trace(addrs, writes, engine=engine)
        timings[engine] = min(timings[engine], time.perf_counter() - t0)
        fingerprints[engine] = runtime_fingerprint(rt, report)

    if fingerprints["scalar"] != fingerprints["batched"]:
        raise SimulationError(
            f"engine mismatch on {case.workload}: "
            + _fingerprint_diff(fingerprints["scalar"],
                                fingerprints["batched"]))
    fp = fingerprints["scalar"]
    hits = fp["runtime"].get("cache_hits", 0)
    timed = fp["runtime"].get("cache_hits", 0) \
        + fp["runtime"].get("cache_misses", 0)
    return {
        "workload": case.case_label,
        "model": case.workload,
        "num_accesses": n,
        "warmup_accesses": 0 if warm_addrs is None else int(warm_addrs.size),
        "windows": case.windows,
        "seed": case.seed,
        "fmem_mb": case.fmem_mb,
        "vfmem_mb": case.vfmem_mb,
        "scalar": {"seconds": timings["scalar"], "runs": runs["scalar"],
                   "maccesses_per_s": n / timings["scalar"] / 1e6},
        "batched": {"seconds": timings["batched"], "runs": runs["batched"],
                    "maccesses_per_s": n / timings["batched"] / 1e6},
        "speedup": timings["scalar"] / timings["batched"],
        "counters_match": True,
        "cpu_hit_ratio": round(hits / timed, 4) if timed else 0.0,
        "remote_fetches": fp["agent"].get("remote_fetches", 0),
        "pages_evicted": fp["eviction"]["pages_evicted"],
        "elapsed_ns": fp["elapsed_ns"],
    }


def run_streaming_case(num_accesses: int = STREAMING_CASE_ACCESSES,
                       chunk: int = STREAMING_CHUNK,
                       workdir: Optional[str] = None) -> Dict[str, object]:
    """The memory-mapped streaming scale point.

    Generates a hot-mix trace straight to columnar storage, replays it
    through ``run_trace_stream`` in fixed chunks, and verifies the
    streamed fingerprint equals a monolithic ``run_trace`` over the
    same accesses on a fresh runtime — the bit-exactness half of the
    streaming contract, measured rather than assumed.
    """
    import tempfile
    from ..workloads.trace import generate_hot_mix_stream

    case = RuntimeBenchCase("hot-mix", num_accesses)
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        path = os.path.join(tmp, "hot-mix.trace")
        columnar = generate_hot_mix_stream(
            path, num_accesses, hot_lines=case.hot_lines,
            cold_fraction=case.cold_fraction,
            region_bytes=case.region_mb * units.MB,
            write_fraction=case.write_fraction, seed=case.seed,
            chunk_size=chunk)

        rt = _build_runtime(case)
        region = rt.mmap(columnar.memory_bytes)
        t0 = time.perf_counter()
        report = rt.run_trace_stream(columnar.iter_chunks(chunk),
                                     base=region.start)
        streamed_s = time.perf_counter() - t0
        streamed_fp = runtime_fingerprint(rt, report)

        rt2 = _build_runtime(case)
        region2 = rt2.mmap(columnar.memory_bytes)
        addrs = columnar.addrs[:].astype(np.int64) + np.int64(region2.start)
        writes = np.asarray(columnar.writes)
        t0 = time.perf_counter()
        report2 = rt2.run_trace(addrs, writes)
        monolithic_s = time.perf_counter() - t0
        if streamed_fp != runtime_fingerprint(rt2, report2):
            raise SimulationError(
                "streamed replay diverged from monolithic run_trace: "
                + _fingerprint_diff(streamed_fp,
                                    runtime_fingerprint(rt2, report2)))
    return {
        "workload": "hot-mix-stream",
        "num_accesses": num_accesses,
        "chunk": chunk,
        "streamed_seconds": streamed_s,
        "monolithic_seconds": monolithic_s,
        "maccesses_per_s": num_accesses / streamed_s / 1e6,
        "fingerprint_matches_monolithic": True,
    }


def run_runtime_bench(quick: bool = False,
                      cases: Optional[Sequence[RuntimeBenchCase]] = None,
                      streaming: Optional[bool] = None
                      ) -> Dict[str, object]:
    """Run the end-to-end runtime suite; returns the report payload.

    ``streaming`` adds the columnar streaming scale point (defaults to
    on for full runs, off for ``--quick``).
    """
    if cases is None:
        cases = (RUNTIME_QUICK_CASES if quick
                 else (RUNTIME_CANONICAL_CASE, *RUNTIME_EXTRA_CASES))
    if streaming is None:
        streaming = not quick
    scalar_runs = 1 if quick else 2
    batched_runs = 2 if quick else 4
    case_results = [run_runtime_case(c, scalar_runs, batched_runs)
                    for c in cases]
    canonical = next(
        (c for c in case_results
         if c["workload"] == RUNTIME_CANONICAL_CASE.workload),
        case_results[0])
    payload = {
        "benchmark": "kona-runtime-engine-bench",
        "version": 1,
        "quick": quick,
        "methodology": ("best-of-N wall time per run_trace engine on "
                        "identical traces, fresh runtime per run, "
                        "untimed hot-set warmup where the case defines "
                        "one; full cross-layer state fingerprints "
                        "verified equal"),
        "host": host_metadata(),
        "created_unix": int(time.time()),
        "cases": case_results,
        "canonical_workload": canonical["workload"],
        "canonical_speedup": canonical["speedup"],
    }
    if streaming:
        payload["streaming"] = run_streaming_case()
    return payload


def write_bench(payload: Dict[str, object], path: str = BENCH_FILENAME) -> str:
    """Write the report JSON; returns the path."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def history_record(payload: Dict[str, object]) -> Dict[str, object]:
    """Compact one-line form of a bench payload for the history log.

    Keeps the host fingerprint and per-case speedups (what the perf
    gate compares) and drops the bulky per-level counters, so the log
    stays greppable and cheap to append forever.
    """
    cases = []
    for case in payload["cases"]:
        fast = "batched" if "batched" in case else "vectorized"
        cases.append({
            "workload": case["workload"],
            "num_accesses": case["num_accesses"],
            "speedup": case["speedup"],
            "scalar_seconds": case["scalar"]["seconds"],
            f"{fast}_seconds": case[fast]["seconds"],
        })
    record = {
        "benchmark": payload["benchmark"],
        "version": payload["version"],
        "quick": payload["quick"],
        "created_unix": payload["created_unix"],
        "host": payload["host"],
        "cases": cases,
        "canonical_workload": payload["canonical_workload"],
        "canonical_speedup": payload["canonical_speedup"],
    }
    streaming = payload.get("streaming")
    if streaming is not None:
        record["streaming"] = {
            "workload": streaming["workload"],
            "num_accesses": streaming["num_accesses"],
            "streamed_seconds": streaming["streamed_seconds"],
            "maccesses_per_s": streaming["maccesses_per_s"],
        }
    return record


def append_history(payload: Dict[str, object],
                   path: str = HISTORY_FILENAME) -> str:
    """Append one history record for this bench run; returns the path.

    The log is append-only JSONL under ``benchmarks/out/`` so
    ``repro perfdiff`` and the CI perf gate have a run-over-run
    baseline source beyond the committed ``BENCH_*.json`` snapshots.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(history_record(payload), sort_keys=True))
        fh.write("\n")
    return path


def load_history(path: str = HISTORY_FILENAME,
                 benchmark: Optional[str] = None) -> List[Dict[str, object]]:
    """All history records (optionally one benchmark's), oldest first."""
    if not os.path.exists(path):
        return []
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if benchmark is None or record.get("benchmark") == benchmark:
                records.append(record)
    return records


#: Per-case speedup floors for the miss-heavy workload-model cases.
#: These ride the coalesced miss-replay path, which must beat the
#: scalar oracle outright — not merely avoid losing to it — so their
#: floors sit above the generic ``min_case_speedup`` of 1.0x.  The
#: values are deliberately well under the measured speedups (~2x on
#: the reference host) to absorb CI-runner noise while still catching
#: a real coalescing regression, which shows up as a collapse toward
#: parity with the scalar engine.
RUNTIME_CASE_FLOORS: Dict[str, float] = {
    "page-rank": 1.3,
    "voltdb-tpcc": 1.3,
    "page-rank-miss": 1.3,
}


def check_speedup(payload: Dict[str, object], min_speedup: float,
                  min_case_speedup: float = 1.0,
                  case_floors: Optional[Dict[str, float]] = None,
                  ) -> List[str]:
    """Regression gate: canonical speedup must reach ``min_speedup``,
    and *every* committed case must reach ``min_case_speedup`` — the
    batched engine being slower than the oracle anywhere is a
    regression no canonical-case win excuses.

    ``case_floors`` maps case labels to per-case floors that override
    ``min_case_speedup`` (it defaults to :data:`RUNTIME_CASE_FLOORS`,
    which raises the bar for the miss-heavy coalesced-replay cases).

    Returns a list of failure messages (empty when the gate passes).
    """
    if case_floors is None:
        case_floors = RUNTIME_CASE_FLOORS
    failures = []
    got = payload["canonical_speedup"]
    if got < min_speedup:
        failures.append(
            f"canonical speedup {got:.2f}x below required {min_speedup}x")
    for case in payload.get("cases", ()):
        floor = max(min_case_speedup,
                    case_floors.get(case["workload"], min_case_speedup))
        if case["speedup"] < floor:
            failures.append(
                f"{case['workload']} speedup {case['speedup']:.2f}x below "
                f"required {floor}x")
        if not case.get("counters_match", False):
            failures.append(f"{case['workload']} counters diverged "
                            f"between engines")
    streaming = payload.get("streaming")
    if streaming is not None and not streaming.get(
            "fingerprint_matches_monolithic", False):
        failures.append("streamed replay fingerprint diverged from "
                        "monolithic run_trace")
    return failures
