"""Partition-sharded trace execution over worker processes.

A 100M+-access columnar trace replays faster when split across CPU
cores, but only if the split cannot change the answer.  This runner
partitions by *address*, not by position: shard ``s`` of ``S`` owns
every access whose 4 KB page satisfies ``page % S == s``.  That gives
two properties the tests pin down:

* **disjoint and covering** — every access lands in exactly one shard,
  so the shard access counts always sum to the trace length;
* **deterministic** — a shard's sub-stream depends only on the trace
  and ``(s, S)``, never on scheduling, so serial and parallel runs
  merge to identical totals.

Each worker models an independent compute node running its own full
Kona runtime over its address partition (the scale-out deployment of
the paper's section 5: per-node coherence domains over shared FMem);
per-shard counters aggregate with :meth:`Counter.merge`.  Because the
partition is by page, a worker's FMem/front-cache behaviour is closed
under its own addresses — no shard ever observes another's lines.

Workers stream their partition from the memory-mapped columnar trace
in fixed chunks, so peak RSS per worker stays at chunk size no matter
the trace length.  ``processes<=1`` runs serially in-process — same
results, no pool — matching :mod:`repro.experiments.sweep`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import Pool
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..common import units
from ..common.errors import ConfigError
from ..common.stats import Counter
from ..workloads.trace import open_columnar

#: The engine maintenance cadence (see ``repro.kona.engine._CADENCE``):
#: all but the last chunk handed to ``run_trace_stream`` must be a
#: multiple of this for bit-exact equivalence with a monolithic run.
_CADENCE = 256


@dataclass(frozen=True)
class ShardSpec:
    """One shard's work order (picklable: sent to pool workers)."""

    trace_path: str               # columnar trace directory
    shard: int
    num_shards: int
    engine: str = "batched"
    chunk_size: int = 1 << 20     # trace read granularity (accesses)
    fmem_mb: int = 64
    vfmem_mb: int = 256
    app_ns: float = 70.0
    capture: bool = False         # per-shard causal fault capture
    fleet: bool = False           # snapshot the shard's fleet members
    tenant: Optional[str] = None  # tenant label on fleet snapshots

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ConfigError(f"num_shards {self.num_shards} must be "
                              f"positive")
        if not 0 <= self.shard < self.num_shards:
            raise ConfigError(f"shard {self.shard} outside "
                              f"[0, {self.num_shards})")
        if self.chunk_size <= 0 or self.chunk_size % _CADENCE:
            raise ConfigError(f"chunk_size {self.chunk_size} must be a "
                              f"positive multiple of {_CADENCE}")


@dataclass
class ShardOutcome:
    """What one worker hands back (picklable)."""

    shard: int
    accesses: int
    elapsed_ns: float
    counters: Counter
    remote_fetches: int
    pages_evicted: int
    fault_log: Optional[object] = None   # FaultLog when capture was on
    #: ComponentSnapshots of the shard's topology when ``fleet`` was
    #: on.  Component labels are shard-qualified (``runtime:shard3``,
    #: ``memnode:shard3.mem0``...) so fleet membership stays unique.
    snapshots: Optional[List[object]] = None


@dataclass
class ShardedRunResult:
    """All shards of one run, plus the merged totals."""

    specs: List[ShardSpec]
    outcomes: List[ShardOutcome]
    totals: Counter

    @property
    def accesses(self) -> int:
        """Total accesses executed across all shards."""
        return sum(o.accesses for o in self.outcomes)

    @property
    def elapsed_ns(self) -> float:
        """Wall-model time of the sharded deployment: the slowest
        shard (they run concurrently on independent nodes)."""
        return max((o.elapsed_ns for o in self.outcomes), default=0.0)

    def fault_log(self):
        """All shards' causal fault logs merged into one (None when
        capture was off).  Per-shard record streams are disjoint
        (page-modulo partition), so the merge is the exact cluster
        aggregate — see ``FaultLog.merge``."""
        merged = None
        for outcome in self.outcomes:
            log = outcome.fault_log
            if log is None:
                continue
            if merged is None:
                from ..obs.causal import FaultLog
                merged = FaultLog(window_size=log.window_size,
                                  top_k=log.top_k,
                                  reservoir_size=log.reservoir_size,
                                  seed=log.seed)
            merged.merge(log)
        return merged

    def fleet(self, name: str = "sharded-run"):
        """All shards' component snapshots as one FleetRecorder.

        None unless the specs asked for ``fleet`` capture.  Shard
        partitions are disjoint, so the fleet's :meth:`~repro.obs.
        fleet.FleetRecorder.totals` over the runtime components equal
        a monolithic run's counters exactly — the property the fleet
        aggregation tests pin.
        """
        members = [snap for outcome in self.outcomes
                   for snap in (outcome.snapshots or [])]
        if not members:
            return None
        from ..obs.fleet import FleetRecorder
        fleet = FleetRecorder(name=name)
        for member in members:
            fleet.add(member)
        return fleet


def shard_mask(addrs: np.ndarray, shard: int, num_shards: int,
               page_size: int = units.PAGE_4K) -> np.ndarray:
    """The boolean partition mask: page-modulo ownership.

    Pages (not lines) are the unit so a shard owns whole FMem fetch
    blocks — a page's lines never split across runtimes.
    """
    pages = np.asarray(addrs, dtype=np.uint64) // np.uint64(page_size)
    return pages % np.uint64(num_shards) == np.uint64(shard)


def _aligned_chunks(parts: Iterator[Tuple[np.ndarray, np.ndarray]]
                    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Re-chunk a filtered stream to maintenance-cadence multiples.

    Partition filtering leaves ragged chunk lengths; buffering to
    ``_CADENCE`` multiples keeps ``run_trace_stream``'s bit-exactness
    contract (only the final chunk may be ragged).
    """
    addr_parts: List[np.ndarray] = []
    write_parts: List[np.ndarray] = []
    buffered = 0
    for addrs, writes in parts:
        if not addrs.size:
            continue
        addr_parts.append(addrs)
        write_parts.append(writes)
        buffered += int(addrs.size)
        if buffered >= _CADENCE:
            addr_buf = np.concatenate(addr_parts)
            write_buf = np.concatenate(write_parts)
            emit = buffered - (buffered % _CADENCE)
            yield addr_buf[:emit], write_buf[:emit]
            addr_parts = [addr_buf[emit:]]
            write_parts = [write_buf[emit:]]
            buffered -= emit
    if buffered:
        yield np.concatenate(addr_parts), np.concatenate(write_parts)


def run_shard(spec: ShardSpec) -> ShardOutcome:
    """Execute one shard (module-level: picklable for the pool).

    Builds a fresh runtime, maps the trace's region, and streams the
    shard's partition of the memory-mapped trace through
    ``run_trace_stream`` with per-chunk rebasing — the trace is never
    materialized, shifted or copied whole.
    """
    from ..kona.config import KonaConfig
    from ..kona.runtime import KonaRuntime

    columnar = open_columnar(spec.trace_path)
    cfg = KonaConfig(fmem_capacity=spec.fmem_mb * units.MB,
                     vfmem_capacity=spec.vfmem_mb * units.MB,
                     slab_bytes=16 * units.MB)
    rt = KonaRuntime(cfg, app_ns_per_access=spec.app_ns)
    region = rt.mmap(columnar.memory_bytes)
    cap = rt.attach_causal_capture() if spec.capture else None

    def parts():
        for addrs, writes in columnar.iter_chunks(spec.chunk_size):
            keep = shard_mask(addrs, spec.shard, spec.num_shards)
            if keep.any():
                yield (addrs[keep].astype(np.int64),
                       np.asarray(writes[keep]))

    report = rt.run_trace_stream(_aligned_chunks(parts()),
                                 engine=spec.engine, base=region.start)
    counters = Counter()
    counters.merge(rt.counters)
    counters.add("shard_accesses", report.accesses)
    counters.add("remote_fetches", rt.agent.counters["remote_fetches"])
    counters.add("pages_evicted", rt.eviction.stats.pages_evicted)
    snapshots = None
    if spec.fleet:
        # Shard-qualify every component label: each worker runs a full
        # private topology, so ``memnode:mem0`` would collide across
        # shards without the ``shardN.`` qualifier.
        snapshots = [rt.fleet_snapshot(
            component=f"runtime:shard{spec.shard}", tenant=spec.tenant)]
        snapshots.append(rt.fabric.component_snapshot(
            component=f"fabric:shard{spec.shard}", tenant=spec.tenant))
        for name in rt.controller.nodes:
            snapshots.append(rt.controller.node(name).component_snapshot(
                component=f"memnode:shard{spec.shard}.{name}",
                tenant=spec.tenant))
    return ShardOutcome(
        shard=spec.shard, accesses=report.accesses,
        elapsed_ns=report.elapsed_ns, counters=counters,
        remote_fetches=rt.agent.counters["remote_fetches"],
        pages_evicted=rt.eviction.stats.pages_evicted,
        fault_log=cap.log if cap is not None else None,
        snapshots=snapshots)


def make_shards(trace_path: str, num_shards: int,
                engine: str = "batched", chunk_size: int = 1 << 20,
                fmem_mb: int = 64, vfmem_mb: int = 256,
                app_ns: float = 70.0, capture: bool = False,
                fleet: bool = False,
                tenant: Optional[str] = None) -> List[ShardSpec]:
    """Build the spec list for every shard of a trace."""
    return [ShardSpec(trace_path=trace_path, shard=s,
                      num_shards=num_shards, engine=engine,
                      chunk_size=chunk_size, fmem_mb=fmem_mb,
                      vfmem_mb=vfmem_mb, app_ns=app_ns,
                      capture=capture, fleet=fleet, tenant=tenant)
            for s in range(num_shards)]


def run_sharded(specs: Sequence[ShardSpec],
                processes: Optional[int] = None) -> ShardedRunResult:
    """Run every shard, fanning out over a process pool.

    Results are in shard order either way, and identical between
    serial and parallel modes.  The partition-coverage invariant is
    asserted here: the shard access counts must sum to the trace
    length, or the partition dropped or duplicated accesses.
    """
    specs = list(specs)
    if not specs:
        raise ConfigError("sharded run needs at least one shard")
    paths = {spec.trace_path for spec in specs}
    shards = {(spec.shard, spec.num_shards) for spec in specs}
    if len(paths) != 1 or len(shards) != len(specs):
        raise ConfigError("shard specs must cover one trace with "
                          "distinct shard indices")
    if processes is None:
        processes = min(os.cpu_count() or 1, len(specs))
    if processes <= 1:
        outcomes = [run_shard(spec) for spec in specs]
    else:
        with Pool(processes=processes) as pool:
            outcomes = pool.map(run_shard, specs)
    totals = Counter()
    for outcome in outcomes:
        totals.merge(outcome.counters)
    expected = open_columnar(specs[0].trace_path).length
    if (len(specs) == specs[0].num_shards
            and sum(o.accesses for o in outcomes) != expected):
        raise ConfigError(
            f"partition violated coverage: shard accesses sum to "
            f"{sum(o.accesses for o in outcomes)}, trace has {expected}")
    return ShardedRunResult(specs=specs, outcomes=outcomes, totals=totals)
