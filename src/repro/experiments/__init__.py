"""Experiment drivers: one module per paper table/figure.

Each driver runs the full experiment at a laptop-friendly scale and
returns a structured result with both the measured series and the
paper's reference values, ready for the benchmark harness to print and
assert.  Examples reuse the same drivers, so the numbers in the README
and EXPERIMENTS.md come from exactly this code.
"""

from .bench import (
    BenchCase,
    RUNTIME_CASE_FLOORS,
    append_history,
    check_speedup,
    load_history,
    run_bench,
    run_case,
    write_bench,
)
from .chaos import build_chaos_runtime, chaos_stream, run_chaos
from .control import KONA_SLOS, ControlReport, run_control
from .failover import (
    FAILOVER_SLOS,
    FailoverResult,
    build_failover_runtime,
    run_failover,
)
from .faults import (
    MAX_CAPTURE_OVERHEAD,
    attribution_report,
    check_capture_overhead,
    measure_capture_overhead,
    run_causal_bench,
    run_fault_campaign,
    write_causal_bench,
)
from .fig7 import Fig7Result, run_fig7
from .flight import instant_summary, run_flight, span_summary
from .fig8 import Fig8Result, run_fig8_amat, run_fig8d_blocksize
from .fig9 import Fig9Result, run_fig9
from .fig10 import Fig10Result, run_fig10
from .fig11 import Fig11Result, run_fig11, run_fig11c_breakdown
from .headline import HeadlineResult, run_headline
from .sweep import SweepPoint, SweepResult, run_sweep, sweep_grid
from .table2 import Table2Result, run_table2
from .sections import (
    run_sec21_motivation,
    run_sec61_baseline_parity,
    run_sec62_simulation_overhead,
    run_sec63_tracker_overhead,
)

__all__ = [
    "BenchCase",
    "ControlReport",
    "FAILOVER_SLOS",
    "FailoverResult",
    "Fig10Result",
    "Fig11Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "HeadlineResult",
    "KONA_SLOS",
    "MAX_CAPTURE_OVERHEAD",
    "RUNTIME_CASE_FLOORS",
    "SweepPoint",
    "SweepResult",
    "Table2Result",
    "append_history",
    "attribution_report",
    "build_chaos_runtime",
    "build_failover_runtime",
    "chaos_stream",
    "check_capture_overhead",
    "check_speedup",
    "instant_summary",
    "measure_capture_overhead",
    "load_history",
    "run_bench",
    "run_case",
    "run_causal_bench",
    "run_chaos",
    "run_control",
    "run_failover",
    "run_fault_campaign",
    "run_fig10",
    "run_fig11",
    "run_fig11c_breakdown",
    "run_fig7",
    "run_fig8_amat",
    "run_fig8d_blocksize",
    "run_fig9",
    "run_flight",
    "run_headline",
    "run_sec21_motivation",
    "run_sec61_baseline_parity",
    "run_sec62_simulation_overhead",
    "run_sec63_tracker_overhead",
    "run_sweep",
    "run_table2",
    "span_summary",
    "sweep_grid",
    "write_bench",
    "write_causal_bench",
]
