"""Figure 9: per-window dirty-amplification reduction (section 6.3).

KTracker runs Redis-Rand and Redis-Seq in one-second windows and plots
the ratio of 4 KB-page dirty bytes to content-changed cache-line bytes
per window.  The paper reports 2-10X for the random workload, ~2X for
the sequential one, with the first ~10 windows (server startup) looking
identical across workloads, and excludes the final tear-down window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .. import units
from ..tools.ktracker import KTracker, redis_rand_ktracker, redis_seq_ktracker


@dataclass
class Fig9Result:
    """Per-window ratio series per workload."""

    series: Dict[str, List[Tuple[int, float]]]
    startup_windows: int

    def steady_ratios(self, workload: str) -> List[float]:
        """Ratios after startup (what the paper's bands describe)."""
        return [r for w, r in self.series[workload]
                if w >= self.startup_windows]

    def band(self, workload: str) -> Tuple[float, float]:
        """(min, max) steady-state ratio."""
        ratios = self.steady_ratios(workload)
        return min(ratios), max(ratios)

    def mean(self, workload: str) -> float:
        """Mean steady-state ratio."""
        ratios = self.steady_ratios(workload)
        return sum(ratios) / len(ratios)


def run_fig9(windows_rand: int = 40, windows_seq: int = 24,
             memory_bytes: int = 64 * units.MB,
             seed: int = 11) -> Fig9Result:
    """Run KTracker over both Redis workloads."""
    series: Dict[str, List[Tuple[int, float]]] = {}
    startup = 10
    rand = redis_rand_ktracker(memory_bytes=memory_bytes)
    trace = rand.generate(windows=windows_rand, seed=seed)
    report = KTracker(rand.memory_bytes).run(trace, name="redis-rand")
    series["redis-rand"] = report.ratio_series()

    seq = redis_seq_ktracker(memory_bytes=memory_bytes // 2)
    trace = seq.generate(windows=windows_seq, seed=seed)
    report = KTracker(seq.memory_bytes).run(trace, name="redis-seq")
    series["redis-seq"] = report.ratio_series()
    return Fig9Result(series=series, startup_windows=startup)
