"""Figure 8: AMAT vs local cache size and fetch block size (section 6.2).

Panels (a)-(c) sweep the local cache from 0% to 100% of the data set
for Redis-Rand, Linear Regression, and Graph Coloring, pricing the same
simulated miss profile under Kona, Kona-main, LegoOS and Infiniswap.
Panel (d) sweeps the fetch block size from 64 B to 30 KB at several
cache sizes (Redis-Rand).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from .. import units
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..tools.kcachesim import KCacheSim
from ..workloads.amat import AMAT_SPECS

#: Cache sizes on the x-axis (% of the data set, as in the paper).
CACHE_FRACTIONS = (0.0, 0.25, 0.50, 0.75, 1.0)
#: Block sizes for panel (d): cache-line up to ~30 KB (the model's
#: set-associative geometry needs powers of two, so 32 KB stands in
#: for the paper's 30 KB endpoint).
BLOCK_SIZES = (64, 256, 1024, 4096, 8192, 16384, 32 * units.KB)
#: Cache fractions shown in panel (d).
FIG8D_FRACTIONS = (0.27, 0.54, 1.0)

SYSTEMS = ("kona", "kona-main", "legoos", "infiniswap")


@dataclass
class Fig8Result:
    """AMAT (ns) indexed by [workload][system][cache_fraction]."""

    amat_ns: Dict[str, Dict[str, Dict[float, float]]] = field(
        default_factory=dict)

    def improvement_at(self, workload: str, fraction: float,
                       baseline: str) -> float:
        """Kona's AMAT advantage over ``baseline`` at one cache size."""
        series = self.amat_ns[workload]
        return series[baseline][fraction] / series["kona"][fraction]

    def numa_overhead(self, workload: str, fraction: float) -> float:
        """Kona's overhead vs Kona-main (the FMem NUMA penalty)."""
        series = self.amat_ns[workload]
        return (series["kona"][fraction] / series["kona-main"][fraction]
                - 1.0)

    def rows(self, workload: str):
        """(cache %, kona, kona-main, legoos, infiniswap) rows."""
        series = self.amat_ns[workload]
        for fraction in sorted(series["kona"]):
            yield (int(fraction * 100),
                   *(series[s][fraction] for s in SYSTEMS))


def run_fig8_amat(workloads: Sequence[str] = ("redis-rand",
                                              "linear-regression",
                                              "graph-coloring"),
                  fractions: Sequence[float] = CACHE_FRACTIONS,
                  data_bytes: int = 16 * units.MB,
                  num_ops: int = 40_000,
                  latency: LatencyModel = DEFAULT_LATENCY,
                  seed: int = 0) -> Fig8Result:
    """Panels (a)-(c): AMAT as a function of local cache size."""
    result = Fig8Result()
    for name in workloads:
        spec = AMAT_SPECS[name](data_bytes=data_bytes)
        sim = KCacheSim(spec, latency)
        per_system: Dict[str, Dict[float, float]] = {s: {} for s in SYSTEMS}
        for fraction in fractions:
            run = sim.run(fraction, num_ops=num_ops, seed=seed)
            for system in SYSTEMS:
                per_system[system][fraction] = run.amat_ns(system)
        result.amat_ns[name] = per_system
    return result


def run_fig8d_blocksize(blocks: Sequence[int] = BLOCK_SIZES,
                        fractions: Sequence[float] = FIG8D_FRACTIONS,
                        data_bytes: int = 16 * units.MB,
                        num_ops: int = 40_000,
                        latency: LatencyModel = DEFAULT_LATENCY,
                        seed: int = 0) -> Dict[float, Dict[int, float]]:
    """Panel (d): Kona AMAT by fetch block size, per cache fraction."""
    spec = AMAT_SPECS["redis-rand"](data_bytes=data_bytes)
    sim = KCacheSim(spec, latency)
    out: Dict[float, Dict[int, float]] = {}
    for fraction in fractions:
        out[fraction] = {
            block: sim.run(fraction, block_size=block,
                           num_ops=num_ops, seed=seed).amat_ns("kona")
            for block in blocks
        }
    return out


def best_block(sweep: Dict[int, float]) -> int:
    """The block size with the lowest AMAT in one panel-(d) series."""
    return min(sweep, key=sweep.get)
