"""Parallel KCacheSim parameter sweeps.

The AMAT study is embarrassingly parallel: every (workload,
cache-fraction, block-size) grid point is an independent simulation.
This runner fans the grid out over a :mod:`multiprocessing` pool while
keeping results deterministic:

* every point carries an explicit seed, so a point's trace is the same
  no matter which worker runs it or in what order;
* ``Pool.map`` returns results in submission order, so the output list
  is identical to a serial run.

``processes=1`` (or a single-CPU machine) runs serially in-process —
same results, no pool — which also keeps the runner usable on
platforms where fork is unavailable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing import Pool
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cache.amat import ALL_SYSTEMS
from ..common import units
from ..common.errors import ConfigError
from ..common.stats import Counter
from ..obs.registry import HistogramMetric
from ..tools.kcachesim import KCacheSim
from ..workloads.amat import AMAT_SPECS


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a sweep (picklable: sent to pool workers)."""

    workload: str
    cache_fraction: float
    block_size: int = units.PAGE_4K
    num_ops: int = 60_000
    seed: int = 0
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.workload not in AMAT_SPECS:
            raise ConfigError(
                f"unknown workload {self.workload!r}; "
                f"choose from {sorted(AMAT_SPECS)}")


@dataclass
class SweepResult:
    """All grid points of one sweep, in grid order."""

    points: List[SweepPoint]
    #: Per-point AMAT in ns under every system.
    amat_ns: List[Dict[str, float]]
    #: Per-point served fractions by level name (plus ``remote``).
    served: List[Dict[str, float]] = field(default_factory=list)
    #: Per-point traffic counters (accesses, remote traffic, level hits).
    counters: List[Counter] = field(default_factory=list)
    #: Whole-sweep traffic, aggregated across every worker's points.
    totals: Counter = field(default_factory=Counter)
    #: Whole-sweep AMAT distribution (every system at every point),
    #: folded from per-worker histograms via ``HistogramMetric.merge``
    #: — bucket counts identical to a serial single-histogram run.
    amat_hist: HistogramMetric = field(default_factory=HistogramMetric)

    def series(self, system: str) -> List[Tuple[float, float]]:
        """(cache_fraction, amat_ns) pairs for one system, grid order."""
        return [(p.cache_fraction, a[system])
                for p, a in zip(self.points, self.amat_ns)]


def sweep_grid(workloads: Iterable[str],
               cache_fractions: Iterable[float],
               block_sizes: Iterable[int] = (units.PAGE_4K,),
               num_ops: int = 60_000,
               base_seed: int = 0,
               engine: str = "vectorized") -> List[SweepPoint]:
    """Build the cross-product grid with per-point deterministic seeds.

    Seeds are derived from the point's position in the grid, not from
    scheduling, so re-running any subset reproduces the same traces.
    """
    points = []
    for w in workloads:
        for b in block_sizes:
            for f in cache_fractions:
                points.append(SweepPoint(
                    workload=w, cache_fraction=f, block_size=b,
                    num_ops=num_ops, seed=base_seed + len(points),
                    engine=engine))
    return points


def _run_point(point: SweepPoint) -> Tuple[Dict[str, float],
                                           Dict[str, float], Counter,
                                           HistogramMetric]:
    """Simulate one grid point (module-level: picklable for the pool)."""
    spec = AMAT_SPECS[point.workload]()
    sim = KCacheSim(spec, engine=point.engine)
    result = sim.run(point.cache_fraction, block_size=point.block_size,
                     num_ops=point.num_ops, seed=point.seed)
    amat = {name: result.amat_ns(name) for name in ALL_SYSTEMS}
    hierarchy = result.hierarchy
    tally = Counter()
    tally.add("accesses", hierarchy.accesses)
    tally.add("remote_fetches", hierarchy.remote_fetches)
    tally.add("remote_writebacks", hierarchy.remote_writebacks)
    for level, hits in hierarchy.level_hits.items():
        tally.add(f"hits.{level}", hits)
    hist = HistogramMetric()
    for name in ALL_SYSTEMS:
        hist.observe(amat[name])
    return amat, hierarchy.served_fractions(), tally, hist


def run_sweep(points: Sequence[SweepPoint],
              processes: Optional[int] = None) -> SweepResult:
    """Run a sweep, fanning out over a process pool.

    ``processes`` defaults to ``os.cpu_count()`` capped by the number
    of points; ``processes<=1`` runs serially.  Results are in
    ``points`` order either way, and identical between the two modes.
    """
    points = list(points)
    if not points:
        raise ConfigError("sweep needs at least one point")
    if processes is None:
        processes = min(os.cpu_count() or 1, len(points))
    if processes <= 1:
        outcomes = [_run_point(p) for p in points]
    else:
        with Pool(processes=processes) as pool:
            outcomes = pool.map(_run_point, points)
    totals = Counter()
    amat_hist = HistogramMetric()
    for _, _, tally, hist in outcomes:
        totals.merge(tally)
        amat_hist.merge(hist)
    return SweepResult(points=points,
                       amat_ns=[a for a, _, _, _ in outcomes],
                       served=[s for _, s, _, _ in outcomes],
                       counters=[c for _, _, c, _ in outcomes],
                       totals=totals,
                       amat_hist=amat_hist)
