"""The paper's headline claims, measured in one call.

Abstract/§1: coherence-based remote memory "improves average memory
access time by 1.7-5X and reduces dirty data amplification by 2-10X,
compared to state-of-the-art systems", improves dirty-tracking
performance by up to 35%, and improves eviction network goodput 4-5X.
This module computes each headline number from the same experiment
drivers the figures use, for the CLI's summary view and the README.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..analysis import paper
from .fig8 import run_fig8_amat
from .fig9 import run_fig9
from .fig10 import run_fig10
from .fig11 import run_fig11


@dataclass(frozen=True)
class HeadlineResult:
    """Measured headline metrics next to the paper's claims."""

    amat_vs_legoos: float            # paper: 1.7X
    amat_vs_infiniswap: float        # paper: 5X
    amplification_band: Tuple[float, float]   # paper: 2-10X
    max_tracking_speedup_pct: float  # paper: 35%
    goodput_band: Tuple[float, float]          # paper: 4-5X (1-4 lines)

    def rows(self):
        """(claim, paper, measured) rows."""
        yield ("AMAT vs LegoOS @25% cache", "1.7X",
               f"{self.amat_vs_legoos:.1f}X")
        yield ("AMAT vs Infiniswap @25% cache", "5X",
               f"{self.amat_vs_infiniswap:.1f}X")
        yield ("dirty amplification reduction", "2-10X",
               f"{self.amplification_band[0]:.1f}-"
               f"{self.amplification_band[1]:.1f}X")
        yield ("max tracking speedup", "35%",
               f"{self.max_tracking_speedup_pct:.0f}%")
        yield ("eviction goodput (1-4 dirty lines)", "4-5X",
               f"{self.goodput_band[0]:.1f}-{self.goodput_band[1]:.1f}X")

    def all_claims_hold(self) -> bool:
        """Whether every headline lands inside its asserted band."""
        checks = [
            paper.within(self.amat_vs_legoos,
                         paper.FIG8_KONA_VS_LEGOOS_AT_25),
            paper.within(self.amat_vs_infiniswap,
                         paper.FIG8_KONA_VS_INFINISWAP_AT_25),
            self.amplification_band[0] >= 1.8,
            self.amplification_band[1] <= 11.0,
            30.0 <= self.max_tracking_speedup_pct <= 38.0,
            all(paper.within(g, paper.FIG11A_CONTIG_1_4)
                for g in self.goodput_band),
        ]
        return all(checks)


def run_headline(num_ops: int = 30_000) -> HeadlineResult:
    """Measure every abstract-level claim."""
    fig8 = run_fig8_amat(workloads=("redis-rand",), num_ops=num_ops)
    fig9 = run_fig9(windows_rand=30, windows_seq=16)
    fig10 = run_fig10()
    fig11 = run_fig11(pattern="contiguous", line_counts=(1, 2, 4))
    kona_goodput = [v for _, v in fig11.series("kona-cl-log")]
    band = fig9.band("redis-rand")
    return HeadlineResult(
        amat_vs_legoos=fig8.improvement_at("redis-rand", 0.25, "legoos"),
        amat_vs_infiniswap=fig8.improvement_at("redis-rand", 0.25,
                                               "infiniswap"),
        amplification_band=(max(band[0], 1.0), band[1]),
        max_tracking_speedup_pct=max(fig10.speedup_pct.values()),
        goodput_band=(min(kona_goodput), max(kona_goodput)),
    )
