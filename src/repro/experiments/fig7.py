"""Figure 7: the Kona vs Kona-VM microbenchmark (paper section 6.1).

The benchmark allocates a region per thread and reads-then-writes one
cache line in every page.  Four systems run the identical stream:

* **Kona** — the full coherent runtime (eviction concurrent);
* **Kona-VM** — same algorithms on virtual memory, 50% local cache;
* **Kona-NoEvict / Kona-VM-NoEvict** — all data initially remote but
  the local cache holds everything (no eviction);
* **Kona-VM-NoWP** — write protection disabled (incomplete system:
  cannot track dirty data; a lower bound on fault cost).

Scaling: the region defaults to 32 MB/thread instead of the paper's
4 GB — every cost in both engines is per-page, so the time *ratios*
are scale-invariant; only absolute seconds shrink.

Multi-threading: each thread runs an identical independent stream, so
per-thread work is constant and total work grows with the thread count
(as in the paper).  Wall-clock time is the per-thread time scaled by a
shared-resource contention factor: Kona's fetches serialize at the
FPGA directory and NIC (a single coherent-link pipe), while Kona-VM's
page faults are handled per-core and contend only on the shootdown
IPIs.  This is why the paper's 6.6X advantage at one thread shrinks to
4-5X at 2-4 threads — and the same happens here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


from .. import units
from ..baselines import kona_vm, kona_vm_no_evict, kona_vm_no_wp
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..kona import KonaConfig, KonaRuntime
from ..workloads.synthetic import one_line_per_page

#: Per-extra-thread queueing at the FPGA directory / NIC pipe (Kona).
KONA_CONTENTION = 0.22
#: Per-extra-thread contention on fault handling / shootdowns (VM).
VM_CONTENTION = 0.05


def _contention(base: float, threads: int) -> float:
    return 1.0 + base * (threads - 1)


@dataclass
class Fig7Result:
    """Execution times (ns) per system per thread count."""

    region_bytes: int
    times_ns: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def speedup(self, threads: int, system: str = "kona-vm") -> float:
        """How much faster Kona is than ``system`` at ``threads``."""
        return self.times_ns[system][threads] / self.times_ns["kona"][threads]

    def noevict_speedup(self, threads: int = 1) -> float:
        """Kona-NoEvict over Kona-VM-NoEvict."""
        return (self.times_ns["kona-vm-noevict"][threads]
                / self.times_ns["kona-noevict"][threads])

    def nowp_slowdown(self, threads: int = 1) -> float:
        """Kona-VM-NoWP over Kona-NoEvict (the paper's 1.2-2.9X)."""
        return (self.times_ns["kona-vm-nowp"][threads]
                / self.times_ns["kona-noevict"][threads])

    def rows(self):
        """(system, threads, seconds) rows in Figure 7's layout."""
        for system, per_thread in self.times_ns.items():
            for threads, ns in sorted(per_thread.items()):
                yield system, threads, units.ns_to_s(ns)


def _run_kona(region_bytes: int, cache_fraction: float,
              latency: LatencyModel, app_ns: float) -> float:
    fmem = max(int(region_bytes * cache_fraction), 4 * units.PAGE_4K)
    vfmem = max(2 * region_bytes, 64 * units.MB)
    slab = 16 * units.MB
    vfmem = -(-vfmem // slab) * slab
    config = KonaConfig(fmem_capacity=fmem, vfmem_capacity=vfmem,
                        slab_bytes=slab)
    runtime = KonaRuntime(config, latency=latency, app_ns_per_access=app_ns)
    region = runtime.mmap(region_bytes)
    addrs, writes = one_line_per_page(region_bytes, base=region.start)[0]
    report = runtime.run_trace(addrs, writes)
    return report.elapsed_ns


def run_fig7(region_bytes: int = 32 * units.MB,
             threads: tuple = (1, 2, 4),
             cache_fraction: float = 0.5,
             latency: LatencyModel = DEFAULT_LATENCY,
             app_ns_per_access: float = 70.0) -> Fig7Result:
    """Run the full Figure 7 matrix and return all execution times."""
    result = Fig7Result(region_bytes=region_bytes)
    addrs, writes = one_line_per_page(region_bytes)[0]

    base_times = {
        "kona": _run_kona(region_bytes, cache_fraction, latency,
                          app_ns_per_access),
        "kona-vm": kona_vm(int(region_bytes * cache_fraction),
                           latency=latency,
                           app_ns_per_access=app_ns_per_access)
        .run(addrs, writes).elapsed_ns,
        "kona-noevict": _run_kona(region_bytes, 1.05, latency,
                                  app_ns_per_access),
        "kona-vm-noevict": kona_vm_no_evict(
            region_bytes, latency=latency,
            app_ns_per_access=app_ns_per_access)
        .run(addrs.copy(), writes).elapsed_ns,
        "kona-vm-nowp": kona_vm_no_wp(
            region_bytes, latency=latency,
            app_ns_per_access=app_ns_per_access)
        .run(addrs.copy(), writes).elapsed_ns,
    }
    for system, base in base_times.items():
        contention = (KONA_CONTENTION if system in ("kona", "kona-noevict")
                      else VM_CONTENTION)
        result.times_ns[system] = {
            t: base * _contention(contention, t) for t in threads}
    return result
