"""Slab placement policies for the rack controller.

Where a slab lands matters: round-robin spreads load, least-loaded
equalizes pools when nodes differ in size or tenancy, and first-fit
packs slabs to keep nodes fully drainable for decommissioning.  The
paper assumes a simple centralized allocator (section 4.1); these
policies are the knobs an operator of such a controller actually needs.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

from ..common.errors import ConfigError
from .memnode import MemoryNode


class PlacementPolicy(Protocol):
    """Chooses the node for the next slab."""

    def choose(self, candidates: Sequence[MemoryNode]) -> Optional[MemoryNode]:
        """Pick a node from live candidates with free slabs, or None."""


class RoundRobinPlacement:
    """Rotate across nodes (the default; spreads network load)."""

    def __init__(self) -> None:
        self._next = 0

    def choose(self, candidates: Sequence[MemoryNode]) -> Optional[MemoryNode]:
        eligible = [n for n in candidates if n.pool.free_slabs > 0]
        if not eligible:
            return None
        node = eligible[self._next % len(eligible)]
        self._next += 1
        return node


class LeastLoadedPlacement:
    """Pick the node with the most free slabs (capacity equalizing)."""

    def choose(self, candidates: Sequence[MemoryNode]) -> Optional[MemoryNode]:
        eligible = [n for n in candidates if n.pool.free_slabs > 0]
        if not eligible:
            return None
        return max(eligible, key=lambda n: (n.pool.free_slabs, n.name))


class FirstFitPlacement:
    """Fill nodes in name order (packs slabs; eases decommissioning)."""

    def choose(self, candidates: Sequence[MemoryNode]) -> Optional[MemoryNode]:
        for node in sorted(candidates, key=lambda n: n.name):
            if node.pool.free_slabs > 0:
                return node
        return None


PLACEMENTS = {
    "round-robin": RoundRobinPlacement,
    "least-loaded": LeastLoadedPlacement,
    "first-fit": FirstFitPlacement,
}


def make_placement(name: str) -> PlacementPolicy:
    """Instantiate a placement policy by name."""
    try:
        return PLACEMENTS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown placement {name!r}; choose from "
            f"{sorted(PLACEMENTS)}") from None


def imbalance(nodes: Sequence[MemoryNode]) -> float:
    """Spread between the fullest and emptiest node (0 = balanced).

    Measured as the difference in allocated fractions.
    """
    if not nodes:
        raise ConfigError("no nodes to measure")
    fractions = []
    for node in nodes:
        total = node.pool.free_slabs + node.pool.allocated_slabs
        fractions.append(node.pool.allocated_slabs / max(total, 1))
    return max(fractions) - min(fractions)
