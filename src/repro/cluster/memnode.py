"""Memory nodes: the disaggregated-memory side of the rack.

A memory node registers a pool with the rack controller, serves RDMA
reads/writes against it, and runs the **cache-line log receiver**: the
remote thread that unpacks Kona's aggregated dirty-line log and
scatters each 64 B record to its home address (paper section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


from ..common import units
from ..common.errors import ConfigError, NodeFailure
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..common.stats import Counter
from ..mem.address import AddressRange
from ..net.fabric import Fabric
from ..net.ring import LogRecord, RingBufferLog
from .replication import LineStore
from .slab import DEFAULT_SLAB_BYTES, Slab, SlabPool


@dataclass(frozen=True)
class UnpackReceipt:
    """Result of the log receiver draining a batch."""

    records: int
    unpack_ns: float      # remote CPU time spent scattering lines
    ack_sent: bool


class MemoryNode:
    """One disaggregated-memory server in the rack."""

    def __init__(self, name: str, capacity: int, fabric: Fabric,
                 slab_bytes: int = DEFAULT_SLAB_BYTES,
                 latency: LatencyModel = DEFAULT_LATENCY,
                 pool_base: int = 0) -> None:
        if capacity <= 0 or capacity % units.PAGE_4K:
            raise ConfigError(
                f"capacity {capacity} must be a positive 4 KiB multiple")
        self.name = name
        self.capacity = capacity
        self.fabric = fabric
        self.latency = latency
        fabric.add_node(name)
        self.pool = SlabPool(name, AddressRange(pool_base, capacity),
                             slab_bytes)
        self.log = RingBufferLog()
        self.counters = Counter()
        self._failed = False
        #: Replicated content: VFMem line -> versioned, checksummed
        #: payload.  Populated by the log receiver for records carrying
        #: a VFMem address; the durability proof reads it back.
        self.store = LineStore()
        #: Optional content store: remote_addr line -> payload hash,
        #: used by integration tests to verify scatter correctness.
        self._lines: Dict[int, int] = {}

    # -- health -------------------------------------------------------------------

    def fail(self) -> None:
        """Crash the node (paper section 4.5, failure class 3)."""
        self._failed = True
        self.fabric.fail_node(self.name)

    def recover(self) -> None:
        """Restart the node (its content is lost unless replicated)."""
        self._failed = False
        self.fabric.recover_node(self.name)
        self._lines.clear()
        self.store.clear()

    def _check_alive(self) -> None:
        if self._failed:
            raise NodeFailure(f"memory node {self.name!r} is down")

    @property
    def alive(self) -> bool:
        """Whether the node is serving."""
        return not self._failed

    # -- fleet telemetry ----------------------------------------------------------

    def component_snapshot(self, component: str = None,
                           tenant: str = None):
        """This node's telemetry as a fleet component snapshot.

        Memory nodes carry no flight recorder (their hot path is the
        log receiver); the snapshot is built straight from the counter
        bag plus the capacity/occupancy/liveness facts, under the
        ``memnode:<name>`` identity so the fleet's merged registry and
        Chrome trace pids line up with the causal fault chains that
        name this node.
        """
        from ..obs.fleet import ComponentSnapshot
        metrics = {f"memnode.{key}": value for key, value
                   in sorted(self.counters.as_dict().items())}
        kinds = {name: "counter" for name in metrics}
        metrics["memnode.capacity_bytes"] = self.capacity
        metrics["memnode.stored_lines"] = len(self.store)
        metrics["memnode.free_slabs"] = self.pool.free_slabs
        metrics["memnode.alive"] = int(self.alive)
        return ComponentSnapshot(
            component=component or f"memnode:{self.name}",
            tenant=tenant, metrics=metrics, kinds=kinds,
            meta={"node": self.name})

    # -- slab interface (used by the controller) ---------------------------------------

    def grant_slab(self) -> Slab:
        """Allocate one slab from the pool."""
        self._check_alive()
        self.counters.add("slabs_granted")
        return self.pool.allocate()

    def reclaim_slab(self, slab: Slab) -> None:
        """Return a slab."""
        self.pool.release(slab)
        self.counters.add("slabs_reclaimed")

    # -- the cache-line log receiver -----------------------------------------------------

    def receive_log(self, records: List[LogRecord]) -> None:
        """RDMA write landed a batch of log records in our ring."""
        self._check_alive()
        self.log.append(records)
        self.counters.add("log_batches")

    def drain_log(self, store_payloads: bool = False) -> UnpackReceipt:
        """The receiver thread: scatter pending records, send one ack.

        The per-record work is "a few memory reads and writes" (paper
        section 6.4): read the record, write 64 B at its destination.
        """
        self._check_alive()
        records = self.log.consume()
        per_record_ns = (self.latency.memcpy_per_byte_ns * units.CACHE_LINE
                         + 25.0)   # pointer chase + store of the header
        unpack_ns = per_record_ns * len(records)
        if store_payloads:
            for record in records:
                self._lines[record.remote_addr] = record.remote_addr
        for record in records:
            if record.vfmem_addr >= 0:
                self.store.apply(record)
        freed = self.log.acknowledge()
        self.counters.add("records_scattered", len(records))
        return UnpackReceipt(records=len(records), unpack_ns=unpack_ns,
                             ack_sent=freed > 0 or len(records) > 0)

    def stored_line_count(self) -> int:
        """Lines scattered with ``store_payloads=True`` (test hook)."""
        return len(self._lines)

    # -- chaos hooks -----------------------------------------------------------------

    def corrupt_lines(self, count: int, seed: int = 0) -> int:
        """Silently corrupt up to ``count`` stored lines (bit rot).

        The chaos engine's ``data_corruption`` fault lands here: payload
        bits flip, checksums do not, so the damage stays latent until a
        verify or scrub catches it.  Selection is seeded for replay.
        """
        addresses = self.store.addresses()
        if not addresses or count <= 0:
            return 0
        step = max(1, (seed * 2 + 1)) % max(len(addresses), 1) or 1
        corrupted = 0
        index = seed % len(addresses)
        for _ in range(min(count, len(addresses))):
            if self.store.corrupt(addresses[index % len(addresses)]):
                corrupted += 1
            index += step
        self.counters.add("lines_corrupted", corrupted)
        return corrupted
