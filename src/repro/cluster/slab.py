"""Slabs: the coarse unit of disaggregated-memory allocation.

The rack controller hands out memory in large slabs (paper section 4.1)
so allocation stays off the application's critical path; KLib's
resource manager splits slabs locally for fine-grained allocations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List

from ..common import units
from ..common.errors import AllocationError, ConfigError
from ..mem.address import AddressRange

#: Default slab size; large enough that a slab request amortizes many
#: application allocations (the paper allocates "one or multiple slabs").
DEFAULT_SLAB_BYTES = 64 * units.MB


@dataclass(frozen=True)
class Slab:
    """A contiguous chunk of one memory node's pool."""

    slab_id: int
    node: str
    remote_range: AddressRange

    @property
    def size(self) -> int:
        """Slab capacity in bytes."""
        return self.remote_range.size


class SlabPool:
    """Carves a memory node's registered pool into slabs."""

    _ids = itertools.count(1)

    def __init__(self, node: str, pool: AddressRange,
                 slab_bytes: int = DEFAULT_SLAB_BYTES) -> None:
        if slab_bytes <= 0 or slab_bytes % units.PAGE_4K:
            raise ConfigError(
                f"slab_bytes {slab_bytes} must be a positive 4 KiB multiple")
        if pool.size < slab_bytes:
            raise ConfigError("pool smaller than one slab")
        self.node = node
        self.pool = pool
        self.slab_bytes = slab_bytes
        self._free: List[AddressRange] = list(pool.split(slab_bytes))
        # Drop a trailing partial slab, if any.
        if self._free and self._free[-1].size < slab_bytes:
            self._free.pop()
        self._allocated: Dict[int, Slab] = {}

    @property
    def free_slabs(self) -> int:
        """Slabs still available."""
        return len(self._free)

    @property
    def allocated_slabs(self) -> int:
        """Slabs currently handed out."""
        return len(self._allocated)

    def allocate(self) -> Slab:
        """Take one slab; raises :class:`AllocationError` when exhausted."""
        if not self._free:
            raise AllocationError(f"node {self.node!r} has no free slabs")
        chunk = self._free.pop(0)
        slab = Slab(slab_id=next(self._ids), node=self.node,
                    remote_range=chunk)
        self._allocated[slab.slab_id] = slab
        return slab

    def release(self, slab: Slab) -> None:
        """Return a slab to the pool."""
        if slab.slab_id not in self._allocated:
            raise AllocationError(f"slab {slab.slab_id} not allocated here")
        del self._allocated[slab.slab_id]
        self._free.append(slab.remote_range)

    def __iter__(self) -> Iterator[Slab]:
        return iter(self._allocated.values())
