"""Rack-scale pieces: controller, memory nodes, slab allocation."""

from .controller import RackController
from .memnode import MemoryNode, UnpackReceipt
from .placement import (
    PLACEMENTS,
    FirstFitPlacement,
    LeastLoadedPlacement,
    RoundRobinPlacement,
    imbalance,
    make_placement,
)
from .slab import DEFAULT_SLAB_BYTES, Slab, SlabPool

__all__ = [
    "DEFAULT_SLAB_BYTES",
    "FirstFitPlacement",
    "LeastLoadedPlacement",
    "MemoryNode",
    "PLACEMENTS",
    "RackController",
    "RoundRobinPlacement",
    "Slab",
    "SlabPool",
    "UnpackReceipt",
    "imbalance",
    "make_placement",
]
