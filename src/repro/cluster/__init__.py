"""Rack-scale pieces: controller, memory nodes, slab allocation."""

from .controller import RackController
from .memnode import MemoryNode, UnpackReceipt
from .placement import (
    PLACEMENTS,
    FirstFitPlacement,
    LeastLoadedPlacement,
    RoundRobinPlacement,
    imbalance,
    make_placement,
)
from .replication import (
    DataPlane,
    FailoverReport,
    Lease,
    LineStore,
    ReplicaSet,
    ReplicationManager,
    StoredLine,
    line_checksum,
    line_payload,
)
from .slab import DEFAULT_SLAB_BYTES, Slab, SlabPool

__all__ = [
    "DEFAULT_SLAB_BYTES",
    "DataPlane",
    "FailoverReport",
    "FirstFitPlacement",
    "Lease",
    "LeastLoadedPlacement",
    "LineStore",
    "MemoryNode",
    "PLACEMENTS",
    "RackController",
    "ReplicaSet",
    "ReplicationManager",
    "RoundRobinPlacement",
    "Slab",
    "SlabPool",
    "StoredLine",
    "UnpackReceipt",
    "imbalance",
    "line_checksum",
    "line_payload",
    "make_placement",
]
