"""Primary/backup replication for remote pages (memnode failover).

Kona's failure story (paper section 4.5) survives a memory-node crash
via eviction-time replication, but a replica is only useful if someone
*promotes* it, fences the old primary, and rebuilds redundancy.  This
module is that someone:

* :class:`ReplicaSet` — one slab-sized VFMem window's primary slab,
  its backup slabs, and the window's **epoch**: a monotonically
  increasing generation number bumped on every primary change.  Pages
  inherit the epoch of their window.
* :class:`Lease` — the controller's grant of primaryship, bounded in
  simulated time.  Promotion after a crash must wait out the dead
  primary's lease before the new epoch is safe to serve — that wait is
  charged to the clock and shows up in MTTR.
* :class:`ReplicationManager` — the controller-side brain: registers
  replica sets as slabs are bound, grants/renews leases on writes,
  promotes backups when a node dies (rebinding the runtime's remote
  translation map so fetch *and* writeback traffic redirect), fences
  stale-epoch writes, and runs the background **re-replication** task
  that restores the replication factor onto surviving nodes.
* :class:`LineStore` — the per-memnode content store: every replicated
  dirty line lands here with a version, an epoch, a modeled 64-bit
  payload and a checksum.  Versions make redelivery idempotent
  (last-writer-wins fencing), checksums make a ``data_corruption``
  chaos fault detectable, and the union of primary stores is the
  **remote-memory image** the durability proof compares bit-for-bit
  against a no-fault oracle run.
* :class:`DataPlane` — the compute-side shadow of application data:
  a per-line write-version counter advanced by the runtime on every
  completed write access.  Payloads are a pure function of
  ``(line, version)``, so two runs that apply the same write stream
  must converge to the same remote image — which is exactly what the
  ``no acknowledged write lost`` invariant checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..common import units
from ..common.errors import AllocationError, ConfigError
from ..common.stats import Counter
from ..net.ring import LogRecord
from .slab import Slab


_MASK64 = (1 << 64) - 1


def line_payload(vfmem_addr: int, version: int) -> int:
    """The modeled 64-bit content of a line at a write version.

    A splitmix64-style mix: deterministic, avalanching, and cheap.  Two
    runs that agree on (line, version) agree on content — the property
    the differential durability proof leans on.
    """
    z = (vfmem_addr * 0x9E3779B97F4A7C15 + version * 0xBF58476D1CE4E5B9) \
        & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def line_checksum(payload: int) -> int:
    """Checksum of a stored payload (a second independent mix).

    Corruption flips payload bits without updating the checksum, so a
    fetch-time verify catches it and read-repairs from a replica.
    """
    z = (payload * 0xD6E8FEB86659FD93 + 0xA5A5A5A5A5A5A5A5) & _MASK64
    return (z ^ (z >> 32)) & _MASK64


@dataclass
class StoredLine:
    """One replicated cache line at rest on a memory node."""

    version: int
    epoch: int
    payload: int
    checksum: int

    @property
    def intact(self) -> bool:
        """Whether the checksum still matches the payload."""
        return self.checksum == line_checksum(self.payload)


class LineStore:
    """Per-memnode store of replicated lines, keyed by VFMem address.

    ``apply`` is idempotent and fenced: a record older than what is
    stored (lower version) is dropped, which is what makes parked
    writebacks safe to redeliver after newer data already landed on the
    promoted primary.
    """

    def __init__(self) -> None:
        self._lines: Dict[int, StoredLine] = {}
        #: Page-base -> line addresses, so fetch-time verification can
        #: scan one page without walking the whole store.
        self._pages: Dict[int, set] = {}
        self.counters = Counter()

    def _index(self, vfmem_addr: int) -> None:
        page = vfmem_addr - (vfmem_addr % units.PAGE_4K)
        self._pages.setdefault(page, set()).add(vfmem_addr)

    def apply(self, record: LogRecord) -> bool:
        """Store a record's line; returns False when fenced as stale.

        Version-0 records describe lines the application never wrote
        (whole-page writes ship them anyway); they carry no durable
        content and are not stored.
        """
        if record.version <= 0:
            return False
        stored = self._lines.get(record.vfmem_addr)
        if stored is not None and record.version < stored.version:
            self.counters.add("stale_version_drops")
            return False
        self._lines[record.vfmem_addr] = StoredLine(
            version=record.version, epoch=record.epoch,
            payload=record.payload,
            checksum=line_checksum(record.payload))
        self._index(record.vfmem_addr)
        self.counters.add("lines_applied")
        return True

    def get(self, vfmem_addr: int) -> Optional[StoredLine]:
        """The stored line at ``vfmem_addr``, if any."""
        return self._lines.get(vfmem_addr)

    def put(self, vfmem_addr: int, line: StoredLine) -> None:
        """Install a copied line (re-replication / read repair)."""
        self._lines[vfmem_addr] = StoredLine(
            version=line.version, epoch=line.epoch,
            payload=line.payload, checksum=line.checksum)
        self._index(vfmem_addr)

    def lines_in_page(self, page_addr: int) -> List[int]:
        """Stored line addresses within one 4 KiB page, sorted."""
        return sorted(self._pages.get(page_addr, ()))

    def corrupt(self, vfmem_addr: int) -> bool:
        """Flip a payload bit without touching the checksum."""
        stored = self._lines.get(vfmem_addr)
        if stored is None:
            return False
        stored.payload ^= 1 << (vfmem_addr % 63)
        self.counters.add("lines_corrupted")
        return True

    def lines_in_range(self, lo: int, hi: int) -> List[int]:
        """Stored line addresses in ``[lo, hi)``, sorted."""
        return sorted(a for a in self._lines if lo <= a < hi)

    def addresses(self) -> List[int]:
        """Every stored line address, sorted."""
        return sorted(self._lines)

    def image(self) -> Dict[int, Tuple[int, int]]:
        """``{vfmem_addr: (version, payload)}`` of everything stored."""
        return {a: (s.version, s.payload) for a, s in self._lines.items()}

    def clear(self) -> None:
        """Drop all content (the node crashed)."""
        self._lines.clear()
        self._pages.clear()

    def __len__(self) -> int:
        return len(self._lines)


class DataPlane:
    """Compute-side shadow of application data, for durability proofs.

    The runtime advances :meth:`record_write` on every *completed*
    write access, so versions count exactly the writes the application
    observed.  ``acknowledged`` tracks, per line, the highest version a
    delivered (acked) writeback carried — the ledger behind the
    ``no acknowledged write lost`` invariant.
    """

    def __init__(self) -> None:
        self.versions: Dict[int, int] = {}
        self.acknowledged: Dict[int, int] = {}
        self.counters = Counter()

    def record_write(self, addr: int) -> None:
        """One application write to the line holding ``addr``."""
        line = addr - (addr % units.CACHE_LINE)
        self.versions[line] = self.versions.get(line, 0) + 1

    def content(self, line_addr: int) -> Tuple[int, int]:
        """(version, payload) of a line; version 0 if never written."""
        version = self.versions.get(line_addr, 0)
        return version, line_payload(line_addr, version)

    def written(self, line_addr: int) -> bool:
        """Whether the application ever wrote this line."""
        return line_addr in self.versions

    def acknowledge(self, records: List[LogRecord]) -> None:
        """A delivered batch: remember the highest acked version/line."""
        acked = self.acknowledged
        for record in records:
            if record.vfmem_addr < 0:
                continue
            if record.version > acked.get(record.vfmem_addr, -1):
                acked[record.vfmem_addr] = record.version
        self.counters.add("records_acknowledged", len(records))


@dataclass
class Lease:
    """A time-bounded grant of primaryship for one replica set."""

    slot: int
    node: str
    expires_at_ns: float
    ttl_ns: float

    def valid(self, now_ns: float) -> bool:
        """Whether the lease still fences other would-be primaries."""
        return now_ns < self.expires_at_ns


@dataclass
class ReplicaSet:
    """One VFMem window's replicas: primary slab, backups, epoch."""

    slot: int
    primary: Slab
    backups: List[Slab]
    epoch: int = 0
    epoch_history: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.epoch_history:
            self.epoch_history = [self.epoch]

    def nodes(self) -> List[str]:
        """Every node hosting a replica (primary first)."""
        return [self.primary.node] + [b.node for b in self.backups]

    def promote(self, backup_index: int) -> None:
        """Make a backup the primary; bumps the epoch (new leadership)."""
        new_primary = self.backups.pop(backup_index)
        self.primary = new_primary
        self.epoch += 1
        self.epoch_history.append(self.epoch)


@dataclass(frozen=True)
class FailoverReport:
    """What one node failure did to the replica sets."""

    node: str
    promoted_slots: List[int]
    backup_slots: List[int]      # slots that only lost a backup copy
    orphaned_slots: List[int]    # slots left with no live replica at all
    lease_wait_ns: float         # fencing wait for the dead primary's leases

    @property
    def affected(self) -> bool:
        """Whether the dead node held any replica."""
        return bool(self.promoted_slots or self.backup_slots
                    or self.orphaned_slots)


class ReplicationManager:
    """Controller-side replication: promotion, fencing, re-replication.

    The manager owns the authoritative :class:`ReplicaSet` per bound
    VFMem window.  It writes *through* the runtime's remote translation
    map on every membership change, so the existing fetch-failover and
    eviction-routing paths see promotions without new plumbing.
    """

    def __init__(self, controller, translation, clock, *,
                 vfmem_base: int, slab_bytes: int,
                 replication_factor: int = 2,
                 lease_ttl_ns: float = 50_000.0,
                 tracer=None) -> None:
        if replication_factor < 1:
            raise ConfigError("replication factor must be >= 1")
        self.controller = controller
        self.translation = translation
        self.clock = clock
        self.vfmem_base = vfmem_base
        self.slab_bytes = slab_bytes
        self.replication_factor = replication_factor
        self.lease_ttl_ns = lease_ttl_ns
        self.tracer = tracer
        self.sets: Dict[int, ReplicaSet] = {}
        self.leases: Dict[int, Lease] = {}
        #: Slots below the replication factor, oldest deficit first.
        self.backlog: List[int] = []
        #: Slabs allocated by re-replication (released at teardown).
        self.extra_slabs: List[Slab] = []
        #: Replica slabs lost to node crashes.  They cannot be returned
        #: to the rack while their node is down, so re-replication
        #: recycles them once the node is back — without this, repeated
        #: failovers leak capacity until redundancy cannot be rebuilt.
        self.retired_slabs: List[Slab] = []
        self.failovers: List[FailoverReport] = []
        self.counters = Counter()
        #: Whether a DataPlane is wired in (content stores are live).
        self.content_active = False

    # -- registration -----------------------------------------------------------

    def slot_of(self, vfmem_addr: int) -> int:
        """The replica-set slot covering a VFMem address."""
        return (vfmem_addr - self.vfmem_base) // self.slab_bytes

    def _slot_base(self, slot: int) -> int:
        return self.vfmem_base + slot * self.slab_bytes

    def register(self, vfmem_addr: int, primary: Slab,
                 backups: List[Slab]) -> ReplicaSet:
        """Track a freshly bound window; grants the primary its lease."""
        slot = self.slot_of(vfmem_addr)
        if slot in self.sets:
            raise ConfigError(f"slot {slot} already replicated")
        rset = ReplicaSet(slot=slot, primary=primary, backups=list(backups))
        self.sets[slot] = rset
        self._grant_lease(rset)
        self.counters.add("sets_registered")
        if len(backups) + 1 < self.replication_factor:
            self._enqueue_backlog(slot)
        return rset

    def _grant_lease(self, rset: ReplicaSet) -> None:
        self.leases[rset.slot] = Lease(
            slot=rset.slot, node=rset.primary.node,
            expires_at_ns=self.clock.now + self.lease_ttl_ns,
            ttl_ns=self.lease_ttl_ns)
        self.counters.add("leases_granted")

    def renew_lease(self, slot: int) -> None:
        """Primary heartbeat: writes renew the slot's lease."""
        lease = self.leases.get(slot)
        if lease is not None:
            lease.expires_at_ns = self.clock.now + lease.ttl_ns
            self.counters.add("leases_renewed")

    # -- write-path routing -----------------------------------------------------

    def epoch_of(self, vfmem_addr: int) -> int:
        """Current epoch of the window holding ``vfmem_addr``."""
        rset = self.sets.get(self.slot_of(vfmem_addr))
        return rset.epoch if rset is not None else 0

    def route_for(self, vfmem_addr: int) -> Tuple[str, int]:
        """(primary node, epoch) for a write; renews the lease."""
        slot = self.slot_of(vfmem_addr)
        rset = self.sets.get(slot)
        if rset is None:
            raise ConfigError(f"address {vfmem_addr:#x} not replicated")
        self.renew_lease(slot)
        return rset.primary.node, rset.epoch

    def redirect_records(
            self, node: str, records: List[LogRecord]
    ) -> Tuple[List[LogRecord], Dict[str, List[LogRecord]]]:
        """Split a batch bound for ``node`` into current vs. moved.

        Records whose window still has ``node`` as primary at their
        stamped epoch pass through.  Records whose primary moved (or
        whose epoch is stale) are **fenced** and re-stamped: new remote
        address on the promoted primary, current epoch — the redirect
        path for in-flight and parked writebacks after a failover.
        Legacy records without a VFMem address pass through untouched.
        """
        keep: List[LogRecord] = []
        moved: Dict[str, List[LogRecord]] = {}
        for record in records:
            if record.vfmem_addr < 0:
                keep.append(record)
                continue
            slot = self.slot_of(record.vfmem_addr)
            rset = self.sets.get(slot)
            if rset is None:
                keep.append(record)
                continue
            if rset.primary.node == node and record.epoch == rset.epoch:
                keep.append(record)
                continue
            if record.epoch < rset.epoch:
                self.counters.add("stale_epoch_writes_fenced")
            offset = (record.vfmem_addr - self.vfmem_base) % self.slab_bytes
            restamped = replace(
                record,
                remote_addr=rset.primary.remote_range.start + offset,
                epoch=rset.epoch)
            moved.setdefault(rset.primary.node, []).append(restamped)
            self.counters.add("writebacks_redirected")
        return keep, moved

    def backup_nodes_for(self, records: List[LogRecord]) -> List[str]:
        """Distinct live backup nodes the batch fans out to."""
        nodes: List[str] = []
        seen = set()
        for record in records:
            if record.vfmem_addr < 0:
                continue
            rset = self.sets.get(self.slot_of(record.vfmem_addr))
            if rset is None:
                continue
            for backup in rset.backups:
                if backup.node in seen:
                    continue
                seen.add(backup.node)
                if self._node_alive(backup.node):
                    nodes.append(backup.node)
        return nodes

    def apply_to_backups(self, records: List[LogRecord]) -> int:
        """Mirror a delivered batch onto each slot's live backups.

        The backup receiver runs the identical scatter loop as the
        primary's (remote CPU time, overlapped), so only the stores are
        updated here.  Returns lines applied across all backups.
        """
        applied = 0
        for record in records:
            if record.vfmem_addr < 0:
                continue
            rset = self.sets.get(self.slot_of(record.vfmem_addr))
            if rset is None:
                continue
            for backup in rset.backups:
                node = self.controller.node(backup.node)
                if node.alive and node.store.apply(record):
                    applied += 1
        if applied:
            self.counters.add("lines_replicated", applied)
        return applied

    # -- failover ---------------------------------------------------------------

    def on_node_failure(self, dead: str) -> FailoverReport:
        """Promote around a dead node; returns what changed.

        Every slot whose primary lived on ``dead`` gets its first live
        backup promoted (epoch + 1) and the translation map rebound;
        the promotion is only safe after the dead primary's lease
        expires, so the report carries the fencing wait for the caller
        to charge to the clock.  Slots that merely lost a backup join
        the re-replication backlog.
        """
        promoted: List[int] = []
        backup_only: List[int] = []
        orphaned: List[int] = []
        lease_wait = 0.0
        now = self.clock.now
        for slot, rset in sorted(self.sets.items()):
            if rset.primary.node == dead:
                lease = self.leases.get(slot)
                if lease is not None and lease.valid(now):
                    lease_wait = max(lease_wait, lease.expires_at_ns - now)
                live = [i for i, b in enumerate(rset.backups)
                        if self._node_alive(b.node)]
                if not live:
                    orphaned.append(slot)
                    self.counters.add("slots_orphaned")
                    continue
                self.retired_slabs.append(rset.primary)
                rset.promote(live[0])
                self._grant_lease(rset)
                self._rebind(rset)
                promoted.append(slot)
                self.counters.add("promotions")
                self._enqueue_backlog(slot)
                if self.tracer is not None and self.tracer.enabled:
                    self.tracer.instant("replication.promote", "replication",
                                        slot=slot, epoch=rset.epoch,
                                        new_primary=rset.primary.node)
            elif any(b.node == dead for b in rset.backups):
                self.retired_slabs.extend(
                    b for b in rset.backups if b.node == dead)
                rset.backups = [b for b in rset.backups if b.node != dead]
                backup_only.append(slot)
                self.counters.add("backups_lost")
                self._enqueue_backlog(slot)
        report = FailoverReport(node=dead, promoted_slots=promoted,
                                backup_slots=backup_only,
                                orphaned_slots=orphaned,
                                lease_wait_ns=lease_wait)
        if report.affected:
            self.failovers.append(report)
            self.counters.add("failovers")
            self.counters.add("failover_wait_ns", int(lease_wait))
        return report

    def _rebind(self, rset: ReplicaSet) -> None:
        """Write the set's membership through to the translation map."""
        self.translation.rebind(self._slot_base(rset.slot), rset.primary,
                                replicas=rset.backups or None)

    def _enqueue_backlog(self, slot: int) -> None:
        if slot not in self.backlog:
            self.backlog.append(slot)

    def _node_alive(self, name: str) -> bool:
        node = self.controller._nodes.get(name) \
            if hasattr(self.controller, "_nodes") else None
        if node is None:
            try:
                node = self.controller.node(name)
            except Exception:
                return False
        return node.alive

    # -- re-replication ---------------------------------------------------------

    @property
    def backlog_slots(self) -> int:
        """Slots currently below the replication factor."""
        return len(self.backlog)

    @property
    def lag_records(self) -> int:
        """Lines on backlogged primaries not yet at full redundancy."""
        lag = 0
        for slot in self.backlog:
            rset = self.sets.get(slot)
            if rset is None:
                continue
            node = self.controller.node(rset.primary.node)
            if node.alive:
                lo = self._slot_base(slot)
                lag += len(node.store.lines_in_range(lo,
                                                     lo + self.slab_bytes))
        return lag

    def re_replicate(self, max_slots: int = 1) -> float:
        """Rebuild redundancy for up to ``max_slots`` backlogged slots.

        Allocates a replacement slab on a live node not already hosting
        the slot, bulk-copies the primary's stored lines over the
        fabric (priced, not clocked — this is background traffic), and
        installs the copy as a backup.  Slots that cannot be placed yet
        (no eligible node, no capacity) stay backlogged.  Returns the
        background ns consumed.
        """
        total_ns = 0.0
        done = 0
        remaining: List[int] = []
        for slot in self.backlog:
            if done >= max_slots:
                remaining.append(slot)
                continue
            rset = self.sets.get(slot)
            if rset is None or len(rset.backups) + 1 >= self.replication_factor:
                continue
            ns = self._re_replicate_slot(rset)
            if ns is None:
                remaining.append(slot)       # try again next round
                self.counters.add("rereplication_deferred")
                continue
            total_ns += ns
            done += 1
            if len(rset.backups) + 1 < self.replication_factor:
                remaining.append(slot)       # still short a copy
        self.backlog = remaining
        return total_ns

    def _re_replicate_slot(self, rset: ReplicaSet) -> Optional[float]:
        exclude = rset.nodes()
        primary_node = self.controller.node(rset.primary.node)
        if not primary_node.alive:
            return None
        slab = self._take_retired(exclude)
        if slab is None:
            try:
                slab = self.controller.allocate_slabs(1, exclude=exclude)[0]
            except AllocationError:
                return None
            self.extra_slabs.append(slab)
        target = self.controller.node(slab.node)
        lo = self._slot_base(rset.slot)
        lines = primary_node.store.lines_in_range(lo, lo + self.slab_bytes)
        for addr in lines:
            target.store.put(addr, primary_node.store.get(addr))
        rset.backups.append(slab)
        self._rebind(rset)
        self.counters.add("slots_rereplicated")
        self.counters.add("lines_rereplicated", len(lines))
        nbytes = max(len(lines) * units.CACHE_LINE, units.CACHE_LINE)
        ns = primary_node.fabric.transfer_cost_ns(
            rset.primary.node, slab.node, nbytes, linked=True,
            signaled=True)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit("replication.rebuild", ns, "replication",
                             slot=rset.slot, lines=len(lines),
                             target=slab.node)
        return ns

    def _take_retired(self, exclude: List[str]) -> Optional[Slab]:
        """Recycle a crash-retired slab whose node has come back.

        The recycled slab keeps its original owner (resource manager or
        ``extra_slabs``), so teardown still releases it exactly once.
        """
        for i, slab in enumerate(self.retired_slabs):
            if slab.node not in exclude and self._node_alive(slab.node):
                self.counters.add("slabs_recycled")
                return self.retired_slabs.pop(i)
        return None

    def re_replicate_all(self) -> float:
        """Drain the whole backlog (recovery path); returns ns spent."""
        total = 0.0
        while self.backlog:
            before = len(self.backlog)
            total += self.re_replicate(max_slots=before)
            if len(self.backlog) >= before:
                break                        # no placement possible yet
        return total

    # -- integrity: checksums, read repair, scrub --------------------------------

    def verify_page(self, vfmem_page_addr: int,
                    node_name: str) -> Tuple[int, int, float]:
        """Fetch-time verify of one page's stored lines on one node.

        Returns (mismatches, repairs, ns).  A corrupt line is
        read-repaired from the first replica holding an intact copy at
        the same-or-newer version; the repair pays one line RDMA read.
        """
        node = self.controller.node(node_name)
        mismatches = repairs = 0
        ns = 0.0
        for addr in node.store.lines_in_page(vfmem_page_addr):
            stored = node.store.get(addr)
            ns += node.latency.memcpy_per_byte_ns * units.CACHE_LINE
            if stored.intact:
                continue
            mismatches += 1
            self.counters.add("checksum_mismatches")
            repaired, repair_ns = self._read_repair(addr, node_name)
            ns += repair_ns
            if repaired:
                repairs += 1
        return mismatches, repairs, ns

    def _read_repair(self, vfmem_addr: int, bad_node: str) -> Tuple[bool, float]:
        rset = self.sets.get(self.slot_of(vfmem_addr))
        if rset is None:
            self.counters.add("unrepaired_corruption")
            return False, 0.0
        bad = self.controller.node(bad_node)
        for name in rset.nodes():
            if name == bad_node or not self._node_alive(name):
                continue
            donor = self.controller.node(name)
            good = donor.store.get(vfmem_addr)
            if good is None or not good.intact:
                continue
            bad.store.put(vfmem_addr, good)
            self.counters.add("read_repairs")
            ns = bad.fabric.transfer_cost_ns(name, bad_node,
                                             units.CACHE_LINE)
            return True, ns
        self.counters.add("unrepaired_corruption")
        return False, 0.0

    def scrub(self) -> Tuple[int, int, float]:
        """Background scrubber: verify every replica, repair from peers.

        Returns (lines checked, lines repaired, ns).  Run on recovery so
        a corruption injected by chaos cannot outlive the campaign
        undetected.
        """
        checked = repaired = 0
        ns = 0.0
        for slot in sorted(self.sets):
            rset = self.sets[slot]
            lo = self._slot_base(slot)
            for name in rset.nodes():
                if not self._node_alive(name):
                    continue
                node = self.controller.node(name)
                for addr in node.store.lines_in_range(lo,
                                                      lo + self.slab_bytes):
                    checked += 1
                    ns += node.latency.memcpy_per_byte_ns * units.CACHE_LINE
                    stored = node.store.get(addr)
                    if stored.intact:
                        continue
                    self.counters.add("checksum_mismatches")
                    ok, repair_ns = self._read_repair(addr, name)
                    ns += repair_ns
                    if ok:
                        repaired += 1
        self.counters.add("scrubs")
        return checked, repaired, ns

    # -- inspection --------------------------------------------------------------

    def epochs_monotonic(self) -> bool:
        """Whether every slot's epoch history only ever increased."""
        for rset in self.sets.values():
            history = rset.epoch_history
            if any(b < a for a, b in zip(history, history[1:])):
                return False
        return True

    @property
    def max_epoch(self) -> int:
        """Highest epoch across all replica sets."""
        return max((r.epoch for r in self.sets.values()), default=0)

    def fully_replicated(self) -> bool:
        """Whether every set is at the configured factor on live nodes."""
        for rset in self.sets.values():
            live = [n for n in rset.nodes() if self._node_alive(n)]
            if len(live) < self.replication_factor:
                return False
        return True

    def image(self) -> Dict[int, Tuple[int, int]]:
        """The cluster's remote-memory image, read from the primaries.

        ``{vfmem line address: (version, payload)}`` over every replica
        set — the quantity the differential durability proof compares
        against a no-fault oracle run.
        """
        out: Dict[int, Tuple[int, int]] = {}
        for slot in sorted(self.sets):
            rset = self.sets[slot]
            node = self.controller.node(rset.primary.node)
            lo = self._slot_base(slot)
            for addr in node.store.lines_in_range(lo, lo + self.slab_bytes):
                stored = node.store.get(addr)
                out[addr] = (stored.version, stored.payload)
        return out

    def release_all_slabs(self) -> None:
        """Return re-replication slabs to the rack (teardown)."""
        self.controller.release_slabs(self.extra_slabs)
        self.extra_slabs.clear()
