"""The rack controller: centralized coarse-grained memory allocation.

Memory nodes register their pools with the controller; compute nodes'
resource managers request slabs.  Allocation is deliberately simple —
the paper assumes a centralized controller handing out large slabs off
the critical path (section 4.1) — but placement is pluggable so the
replication experiments can spread replicas across nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..common.errors import AllocationError, ConfigError, NodeFailure
from ..common.stats import Counter
from .memnode import MemoryNode
from .slab import Slab


class RackController:
    """Allocates disaggregated memory from registered memory nodes.

    ``placement`` selects the slab-placement policy (see
    :mod:`repro.cluster.placement`); the built-in default is
    round-robin, matching the paper's simple centralized allocator.
    """

    def __init__(self, placement=None) -> None:
        self._nodes: Dict[str, MemoryNode] = {}
        self._rr_order: List[str] = []
        self._rr_next = 0
        self._placement = placement
        self.counters = Counter()

    # -- registration -------------------------------------------------------------

    def register_node(self, node: MemoryNode) -> None:
        """A memory node exposes its pool to the rack."""
        if node.name in self._nodes:
            raise ConfigError(f"node {node.name!r} already registered")
        self._nodes[node.name] = node
        self._rr_order.append(node.name)
        self.counters.add("nodes_registered")

    def remove_node(self, name: str) -> None:
        """Withdraw a node's pool (decommissioning)."""
        if name not in self._nodes:
            raise ConfigError(f"node {name!r} not registered")
        del self._nodes[name]
        self._rr_order.remove(name)
        self._rr_next = 0
        self.counters.add("nodes_removed")

    @property
    def nodes(self) -> List[str]:
        """Names of registered nodes."""
        return list(self._rr_order)

    def node(self, name: str) -> MemoryNode:
        """Look up a registered node."""
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigError(f"node {name!r} not registered") from None

    # -- allocation ------------------------------------------------------------------

    def allocate_slabs(self, count: int,
                       exclude: Optional[List[str]] = None) -> List[Slab]:
        """Allocate ``count`` slabs round-robin across live nodes.

        ``exclude`` skips nodes (used to place replicas on distinct
        nodes).  Raises :class:`AllocationError` if the rack cannot
        satisfy the request.
        """
        if count <= 0:
            raise ConfigError(f"count must be positive, got {count}")
        excluded = set(exclude or ())
        candidates = [n for n in self._rr_order if n not in excluded]
        if not candidates:
            raise AllocationError("no eligible memory nodes")
        slabs: List[Slab] = []
        attempts = 0
        max_attempts = count * max(len(candidates), 1) * 2
        while len(slabs) < count:
            if attempts >= max_attempts:
                for slab in slabs:   # roll back partial allocation
                    self._nodes[slab.node].reclaim_slab(slab)
                raise AllocationError(
                    f"rack cannot satisfy {count} slabs "
                    f"(got {len(slabs)} before exhaustion)")
            attempts += 1
            node = self._pick_node(candidates)
            if node is None or not node.alive or node.pool.free_slabs == 0:
                continue
            try:
                slabs.append(node.grant_slab())
            except (AllocationError, NodeFailure):
                continue
        self.counters.add("slabs_allocated", count)
        return slabs

    def _pick_node(self, candidates: List[str]) -> Optional[MemoryNode]:
        if self._placement is not None:
            live = [self._nodes[name] for name in candidates
                    if self._nodes[name].alive]
            return self._placement.choose(live)
        name = candidates[self._rr_next % len(candidates)]
        self._rr_next += 1
        return self._nodes[name]

    def release_slabs(self, slabs: List[Slab]) -> None:
        """Return slabs to their owning nodes (dead nodes are skipped)."""
        for slab in slabs:
            node = self._nodes.get(slab.node)
            if node is not None and node.alive:
                node.reclaim_slab(slab)
        self.counters.add("slabs_released", len(slabs))

    # -- capacity inspection -------------------------------------------------------------

    def free_slab_count(self) -> int:
        """Free slabs across all live nodes."""
        return sum(n.pool.free_slabs for n in self._nodes.values() if n.alive)

    def total_capacity(self) -> int:
        """Registered bytes across all live nodes."""
        return sum(n.capacity for n in self._nodes.values() if n.alive)
