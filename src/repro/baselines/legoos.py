"""LegoOS (Shan et al., OSDI'18) as a cost model.

LegoOS is a splitkernel OS for hardware resource disaggregation; its
process component keeps an "ExCache" of remote pages and misses to the
memory component over RDMA.  The paper measured a ~10 us remote fetch
— much leaner than Infiniswap's block-device path (no bio layer), but
still fault-driven and page-granular.

The paper treats LegoOS as orthogonal to Kona's ideas (section 6.2) —
cache-line tracking and fault-free fetch could be added to it — and
uses it as the stronger page-based baseline.  We model it as a
kernel-fault engine whose fetch path is tuned to the measured 10 us.
"""

from __future__ import annotations

from ..common import units
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..vm.faults import FaultPath, PageFaultModel
from ..vm.swap import PagedConfig, PagedRemoteMemory


def _excache_adjustment(latency: LatencyModel, num_cores: int) -> float:
    """Fetch-path adjustment that closes the gap to the measured 10 us.

    LegoOS is a clean-slate splitkernel: its ExCache miss path skips
    most of the Linux swap machinery, so the adjustment relative to the
    generic kernel-swap probe is *negative*.
    """
    probe = PageFaultModel(FaultPath.KERNEL_SWAP, latency, num_cores)
    generic_fetch = (probe.costs.major_fault_ns
                     + latency.rdma_transfer_ns(units.PAGE_4K, linked=True,
                                                signaled=True))
    return latency.legoos_remote_fetch_ns - generic_fetch


def legoos(local_capacity: int, *,
           latency: LatencyModel = DEFAULT_LATENCY,
           app_ns_per_access: float = 70.0,
           num_cores: int = 8) -> PagedRemoteMemory:
    """Build the LegoOS engine with a given ExCache size."""
    config = PagedConfig(
        name="legoos",
        fault_path=FaultPath.KERNEL_SWAP,
        local_capacity=local_capacity,
        track_dirty=True,
        async_evict_transfer=True,   # LegoOS flushes dirty ExCache lines
                                     # asynchronously where possible
        num_cores=num_cores,
        extra_fetch_ns=_excache_adjustment(latency, num_cores),
    )
    return PagedRemoteMemory(config, latency, app_ns_per_access)
