"""Kona-VM: the virtual-memory twin of Kona (paper section 6.1).

Kona-VM uses the *same* caching and eviction algorithms as Kona but
implements them with virtual memory: userfaultfd-style page faults for
fetch, write-protection for dirty tracking, page-granularity eviction.
It exists so the Kona/Kona-VM comparison isolates the mechanism (page
faults + page tracking vs coherence + line tracking) from policy.

Variants from Figure 7:

* ``kona_vm``          — the full system, eviction overlapped;
* ``kona_vm_no_evict`` — local cache big enough that nothing evicts
  (two faults per page: fetch + write-protect);
* ``kona_vm_no_wp``    — write-protection disabled (one fault per
  page); *incomplete* — it cannot track dirty data — but a useful
  lower bound on fault cost.
"""

from __future__ import annotations

from typing import Optional

from ..common import units
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..vm.faults import FaultPath
from ..vm.swap import PagedConfig, PagedRemoteMemory


def kona_vm(local_capacity: int, *, track_dirty: bool = True,
            latency: LatencyModel = DEFAULT_LATENCY,
            app_ns_per_access: float = 70.0,
            num_cores: int = 8) -> PagedRemoteMemory:
    """Build the Kona-VM engine with a given local DRAM cache size."""
    config = PagedConfig(
        name="kona-vm" if track_dirty else "kona-vm-nowp",
        fault_path=FaultPath.USERFAULTFD,
        local_capacity=local_capacity,
        track_dirty=track_dirty,
        async_evict_transfer=True,
        num_cores=num_cores,
        # Per-page reclaim bookkeeping beyond the PTE churn: page-cache
        # and LRU management, lock and rmap checks (section 2.1 lists
        # these as the "sum of small operations" behind eviction cost).
        extra_evict_ns=800.0,
    )
    return PagedRemoteMemory(config, latency, app_ns_per_access)


def kona_vm_no_evict(working_set: int, *,
                     latency: LatencyModel = DEFAULT_LATENCY,
                     app_ns_per_access: float = 70.0) -> PagedRemoteMemory:
    """Kona-VM with a local cache covering the full working set."""
    engine = kona_vm(working_set + units.PAGE_4K, latency=latency,
                     app_ns_per_access=app_ns_per_access)
    engine.config.name = "kona-vm-noevict"
    return engine


def kona_vm_no_wp(working_set: int, *,
                  latency: LatencyModel = DEFAULT_LATENCY,
                  app_ns_per_access: float = 70.0) -> PagedRemoteMemory:
    """Kona-VM without write-protection (incomplete: no dirty tracking)."""
    engine = kona_vm(working_set + units.PAGE_4K, track_dirty=False,
                     latency=latency, app_ns_per_access=app_ns_per_access)
    engine.config.name = "kona-vm-nowp"
    return engine
