"""Eviction transfer strategies for the Figure 11 microbenchmark.

The benchmark (paper section 6.4): a 1 GB region where every 4 KB page
has N dirty cache lines (N = 1..64), either *contiguous* from the start
of the page or *alternate* (every other line — the paper's stand-in for
random).  Each strategy writes the dirty data to a remote host and we
compare goodput — useful dirty bytes per unit time.

Strategies:

* ``kona_cl_log``       — Kona: scan the dirty bitmap, copy dirty lines
  into an RDMA-registered log (aggregating across pages), ship the log
  with few large writes, wait (briefly) for receiver acks.  Switches to
  a whole-page write for nearly-fully-dirty pages.
* ``kona_vm_4k``        — Kona-VM: copy each dirty page to an RDMA
  buffer and issue one 4 KB write per page (batched + linked).
* ``ideal_4k_nocopy``   — idealized: 4 KB writes straight from the
  application's address space (unusable in practice — the address space
  is not registered — but an upper bound for the page path).
* ``ideal_cl_nocopy``   — idealized: per-segment RDMA writes with no
  copy; great for a few contiguous lines, terrible when discontiguous
  (many small WRs).
* ``scatter_gather``    — one WR per page with one SGE per dirty
  segment; the paper found per-SGE gather overhead makes this
  consistently worse than the CL log.

Copy-cost model: copying out of the application's pages is *cold* —
the dirty data was evicted from CPU caches, so the first line of every
segment pays a DRAM-latency stall; subsequent contiguous lines stream
behind the hardware prefetcher.  The constants below were fitted so the
relative goodputs land inside the paper's reported bands (4-5X for 1-4
contiguous lines, 2-3X for 2-4 alternate lines, parity at a fully
dirty page, CL log losing only past ~16 discontiguous lines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..common import units
from ..common.clock import Account
from ..common.errors import ConfigError
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..net.ring import RECORD_BYTES

# -- calibrated per-page constants (ns); segment copy costs live on
# -- LatencyModel.copy_segments_ns so the runtime eviction handler and
# -- these strategy models price data movement identically. -------------------

#: Cold 4 KB page copy (page-path staging): DRAM-bound, with pollution.
COLD_PAGE_COPY_NS = 650.0
#: Per-page bookkeeping on every strategy (dirty-page list walk, etc.).
PAGE_FIXED_NS = 30.0
#: Kona-only per-page cost: remote-translation lookup for the log header.
TRANSLATION_NS = 62.0
#: Per-SGE gather overhead at the NIC (scatter-gather strategy).
SGE_GATHER_NS = 140.0
#: Streaming cost per byte (matches LatencyModel.memcpy_per_byte_ns).
STREAM_BYTE_NS = 0.031
#: Remote receiver thread cost per log record (read record, scatter the
#: 64 B line to its home, bump the cursor).  At high dirty density the
#: receiver, not the producer, becomes the pipeline bottleneck and the
#: ring's flow control stalls the producer — this is what brings the CL
#: log back to parity with page writes on fully dirty pages.
RECEIVER_NS_PER_RECORD = 45.0


@dataclass
class StrategyResult:
    """Outcome of one strategy over the whole region."""

    name: str
    pages: int
    dirty_lines_per_page: int
    total_ns: float
    dirty_bytes: int
    wire_bytes: int
    account: Account

    def goodput_bytes_per_s(self) -> float:
        """Useful (dirty) bytes per second."""
        if self.total_ns <= 0:
            raise ConfigError("strategy consumed no time")
        return self.dirty_bytes / (self.total_ns / units.S)

    def goodput_relative_to(self, other: "StrategyResult") -> float:
        """This strategy's goodput over ``other``'s (Figure 11 y-axis)."""
        return self.goodput_bytes_per_s() / other.goodput_bytes_per_s()


def _segments(n_lines: int, pattern: str) -> List[int]:
    """Segment lengths (in lines) for a page with ``n_lines`` dirty."""
    if not 1 <= n_lines <= units.LINES_PER_PAGE:
        raise ConfigError(f"dirty lines per page must be 1..64, got {n_lines}")
    if pattern == "contiguous":
        return [n_lines]
    if pattern == "alternate":
        if n_lines > units.LINES_PER_PAGE // 2:
            raise ConfigError(
                "alternate pattern supports at most 32 dirty lines per page")
        return [1] * n_lines
    raise ConfigError(f"unknown pattern {pattern!r}")


def kona_cl_log(pages: int, n_lines: int, pattern: str = "contiguous",
                latency: LatencyModel = DEFAULT_LATENCY,
                batch_bytes: int = 64 * units.KB,
                full_page_threshold: int = 56) -> StrategyResult:
    """Kona's aggregated cache-line log (with the whole-page fast path)."""
    if not 1 <= n_lines <= units.LINES_PER_PAGE:
        raise ConfigError(f"dirty lines per page must be 1..64, got {n_lines}")
    account = Account()
    dirty_bytes = pages * n_lines * units.CACHE_LINE
    if n_lines >= full_page_threshold:
        # Whole-page path: identical transfer to Kona-VM, minus the WP
        # machinery, plus the bitmap consultation.
        scan = latency.bitmap_scan_per_line_ns * units.LINES_PER_PAGE
        account.charge("bitmap", pages * scan)
        account.charge("copy", pages * (COLD_PAGE_COPY_NS
                                        + STREAM_BYTE_NS * units.PAGE_4K))
        account.charge("rdma_write",
                       pages * latency.rdma_pipelined_ns(units.PAGE_4K))
        wire_bytes = pages * units.PAGE_4K
        return StrategyResult("kona-cl-log", pages, n_lines, account.total,
                              dirty_bytes, wire_bytes, account)

    segments = _segments(n_lines, pattern)
    scan = latency.bitmap_scan_per_line_ns * units.LINES_PER_PAGE
    account.charge("bitmap", pages * (scan + TRANSLATION_NS))
    account.charge("copy", pages * latency.copy_segments_ns(segments))
    # Log framing: one record per dirty line, shipped in large batches.
    # The producer posts a batch and immediately starts copying the
    # next one, so only part of the wire time is exposed.
    log_bytes = pages * n_lines * RECORD_BYTES
    batches = max(1, -(-log_bytes // batch_bytes))
    posting = batches * (latency.rdma_linked_wr_ns + latency.rdma_nic_wr_ns)
    wire = latency.log_wire_exposure * latency.rdma_per_byte_ns * log_bytes
    account.charge("rdma_write", posting + wire)
    # Receiver acks once per batch (round trip + remote scatter wait).
    account.charge("ack_wait", batches * latency.rdma_base_ns * 1.2)
    # Ring flow control: if the remote scatter thread cannot keep up
    # with the producer, the producer stalls waiting for credits.
    receiver_ns = pages * n_lines * RECEIVER_NS_PER_RECORD
    if receiver_ns > account.total:
        account.charge("ack_wait", receiver_ns - account.total)
    return StrategyResult("kona-cl-log", pages, n_lines, account.total,
                          dirty_bytes, log_bytes, account)


def kona_vm_4k(pages: int, n_lines: int, pattern: str = "contiguous",
               latency: LatencyModel = DEFAULT_LATENCY) -> StrategyResult:
    """Kona-VM: copy + one 4 KB RDMA write per dirty page."""
    _segments(n_lines, pattern)   # validate inputs
    account = Account()
    account.charge("fixed", pages * PAGE_FIXED_NS)
    account.charge("copy", pages * (COLD_PAGE_COPY_NS
                                    + STREAM_BYTE_NS * units.PAGE_4K))
    account.charge("rdma_write",
                   pages * latency.rdma_pipelined_ns(units.PAGE_4K))
    dirty_bytes = pages * n_lines * units.CACHE_LINE
    wire_bytes = pages * units.PAGE_4K
    return StrategyResult("kona-vm-4k", pages, n_lines, account.total,
                          dirty_bytes, wire_bytes, account)


def ideal_4k_nocopy(pages: int, n_lines: int, pattern: str = "contiguous",
                    latency: LatencyModel = DEFAULT_LATENCY) -> StrategyResult:
    """Idealized page path: registered source, no staging copy."""
    _segments(n_lines, pattern)
    account = Account()
    account.charge("fixed", pages * PAGE_FIXED_NS)
    account.charge("rdma_write",
                   pages * latency.rdma_pipelined_ns(units.PAGE_4K))
    dirty_bytes = pages * n_lines * units.CACHE_LINE
    return StrategyResult("ideal-4k-nocopy", pages, n_lines, account.total,
                          dirty_bytes, pages * units.PAGE_4K, account)


def ideal_cl_nocopy(pages: int, n_lines: int, pattern: str = "contiguous",
                    latency: LatencyModel = DEFAULT_LATENCY) -> StrategyResult:
    """Idealized line path: one RDMA write per dirty segment, no copy."""
    segments = _segments(n_lines, pattern)
    account = Account()
    account.charge("fixed", pages * PAGE_FIXED_NS)
    per_page = sum(
        latency.rdma_pipelined_ns(seg * units.CACHE_LINE) for seg in segments)
    account.charge("rdma_write", pages * per_page)
    dirty_bytes = pages * n_lines * units.CACHE_LINE
    return StrategyResult("ideal-cl-nocopy", pages, n_lines, account.total,
                          dirty_bytes, dirty_bytes, account)


def scatter_gather(pages: int, n_lines: int, pattern: str = "contiguous",
                   latency: LatencyModel = DEFAULT_LATENCY) -> StrategyResult:
    """Scatter-gather: one WR per page, one SGE per dirty segment.

    The paper tried this and found it "consistently worse than Kona,
    due to inefficiencies in gathering many different entries".
    """
    segments = _segments(n_lines, pattern)
    account = Account()
    account.charge("fixed", pages * PAGE_FIXED_NS)
    per_page = (latency.rdma_pipelined_ns(n_lines * units.CACHE_LINE)
                + len(segments) * SGE_GATHER_NS
                + latency.copy_cold_first_ns)  # NIC gather reads cold DRAM
    account.charge("rdma_write", pages * per_page)
    dirty_bytes = pages * n_lines * units.CACHE_LINE
    return StrategyResult("scatter-gather", pages, n_lines, account.total,
                          dirty_bytes, dirty_bytes, account)


#: All strategies by name, for sweep harnesses.
STRATEGIES: Dict[str, Callable[..., StrategyResult]] = {
    "kona-cl-log": kona_cl_log,
    "kona-vm-4k": kona_vm_4k,
    "ideal-4k-nocopy": ideal_4k_nocopy,
    "ideal-cl-nocopy": ideal_cl_nocopy,
    "scatter-gather": scatter_gather,
}
