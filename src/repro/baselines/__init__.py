"""Baseline remote-memory systems and eviction strategies."""

from .eviction_strategies import (
    STRATEGIES,
    StrategyResult,
    ideal_4k_nocopy,
    ideal_cl_nocopy,
    kona_cl_log,
    kona_vm_4k,
    scatter_gather,
)
from .infiniswap import infiniswap
from .kona_vm import kona_vm, kona_vm_no_evict, kona_vm_no_wp
from .legoos import legoos

__all__ = [
    "STRATEGIES",
    "StrategyResult",
    "ideal_4k_nocopy",
    "ideal_cl_nocopy",
    "infiniswap",
    "kona_cl_log",
    "kona_vm",
    "kona_vm_4k",
    "kona_vm_no_evict",
    "kona_vm_no_wp",
    "legoos",
    "scatter_gather",
]
