"""Infiniswap (Gu et al., NSDI'17) as a cost model.

Infiniswap exposes remote memory as a swap block device.  Every remote
fetch traverses the kernel swap path *and* the bio/block layer, which
is where most of its measured ~40 us remote-access latency comes from
(paper section 6.1).  Eviction through the same path was measured at
over 32 us per page even though the RDMA write itself takes ~3 us
(paper section 2.1).

The block-layer constants below are derived by subtracting the generic
kernel-swap fault cost and the wire time from the paper's end-to-end
measurements, so the engine's total fetch latency lands at ~40 us.
"""

from __future__ import annotations

from ..common import units
from ..common.latency import DEFAULT_LATENCY, LatencyModel
from ..vm.faults import FaultPath, PageFaultModel
from ..vm.swap import PagedConfig, PagedRemoteMemory


def _block_layer_overheads(latency: LatencyModel,
                           num_cores: int) -> tuple[float, float]:
    """(fetch, evict) block-layer costs that close the gap to the paper."""
    probe = PageFaultModel(FaultPath.KERNEL_SWAP, latency, num_cores)
    generic_fetch = (probe.costs.major_fault_ns
                     + latency.rdma_transfer_ns(units.PAGE_4K, linked=True,
                                                signaled=True))
    fetch_extra = max(latency.infiniswap_remote_fetch_ns - generic_fetch, 0.0)
    generic_evict = (probe.costs.evict_pte_ns + probe.costs.shootdown_ns
                     + latency.memcpy_ns(units.PAGE_4K))
    evict_extra = max(latency.infiniswap_evict_ns
                      - latency.rdma_transfer_ns(units.PAGE_4K, linked=True,
                                                 signaled=False)
                      - generic_evict, 0.0)
    return fetch_extra, evict_extra


def infiniswap(local_capacity: int, *,
               latency: LatencyModel = DEFAULT_LATENCY,
               app_ns_per_access: float = 70.0,
               num_cores: int = 8) -> PagedRemoteMemory:
    """Build the Infiniswap engine with a given local memory size."""
    fetch_extra, evict_extra = _block_layer_overheads(latency, num_cores)
    config = PagedConfig(
        name="infiniswap",
        fault_path=FaultPath.KERNEL_SWAP,
        local_capacity=local_capacity,
        track_dirty=True,
        # The kernel swap path writes pages out synchronously with
        # respect to reclaim; eviction is not overlapped the way
        # Kona-VM overlaps it.
        async_evict_transfer=False,
        num_cores=num_cores,
        extra_fetch_ns=fetch_extra,
        extra_evict_ns=evict_extra,
    )
    return PagedRemoteMemory(config, latency, app_ns_per_access)
