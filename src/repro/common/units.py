"""Units and physical constants used throughout the simulator.

All sizes are in bytes and all times are in nanoseconds unless a name
says otherwise.  Keeping a single module of named constants avoids the
classic simulator bug of mixing microseconds and nanoseconds in cost
models.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Sizes
# --------------------------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Size of a CPU cache line.  Kona tracks dirty data at this granularity.
CACHE_LINE = 64

#: Base (small) virtual-memory page.
PAGE_4K = 4 * KB

#: x86-64 huge page.
PAGE_2M = 2 * MB

#: Cache lines per 4 KB page (64 in the paper's analysis).
LINES_PER_PAGE = PAGE_4K // CACHE_LINE

#: Word size used when counting "actual bytes written" by an application.
#: Stores on a 64-bit machine are word sized, so unique written bytes are
#: counted at 8-byte granularity (see repro.tools.pintool).
WORD = 8

# --------------------------------------------------------------------------
# Times (nanoseconds)
# --------------------------------------------------------------------------

NS = 1
US = 1_000
MS = 1_000_000
S = 1_000_000_000


def ns_to_us(ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return ns / US


def ns_to_ms(ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return ns / MS


def ns_to_s(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / S


def bytes_to_human(n: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``4.0KiB``."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or suffix == "TiB":
            return f"{value:.1f}{suffix}" if suffix != "B" else f"{int(value)}B"
        value /= 1024.0
    raise AssertionError("unreachable")


def time_to_human(ns: float) -> str:
    """Render a duration in the most natural unit, e.g. ``3.0us``."""
    if ns < US:
        return f"{ns:.1f}ns"
    if ns < MS:
        return f"{ns / US:.1f}us"
    if ns < S:
        return f"{ns / MS:.1f}ms"
    return f"{ns / S:.2f}s"
