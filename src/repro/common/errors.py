"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle anything the simulator reports.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class AddressError(ReproError):
    """An address is outside the region it was used against."""


class AllocationError(ReproError):
    """A memory allocation could not be satisfied."""


class OutOfMemoryError(AllocationError):
    """A node or region ran out of physical capacity."""


class ProtectionError(ReproError):
    """An access violated page protection bits."""


class TranslationError(ReproError):
    """A virtual address has no valid translation."""


class NetworkError(ReproError):
    """An RDMA operation failed or timed out."""


class RetryExhausted(NetworkError):
    """An operation failed after exhausting its retry budget."""


class NodeFailure(ReproError):
    """A memory node crashed or became unreachable."""


class CoherenceError(ReproError):
    """The coherence protocol reached an invalid state transition."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven incorrectly."""
