"""Small statistics helpers: counters, CDFs, and summary records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


class Counter:
    """A named bag of integer counters with a readable repr."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount``."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Copy of the raw counts."""
        return dict(self._counts)

    def items(self) -> List[Tuple[str, int]]:
        """(name, count) pairs in sorted-name order."""
        return sorted(self._counts.items())

    def merge(self, other: "Counter") -> "Counter":
        """Add every count of ``other`` into this counter; returns self.

        The workhorse for aggregating per-worker counters after a
        parallel fan-out (e.g. :func:`repro.experiments.sweep.run_sweep`).
        """
        for name, amount in other._counts.items():
            self._counts[name] = self._counts.get(name, 0) + amount
        return self

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counter({inner})"


@dataclass(frozen=True)
class CDF:
    """An empirical cumulative distribution over integer support.

    ``values`` are the sorted distinct sample values, ``cumulative`` the
    fraction of samples less than or equal to each value.  This mirrors
    the presentation of Figures 2 and 3 in the paper.
    """

    values: np.ndarray
    cumulative: np.ndarray

    @staticmethod
    def from_samples(samples: Sequence[int]) -> "CDF":
        """Build a CDF from raw (unsorted, repeated) samples."""
        arr = np.asarray(samples)
        if arr.size == 0:
            return CDF(np.array([], dtype=np.int64), np.array([], dtype=float))
        values, counts = np.unique(arr, return_counts=True)
        cumulative = np.cumsum(counts) / arr.size
        return CDF(values, cumulative)

    def at(self, value: float) -> float:
        """P(X <= value)."""
        if self.values.size == 0:
            return 0.0
        idx = np.searchsorted(self.values, value, side="right") - 1
        if idx < 0:
            return 0.0
        return float(self.cumulative[idx])

    def quantile(self, q: float) -> int:
        """Smallest value v with P(X <= v) >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.values.size == 0:
            raise ValueError("empty CDF has no quantiles")
        idx = int(np.searchsorted(self.cumulative, q, side="left"))
        idx = min(idx, self.values.size - 1)
        return int(self.values[idx])

    @property
    def mean(self) -> float:
        """Mean of the underlying samples."""
        if self.values.size == 0:
            return float("nan")
        probs = np.diff(np.concatenate(([0.0], self.cumulative)))
        return float(np.dot(self.values, probs))

    def series(self) -> List[Tuple[int, float]]:
        """(value, cumulative-fraction) pairs for plotting/printing."""
        return [(int(v), float(c)) for v, c in zip(self.values, self.cumulative)]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the conventional summary for speedup ratios."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric mean of no values")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio that raises instead of dividing by zero."""
    if denominator == 0:
        raise ZeroDivisionError("ratio denominator is zero")
    return numerator / denominator
