"""Shared infrastructure: units, clock/DES, latency model, statistics."""

from .clock import Account, EventHandle, EventQueue, SimClock
from .errors import (
    AddressError,
    AllocationError,
    CoherenceError,
    ConfigError,
    NetworkError,
    NodeFailure,
    OutOfMemoryError,
    ProtectionError,
    ReproError,
    SimulationError,
    TranslationError,
)
from .latency import DEFAULT_LATENCY, LatencyModel, validate_against_paper
from .stats import CDF, Counter, geometric_mean, ratio

__all__ = [
    "Account",
    "AddressError",
    "AllocationError",
    "CDF",
    "CoherenceError",
    "ConfigError",
    "Counter",
    "DEFAULT_LATENCY",
    "EventHandle",
    "EventQueue",
    "LatencyModel",
    "NetworkError",
    "NodeFailure",
    "OutOfMemoryError",
    "ProtectionError",
    "ReproError",
    "SimClock",
    "SimulationError",
    "TranslationError",
    "geometric_mean",
    "ratio",
    "validate_against_paper",
]
