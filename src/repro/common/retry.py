"""Retry with exponential backoff and seeded jitter.

Failure handling (paper section 4.5) needs a retry discipline that is
*simulatable*: every backoff must be charged to the simulated clock so
campaigns can measure recovery time, and every jitter draw must come
from a seeded RNG so the same campaign replays byte-identically.

:class:`RetryPolicy` is the immutable configuration; :class:`Retrier`
is the stateful executor bound to one policy, one RNG stream and one
clock.  Components own a Retrier each, so their jitter streams never
interleave nondeterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

import numpy as np

from .clock import SimClock
from .errors import ConfigError, NetworkError, RetryExhausted
from .stats import Counter

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry configuration.

    Attempt ``k`` (zero-based) that fails waits
    ``min(base * multiplier**k, cap) * (1 + U(-jitter, +jitter))``
    nanoseconds before the next attempt, with ``U`` drawn from the
    executor's seeded RNG.
    """

    max_attempts: int = 4
    base_backoff_ns: float = 4_000.0
    multiplier: float = 2.0
    max_backoff_ns: float = 1_000_000.0
    jitter: float = 0.2
    #: Total-deadline budget: cumulative backoff across one call may
    #: not exceed this many simulated ns (0 = unbounded).  A fenced or
    #: partitioned replica then fails over in bounded time instead of
    #: serving out its whole attempt schedule.
    max_total_backoff_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_backoff_ns < 0 or self.max_backoff_ns < 0:
            raise ConfigError("backoff durations must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")
        if self.max_total_backoff_ns < 0:
            raise ConfigError("max_total_backoff_ns must be non-negative")

    def backoff_ns(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff after the zero-based ``attempt``, jittered from ``rng``."""
        base = min(self.base_backoff_ns * self.multiplier ** attempt,
                   self.max_backoff_ns)
        if self.jitter == 0.0:
            return base
        return base * (1.0 + rng.uniform(-self.jitter, self.jitter))


@dataclass(frozen=True)
class RetryOutcome:
    """What one retried operation cost."""

    attempts: int
    backoff_ns: float


class Retrier:
    """Executes operations under a :class:`RetryPolicy`.

    Backoff time is charged to the bound clock (if any) *and* reported
    in the :class:`RetryOutcome`, so callers on a latency-accounting
    path can bill it to the right bucket.
    """

    def __init__(self, policy: RetryPolicy, seed: int = 0,
                 clock: Optional[SimClock] = None) -> None:
        self.policy = policy
        self.seed = seed
        self.clock = clock
        self._rng = np.random.default_rng(seed)
        self.counters = Counter()
        self.last_outcome = RetryOutcome(attempts=0, backoff_ns=0.0)

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn``, retrying on :class:`NetworkError`.

        Raises :class:`RetryExhausted` (chaining the last error) once
        ``max_attempts`` attempts have all failed.  The outcome of the
        most recent call — attempts used and total backoff charged — is
        kept in :attr:`last_outcome`.
        """
        backoff_total = 0.0
        deadline = self.policy.max_total_backoff_ns
        last_error: Optional[NetworkError] = None
        attempts_used = 0
        for attempt in range(self.policy.max_attempts):
            attempts_used = attempt + 1
            try:
                value = fn()
            except NetworkError as error:
                last_error = error
                self.counters.add("failed_attempts")
                if attempt + 1 < self.policy.max_attempts:
                    wait = self.policy.backoff_ns(attempt, self._rng)
                    if deadline > 0.0:
                        remaining = deadline - backoff_total
                        if remaining <= 0.0:
                            # Budget already spent: stop retrying early.
                            self.counters.add("deadline_exceeded")
                            break
                        # Clamp the final wait to the remaining budget.
                        if wait > remaining:
                            wait = remaining
                            self.counters.add("deadline_clamps")
                    backoff_total += wait
                    if self.clock is not None:
                        self.clock.advance(wait)
                    self.counters.add("retries")
                continue
            self.counters.add("successes")
            if attempt > 0:
                self.counters.add("recovered_calls")
            self.last_outcome = RetryOutcome(attempts=attempt + 1,
                                             backoff_ns=backoff_total)
            return value
        self.counters.add("exhausted")
        self.last_outcome = RetryOutcome(attempts=attempts_used,
                                         backoff_ns=backoff_total)
        raise RetryExhausted(
            f"gave up after {attempts_used} attempts "
            f"({backoff_total:.0f} ns backoff): {last_error}") from last_error
