"""A small discrete-event simulation core.

The Kona runtime model needs just enough of a DES to express things the
paper cares about: work that happens *off the critical path* (slab
pre-allocation, eviction, log unpacking on the memory node) versus work
that stalls the application (page faults, remote fetches).

:class:`SimClock` is a monotonically advancing nanosecond counter.
:class:`EventQueue` schedules callbacks at absolute times and runs them
in order.  :class:`Account` accumulates time into named buckets, which
is how the benchmark harness produces breakdowns like Figure 11c.
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .errors import SimulationError


class SimClock:
    """Monotonic simulated clock in nanoseconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` ns and return the new time."""
        if delta < 0:
            raise SimulationError(f"cannot advance clock by {delta} ns")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to the absolute instant ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot move clock backwards: now={self._now}, target={when}"
            )
        self._now = when
        return self._now


@dataclass(order=True)
class _Event:
    when: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`; allows cancellation."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already ran)."""
        self._event.cancelled = True

    @property
    def when(self) -> float:
        """Absolute time the event is scheduled for."""
        return self._event.when


class EventQueue:
    """Priority queue of timed callbacks driving a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[_Event] = []
        self._seq = itertools.count()

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.clock.now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``when``."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: now={self.clock.now}, when={when}"
            )
        event = _Event(when=when, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def empty(self) -> bool:
        """True when no live events remain."""
        return len(self) == 0

    def step(self) -> bool:
        """Run the next pending event; return False if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.when)
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Drain the queue, optionally stopping at time ``until``.

        Returns the number of events executed.  ``max_events`` guards
        against runaway self-rescheduling loops.
        """
        executed = 0
        while self._heap:
            if executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.when > until:
                break
            self.step()
            executed += 1
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)
        return executed


class Account:
    """Accumulates simulated time into named buckets.

    Used for the kind of breakdown the paper shows in Figure 11c
    (Copy / Bitmap / RDMA write / Ack wait).
    """

    def __init__(self) -> None:
        self._buckets: Dict[str, float] = defaultdict(float)

    def charge(self, bucket: str, ns: float) -> None:
        """Add ``ns`` nanoseconds to ``bucket``."""
        if ns < 0:
            raise SimulationError(f"negative charge {ns} to {bucket}")
        self._buckets[bucket] += ns

    def __getitem__(self, bucket: str) -> float:
        return self._buckets.get(bucket, 0.0)

    def __contains__(self, bucket: str) -> bool:
        return bucket in self._buckets

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._buckets.items()))

    @property
    def total(self) -> float:
        """Sum over all buckets."""
        return sum(self._buckets.values())

    def fractions(self) -> Dict[str, float]:
        """Per-bucket share of the total (empty dict if nothing charged)."""
        total = self.total
        if total <= 0:
            return {}
        return {name: value / total for name, value in self._buckets.items()}

    def merge(self, other: "Account") -> None:
        """Add all of ``other``'s buckets into this account."""
        for name, value in other:
            self._buckets[name] += value

    def as_dict(self) -> Dict[str, float]:
        """Copy of the raw bucket values."""
        return dict(self._buckets)
