"""Latency cost model shared by every simulated system.

The paper's evaluation is a comparison of *cost models*: the same
memory-access stream is priced differently depending on whether a miss
is served by a page fault through the kernel (Infiniswap, LegoOS,
Kona-VM) or by a coherence-directory fetch (Kona).  This module holds
the calibrated constants and the :class:`LatencyModel` dataclass that
every simulator component consults.

Calibration sources (all from the paper text):

* a 4 KB RDMA read/write completes in ~3 us (section 2.1, 6.4);
* Infiniswap remote fetch latency is ~40 us, dominated by the block
  layer (section 2.1);
* LegoOS remote fetch latency is ~10 us (section 2.1);
* Infiniswap eviction latency can exceed 32 us (section 2.1);
* a NUMA remote-socket access is ~1.5X a local access (section 4.3);
  FMem behind an FPGA directory is somewhat slower than that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from . import units
from .errors import ConfigError


@dataclass(frozen=True)
class CacheLevelLatency:
    """Access latency of one level of the hardware cache hierarchy."""

    name: str
    hit_ns: float


@dataclass(frozen=True)
class LatencyModel:
    """Every latency constant used by the simulators, in nanoseconds."""

    # -- CPU cache hierarchy -------------------------------------------------
    l1_hit_ns: float = 1.8          # ~4 cycles @ 2.2 GHz Skylake
    l2_hit_ns: float = 6.4          # ~14 cycles
    l3_hit_ns: float = 19.0         # ~42 cycles
    cmem_ns: float = 85.0           # local DRAM (CMem)
    fmem_ns: float = 220.0          # FPGA-attached DRAM via coherent link
    # NUMA factor implied: fmem/cmem ~ 2.6X, worse than the 1.5X socket
    # penalty because the directory logic runs in FPGA soft logic (4.3).

    # -- Network -------------------------------------------------------------
    rdma_base_ns: float = 1_450.0   # one-sided verb base latency (QP+NIC+wire)
    rdma_per_byte_ns: float = 0.38  # ~21 Gbit/s effective per-QP streaming
    rdma_doorbell_ns: float = 250.0 # per-WR posting cost when not linked
    rdma_linked_wr_ns: float = 45.0 # marginal cost of a linked WR in a chain
    rdma_completion_ns: float = 300.0  # polling a signaled CQE
    rdma_nic_wr_ns: float = 180.0   # per-WR NIC processing when pipelined

    # -- CPU-side data movement ----------------------------------------------
    memcpy_per_byte_ns: float = 0.031   # ~32 GB/s AVX copy
    memcmp_per_byte_ns: float = 0.025   # ~40 GB/s vectorized compare
    #: Copying a stopped process's memory through ptrace//proc/pid/mem
    #: runs at a few GB/s, not memcpy speed (KTracker's snapshot pass).
    ktracker_copy_per_byte_ns: float = 0.35
    bitmap_scan_per_line_ns: float = 0.9  # test+branch per tracked line

    # Copying dirty lines out of application pages for eviction is a
    # *cold* copy: the data was evicted from the CPU caches, so the
    # first line of each segment stalls on DRAM; later contiguous lines
    # stream behind the prefetcher.  Calibrated against Figure 11.
    copy_seg_overhead_ns: float = 60.0    # per-segment call/setup
    copy_cold_first_ns: float = 270.0     # DRAM stall, first segment
    copy_scatter_penalty_ns: float = 110.0  # scattered pattern penalty
    copy_next_seg_ns: float = 100.0       # later segments (stride-128ish)
    #: Fraction of log wire time a pipelined producer cannot hide.
    log_wire_exposure: float = 0.55

    # -- Virtual memory ------------------------------------------------------
    minor_fault_ns: float = 1_900.0     # write-protect / soft fault
    #: userfaultfd round trip with a dedicated, spinning handler thread
    #: (Kona-VM's cooperative user-level fault handling, section 5.1).
    #: Far leaner than the kernel swap path: trap + wake + UFFDIO_COPY.
    userfault_ns: float = 1_400.0
    tlb_shootdown_ns: float = 4_000.0   # IPI + remote TLB flush
    tlb_miss_walk_ns: float = 38.0      # page-table walk on TLB miss
    pte_update_ns: float = 160.0        # single PTE read-modify-write
    context_switch_ns: float = 1_200.0

    # -- Remote-memory system end-to-end fetch latencies (measured, 2.1) -----
    kona_remote_fetch_ns: float = 3_000.0    # cache-miss -> FPGA -> RDMA page
    kona_vm_remote_fetch_ns: float = 11_000.0  # userfaultfd page fault path
    legoos_remote_fetch_ns: float = 10_000.0
    infiniswap_remote_fetch_ns: float = 40_000.0
    infiniswap_evict_ns: float = 32_000.0

    # -- Coherence -----------------------------------------------------------
    coherence_msg_ns: float = 70.0      # one hop over the coherent link
    snoop_ns: float = 120.0             # FPGA snooping a line from CPU caches

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"latency {name} must be non-negative, got {value}")
        if self.fmem_ns < self.cmem_ns:
            raise ConfigError("FMem cannot be faster than CMem in this model")

    # -- derived helpers ------------------------------------------------------

    def rdma_transfer_ns(self, nbytes: int, *, linked: bool = False,
                         signaled: bool = True) -> float:
        """Cost of one RDMA one-sided operation moving ``nbytes``.

        ``linked`` models a work request that is part of a doorbell-batched
        chain (the paper's "linking" optimization); ``signaled`` adds the
        completion-polling cost (the paper batches completions, so only the
        last WR of a chain is signaled).
        """
        post = self.rdma_linked_wr_ns if linked else self.rdma_doorbell_ns
        wire = self.rdma_base_ns + self.rdma_per_byte_ns * nbytes
        comp = self.rdma_completion_ns if signaled else 0.0
        return post + wire + comp

    def rdma_pipelined_ns(self, nbytes: int, *, linked: bool = True) -> float:
        """Steady-state cost of one WR in a deep pipeline of transfers.

        Unlike :meth:`rdma_transfer_ns` (a *latency* model where the
        base round trip dominates), this is a *throughput* model: with
        many WRs in flight, the base latency is hidden and each WR costs
        its posting overhead, its NIC processing slot, and its wire
        bytes.  This is the right model for eviction streams (Fig. 11).
        """
        post = self.rdma_linked_wr_ns if linked else self.rdma_doorbell_ns
        return post + self.rdma_nic_wr_ns + self.rdma_per_byte_ns * nbytes

    def memcpy_ns(self, nbytes: int) -> float:
        """Cost of copying ``nbytes`` with AVX within one host."""
        return 60.0 + self.memcpy_per_byte_ns * nbytes

    def copy_segments_ns(self, seg_lines) -> float:
        """Cost of copying a page's dirty segments into a staging buffer.

        ``seg_lines`` is a sequence of segment lengths in cache lines.
        The first segment pays the cold DRAM stall (plus a scatter
        penalty when the page has several segments); subsequent
        segments run behind the prefetcher at a reduced cost.
        """
        total = 0.0
        for i, lines in enumerate(seg_lines):
            nbytes = lines * 64
            if i == 0:
                cost = self.copy_seg_overhead_ns + self.copy_cold_first_ns
                if len(seg_lines) > 1:
                    cost += self.copy_scatter_penalty_ns
            else:
                cost = self.copy_next_seg_ns
            total += cost + self.memcpy_per_byte_ns * nbytes
        return total

    def memcmp_ns(self, nbytes: int) -> float:
        """Cost of comparing ``nbytes`` (snapshot diffing in KTracker)."""
        return 40.0 + self.memcmp_per_byte_ns * nbytes

    def hierarchy_levels(self) -> tuple:
        """Hit latencies of the on-chip levels, L1 first."""
        return (
            CacheLevelLatency("L1", self.l1_hit_ns),
            CacheLevelLatency("L2", self.l2_hit_ns),
            CacheLevelLatency("L3", self.l3_hit_ns),
        )

    def with_overrides(self, **kwargs: float) -> "LatencyModel":
        """Return a copy with some constants replaced (for ablations)."""
        return replace(self, **kwargs)


#: The default, paper-calibrated model.  A 4 KB RDMA write prices out at
#: ``250 + 1450 + 0.38*4096 + 300 = ~3.6 us`` un-linked and ~3.3 us linked,
#: matching the paper's "RDMA 4KB write takes 3us".
DEFAULT_LATENCY = LatencyModel()


def cxl_latency() -> LatencyModel:
    """A forward-looking CXL-era latency profile (paper sections 2.3, 7).

    The paper anticipates CXL-attached platforms making its primitives
    practical.  Under CXL 2.0-class numbers: the FPGA/accelerator
    directory logic is hardened (FMem close to the 1.5X NUMA factor),
    and remote pool access goes through a CXL switch instead of an
    RDMA round trip — roughly 600-800 ns to a pooled-memory device,
    with much lower per-message framing cost.
    """
    return DEFAULT_LATENCY.with_overrides(
        fmem_ns=140.0,               # hardened directory: ~1.6X CMem
        rdma_base_ns=520.0,          # switch traversal, not NIC+network
        rdma_per_byte_ns=0.016,      # x8 CXL link ~ 32 GB/s
        rdma_doorbell_ns=0.0,        # load/store semantics: no doorbells
        rdma_linked_wr_ns=0.0,
        rdma_completion_ns=0.0,      # no CQEs to poll
        coherence_msg_ns=40.0,
        kona_remote_fetch_ns=750.0,  # end-to-end pooled-memory access
    )


def validate_against_paper(model: LatencyModel = DEFAULT_LATENCY) -> dict:
    """Sanity-check the calibration against the paper's headline numbers.

    Returns a dict of named checks mapping to (value, expectation) pairs;
    used by the test suite to pin the calibration down.
    """
    rdma_4k = model.rdma_transfer_ns(units.PAGE_4K, linked=True, signaled=False)
    return {
        "rdma_4k_us": (units.ns_to_us(rdma_4k), "~3 us"),
        "infiniswap_fetch_us": (
            units.ns_to_us(model.infiniswap_remote_fetch_ns), ">= 40 us"),
        "legoos_fetch_us": (units.ns_to_us(model.legoos_remote_fetch_ns), "~10 us"),
        "numa_factor": (model.fmem_ns / model.cmem_ns, "> 1.5"),
    }
