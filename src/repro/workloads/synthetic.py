"""Synthetic microbenchmark traces (Figures 7 and 11, section 6.1/6.4).

* :func:`one_line_per_page` — the Figure 7 benchmark: read then write
  one cache line in every page of a per-thread region; each thread gets
  a distinct region.  This is the worst case for page-granularity dirty
  tracking (amplification 64X) and the cleanest view of fault overhead.
* :func:`dirty_lines_pattern` — the Figure 11 benchmark: in every page
  of a region, write N of the 64 lines, contiguous or alternate.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..common import units
from ..common.errors import ConfigError


def one_line_per_page(region_bytes: int, threads: int = 1,
                      base: int = 0, seed: int = 0,
                      line_in_page: int = 0
                      ) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Figure 7 access streams: per-thread (addrs, writes) arrays.

    Each thread reads then writes the same line of every page in its
    own ``region_bytes``-sized region, in page order.
    """
    if region_bytes < units.PAGE_4K:
        raise ConfigError("region must hold at least one page")
    if not 0 <= line_in_page < units.LINES_PER_PAGE:
        raise ConfigError("line_in_page must be in [0, 64)")
    pages = region_bytes // units.PAGE_4K
    streams: List[Tuple[np.ndarray, np.ndarray]] = []
    for t in range(threads):
        region_base = base + t * region_bytes
        page_addrs = (np.uint64(region_base)
                      + np.arange(pages, dtype=np.uint64)
                      * np.uint64(units.PAGE_4K)
                      + np.uint64(line_in_page * units.CACHE_LINE))
        addrs = np.repeat(page_addrs, 2)
        writes = np.tile(np.array([False, True]), pages)
        streams.append((addrs, writes))
    return streams


def dirty_lines_pattern(region_bytes: int, n_lines: int,
                        pattern: str = "contiguous",
                        base: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Figure 11 write stream: N dirty lines per page over a region."""
    if not 1 <= n_lines <= units.LINES_PER_PAGE:
        raise ConfigError("n_lines must be in [1, 64]")
    if pattern == "contiguous":
        line_idx = np.arange(n_lines)
    elif pattern == "alternate":
        if n_lines > units.LINES_PER_PAGE // 2:
            raise ConfigError("alternate pattern supports at most 32 lines")
        line_idx = np.arange(n_lines) * 2
    else:
        raise ConfigError(f"unknown pattern {pattern!r}")
    pages = region_bytes // units.PAGE_4K
    page_bases = (np.uint64(base) + np.arange(pages, dtype=np.uint64)
                  * np.uint64(units.PAGE_4K))
    offsets = (line_idx * units.CACHE_LINE).astype(np.uint64)
    addrs = (page_bases[:, None] + offsets[None, :]).ravel()
    writes = np.ones(addrs.size, dtype=bool)
    return addrs, writes
