"""VoltDB TPC-C workload model (in-memory column store; paper Table 2).

TPC-C against VoltDB updates district/stock/order rows with strong
skew: most transactions hit a warehouse-local set of hot rows, while
inserts append to order tables.  Table 2 reports 3.74 / 79.55 / 1.17
at 11.5 GB.

Derived per-window targets: ~20 dirty lines per dirty page at ~55
unique bytes per line (row fields are wide and densely packed in a
columnar layout), ~24 dirty pages per dirty 2 MB region (tables are
contiguous), and Zipf-skewed region selection (hot warehouses).
"""

from __future__ import annotations

from ..common import units
from .base import ReadProfile, WorkloadModel, WriteProfile


def voltdb_tpcc(memory_bytes: int = 192 * units.MB,
                dirty_pages_per_window: int = 440) -> WorkloadModel:
    """VoltDB running TPC-C (Table 2: 3.74 / 79.55 / 1.17)."""
    return WorkloadModel(
        name="voltdb-tpcc",
        memory_bytes=memory_bytes,
        write_profile=WriteProfile(
            lines_per_page=20.0,
            bytes_per_line=55.0,
            pages_per_huge=24.1,
            dirty_pages_per_window=dirty_pages_per_window,
            full_page_fraction=0.22,    # order-line inserts fill pages
            partial_segment_lines=3.0,  # row updates: a few fields
            addressing="zipf",          # hot warehouses dominate
            zipf_s=1.25,
        ),
        read_profile=ReadProfile(
            pages_per_window=dirty_pages_per_window * 3,
            lines_per_page=16.0,
            full_page_fraction=0.2,
            segment_lines=4.0,
            bytes_per_access=40.0,
        ),
        window_drift=(1.0, 0.9, 1.1, 0.95, 1.05),
    )
