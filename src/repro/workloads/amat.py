"""Data-access streams for the AMAT study (Figure 8).

The paper's KCacheSim measures average memory access time over *all*
accesses of an application.  The overwhelming majority of accesses hit
the hot working set (stack, locals, hot dictionaries) in L1/L2; remote
memory only sees the cold data-region accesses.  Simulating billions of
L1 hits per configuration is pointless, so the model splits the stream:

* **hot accesses** — priced analytically from a fixed per-level hit
  profile (they never touch remote memory);
* **data accesses** — generated here and simulated faithfully through
  the cache hierarchy + DRAM cache.

``hot_per_data_access`` sets the mix; for the paper's applications the
remote-visible fraction of accesses is a fraction of a percent, which
is exactly what makes the AMAT axis of Figure 8 read in tens of ns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..common import units
from ..common.errors import ConfigError


@dataclass(frozen=True)
class HotProfile:
    """Analytic service profile of hot-working-set accesses."""

    l1: float = 0.972
    l2: float = 0.022
    l3: float = 0.005
    mem: float = 0.001

    def __post_init__(self) -> None:
        total = self.l1 + self.l2 + self.l3 + self.mem
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"hot profile fractions sum to {total}, not 1")


@dataclass(frozen=True)
class AmatSpec:
    """One application's data-access behaviour for the AMAT study."""

    name: str
    data_bytes: int               # size of the remote-eligible data region
    op_span_lines: int            # consecutive lines touched per operation
    reuse: str                    # uniform | stream | zipf
    write_fraction: float = 0.3
    zipf_s: float = 1.2
    hot_per_data_access: float = 300.0   # hot accesses per data access
    hot_profile: HotProfile = HotProfile()

    def __post_init__(self) -> None:
        if self.reuse not in ("uniform", "stream", "zipf"):
            raise ConfigError(f"unknown reuse mode {self.reuse!r}")
        if self.op_span_lines < 1:
            raise ConfigError("op_span_lines must be >= 1")


#: Data region base (arbitrary; distinct from the hot region at 0).
DATA_BASE = 1 * units.GB


def generate_data_accesses(spec: AmatSpec, num_ops: int,
                           seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Generate the data-access stream: (addrs, writes) arrays.

    Each operation touches ``op_span_lines`` consecutive cache lines of
    one object, starting at an object boundary chosen by the reuse
    mode.  This is the spatial locality Figure 8d's block-size sweep
    exploits.
    """
    rng = np.random.default_rng(seed)
    num_pages = spec.data_bytes // units.PAGE_4K
    span = spec.op_span_lines
    max_start = units.LINES_PER_PAGE - span

    if spec.reuse == "uniform":
        pages = rng.integers(0, num_pages, size=num_ops)
    elif spec.reuse == "zipf":
        pages = (rng.zipf(spec.zipf_s, size=num_ops) - 1) % num_pages
        # Spread the hot ranks over the region so hot pages are not all
        # in the first hardware cache sets.
        pages = (pages * np.uint64(2654435761)) % np.uint64(num_pages)
    else:  # stream
        pages = (np.arange(num_ops) * max(span, 1)
                 // units.LINES_PER_PAGE) % num_pages

    if spec.reuse == "stream":
        # A streaming scan walks lines consecutively within each page.
        starts = (np.arange(num_ops) * span) % units.LINES_PER_PAGE
        starts = np.minimum(starts, max_start)
    elif max_start > 0:
        starts = rng.integers(0, max_start + 1, size=num_ops)
    else:
        starts = np.zeros(num_ops, dtype=np.int64)

    base_lines = (pages.astype(np.uint64) * np.uint64(units.LINES_PER_PAGE)
                  + starts.astype(np.uint64))
    offsets = np.arange(span, dtype=np.uint64)
    lines = (base_lines[:, None] + offsets[None, :]).ravel()
    addrs = np.uint64(DATA_BASE) + lines * np.uint64(units.CACHE_LINE)
    writes = np.zeros(addrs.size, dtype=bool)
    op_writes = rng.random(num_ops) < spec.write_fraction
    writes = np.repeat(op_writes, span)
    return addrs, writes


def generate_exact_accesses(spec: AmatSpec, num_accesses: int,
                            seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a trace with exactly ``num_accesses`` accesses.

    :func:`generate_data_accesses` counts *operations*, each spanning
    ``op_span_lines`` accesses; benchmarks and sweeps that fix the
    trace length (e.g. "a 1M-access trace") use this wrapper, which
    rounds the operation count up and truncates the tail.
    """
    if num_accesses < 1:
        raise ConfigError("num_accesses must be >= 1")
    span = spec.op_span_lines
    num_ops = -(-num_accesses // span)
    addrs, writes = generate_data_accesses(spec, num_ops, seed)
    return addrs[:num_accesses], writes[:num_accesses]


# -- the paper's three Figure 8 applications ---------------------------------

def redis_rand_spec(data_bytes: int = 32 * units.MB) -> AmatSpec:
    """Redis-Rand: uniform key access, small objects (Fig. 8a)."""
    return AmatSpec(name="redis-rand", data_bytes=data_bytes,
                    op_span_lines=3, reuse="uniform", write_fraction=0.4,
                    hot_per_data_access=300.0)


def linear_regression_spec(data_bytes: int = 32 * units.MB) -> AmatSpec:
    """Linear Regression: streaming scan, no reuse (Fig. 8b).

    The flat AMAT-vs-cache-size curve comes from this spec: a stream
    never revisits data, so a bigger local cache buys nothing.
    """
    return AmatSpec(name="linear-regression", data_bytes=data_bytes,
                    op_span_lines=8, reuse="stream", write_fraction=0.15,
                    hot_per_data_access=220.0)


def graph_coloring_spec(data_bytes: int = 32 * units.MB) -> AmatSpec:
    """Graph Coloring: skewed vertex access with reuse (Fig. 8c)."""
    return AmatSpec(name="graph-coloring", data_bytes=data_bytes,
                    op_span_lines=2, reuse="zipf", write_fraction=0.35,
                    zipf_s=1.2, hot_per_data_access=300.0)


def uniform_stress_spec(data_bytes: int = 64 * units.MB) -> AmatSpec:
    """Uniform single-line accesses over a large region.

    The canonical engine benchmark: nearly every access misses the
    on-chip levels, so the whole stream reaches the DRAM cache and the
    trace engine — not locality — dominates simulation cost.
    """
    return AmatSpec(name="uniform-stress", data_bytes=data_bytes,
                    op_span_lines=1, reuse="uniform", write_fraction=0.4,
                    hot_per_data_access=300.0)


AMAT_SPECS = {
    "redis-rand": redis_rand_spec,
    "linear-regression": linear_regression_spec,
    "graph-coloring": graph_coloring_spec,
    "uniform-stress": uniform_stress_spec,
}
