"""Metis (in-memory MapReduce) workload models.

The paper runs two Metis jobs at 40 GB each (Table 2):

* **Linear Regression** — streaming scan of the input with accumulator
  updates.  Table 2: 2.31 / 244.14 / 1.22.  Derived: ~34 dirty lines
  per dirty page at ~52 bytes per line (dense intermediate-buffer
  writes), but only ~4.9 dirty pages per 2 MB region: map workers write
  into per-worker buffers scattered across the heap, so huge-page
  tracking amplifies enormously (the paper's argument against large
  pages, section 3).
* **Histogram** — streaming scan emitting into hash buckets.  Table 2:
  3.61 / 1050.73 / 1.84.  Derived: ~33 lines per dirty page at ~35
  bytes per line, and only ~1.8 dirty pages per 2 MB region — bucket
  writes scatter even more thinly than Linear Regression's.

Both use sequential/striped addressing for the map phase with the
scatter controlled by ``pages_per_huge``.  Memory is scaled from 40 GB
to a laptop-sized image; per-window densities are preserved.
"""

from __future__ import annotations

from ..common import units
from .base import ReadProfile, WorkloadModel, WriteProfile


def linear_regression(memory_bytes: int = 192 * units.MB,
                      dirty_pages_per_window: int = 430) -> WorkloadModel:
    """Metis Linear Regression (streaming, low reuse)."""
    return WorkloadModel(
        name="linear-regression",
        memory_bytes=memory_bytes,
        write_profile=WriteProfile(
            lines_per_page=33.8,
            bytes_per_line=52.0,
            pages_per_huge=4.85,
            dirty_pages_per_window=dirty_pages_per_window,
            full_page_fraction=0.45,
            partial_segment_lines=7.0,
            addressing="uniform",    # per-worker buffers scattered in heap
        ),
        read_profile=ReadProfile(
            pages_per_window=dirty_pages_per_window * 3,
            lines_per_page=50.0,     # the input scan reads nearly everything
            full_page_fraction=0.75,
            segment_lines=32.0,
            bytes_per_access=64.0,
        ),
        # Map-reduce phases alternate: cyclic amplification (section 6.3).
        window_drift=(1.0, 1.15, 0.8, 1.2, 0.75, 1.1),
    )


def histogram(memory_bytes: int = 192 * units.MB,
              dirty_pages_per_window: int = 160) -> WorkloadModel:
    """Metis Histogram (streaming scan, scattered bucket updates)."""
    return WorkloadModel(
        name="histogram",
        memory_bytes=memory_bytes,
        write_profile=WriteProfile(
            lines_per_page=32.6,
            bytes_per_line=34.8,
            pages_per_huge=1.76,
            dirty_pages_per_window=dirty_pages_per_window,
            full_page_fraction=0.40,
            partial_segment_lines=6.0,
            addressing="uniform",
        ),
        read_profile=ReadProfile(
            pages_per_window=dirty_pages_per_window * 3,
            lines_per_page=52.0,
            full_page_fraction=0.78,
            segment_lines=32.0,
            bytes_per_access=64.0,
        ),
        window_drift=(1.0, 1.2, 0.78, 1.18, 0.8, 1.05),
    )
