"""Workload-model machinery: profile-driven synthetic access traces.

The paper measured nine production workloads with Intel Pin (Table 2).
We cannot run Pin in this environment, so each workload is replaced by
a *structured synthetic model*: a generator that reproduces the
workload's measured per-window write statistics, which are fully
determined by Table 2's three amplification numbers:

* ``bytes_per_line``  = 64 / amp(64 B)          — how much of each dirty
  line the app actually writes;
* ``lines_per_page``  = 64 * amp(64 B) / amp(4 KB) — dirty lines per
  dirty page;
* ``pages_per_huge``  = 512 * amp(4 KB) / amp(2 MB) — dirty 4 KB pages
  per dirty 2 MB region.

A :class:`WriteProfile` encodes those three targets plus the *shape* of
the dirty lines (segment lengths, fraction of fully-written pages —
Figures 2 and 3) and the addressing mode (uniform for Redis-Rand,
sequential for Redis-Seq/Metis, clustered for the graph workloads,
Zipf for VoltDB).  The generator then samples windows that match the
statistics; the analysis tools measure amplification *emergently* from
the trace, and the test suite checks the result lands inside the
paper's bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..common import units
from ..common.errors import ConfigError
from .trace import Trace

PAGES_PER_HUGE = units.PAGE_2M // units.PAGE_4K   # 512


@dataclass(frozen=True)
class WriteProfile:
    """Per-window dirty-data statistics of one workload."""

    lines_per_page: float        # mean dirty lines per dirty page
    bytes_per_line: float        # mean unique bytes written per dirty line
    pages_per_huge: float        # mean dirty pages per dirty 2 MB region
    dirty_pages_per_window: int  # scale of one window's write set
    full_page_fraction: float = 0.0   # share of dirty pages fully written
    partial_segment_lines: float = 1.5  # mean segment length in partial pages
    addressing: str = "uniform"  # uniform | sequential | zipf | clustered
    zipf_s: float = 1.1          # skew for zipf addressing

    def __post_init__(self) -> None:
        if not 0 < self.lines_per_page <= units.LINES_PER_PAGE:
            raise ConfigError("lines_per_page must be in (0, 64]")
        if not 0 < self.bytes_per_line <= units.CACHE_LINE:
            raise ConfigError("bytes_per_line must be in (0, 64]")
        if not 0 < self.pages_per_huge <= PAGES_PER_HUGE:
            raise ConfigError("pages_per_huge must be in (0, 512]")
        if not 0.0 <= self.full_page_fraction < 1.0:
            raise ConfigError("full_page_fraction must be in [0, 1)")
        if self.addressing not in ("uniform", "sequential", "zipf",
                                   "clustered"):
            raise ConfigError(f"unknown addressing {self.addressing!r}")

    @property
    def partial_lines_per_page(self) -> float:
        """Dirty lines in non-fully-written pages, solved so the mix
        hits ``lines_per_page`` on average."""
        f = self.full_page_fraction
        partial = (self.lines_per_page - f * units.LINES_PER_PAGE) / (1.0 - f)
        return max(partial, 1.0)


@dataclass(frozen=True)
class ReadProfile:
    """Per-window read-access statistics (Figures 2-3 read curves)."""

    pages_per_window: int
    lines_per_page: float
    full_page_fraction: float = 0.0
    segment_lines: float = 2.0
    bytes_per_access: float = 16.0


@dataclass
class WorkloadModel:
    """A named workload: memory size + read/write profiles."""

    name: str
    memory_bytes: int
    write_profile: WriteProfile
    read_profile: Optional[ReadProfile] = None
    #: Per-window multiplicative drift applied to lines_per_page, used
    #: to reproduce the cyclic per-window behaviour of Figure 9.
    window_drift: Tuple[float, ...] = (1.0,)
    #: Number of startup windows with a distinct (loading) pattern.
    startup_windows: int = 0

    def __post_init__(self) -> None:
        if self.memory_bytes < units.PAGE_2M:
            raise ConfigError("workload memory must be at least one 2MB region")

    # -- generation ------------------------------------------------------------

    def generate(self, windows: int = 12, seed: int = 0) -> Trace:
        """Generate ``windows`` measurement windows of accesses."""
        rng = np.random.default_rng(seed)
        parts: List[np.ndarray] = []
        num_huge = self.memory_bytes // units.PAGE_2M
        for w in range(windows):
            drift = self.window_drift[w % len(self.window_drift)]
            startup = w < self.startup_windows
            parts.append(self._window(rng, w, num_huge, drift, startup))
        data = np.concatenate(parts)
        trace = Trace(data, self.memory_bytes, self.name)
        return trace

    # -- internals ---------------------------------------------------------------

    def _window(self, rng: np.random.Generator, window: int,
                num_huge: int, drift: float, startup: bool) -> np.ndarray:
        wp = self.write_profile
        if startup:
            # Server startup: bulk sequential population (fully written
            # pages) — this is why the first windows of Figure 9 look
            # alike for both Redis workloads.
            writes = self._bulk_load_window(rng, window, num_huge)
        else:
            writes = self._write_accesses(rng, window, num_huge, drift)
        reads = self._read_accesses(rng, window, num_huge)
        if reads is None:
            return writes
        both = np.concatenate([writes, reads])
        rng.shuffle(both)
        both["window"] = window
        return both

    def _choose_hugepages(self, rng: np.random.Generator, count: int,
                          num_huge: int, window: int) -> np.ndarray:
        wp = self.write_profile
        count = min(count, num_huge)
        if wp.addressing == "uniform":
            return rng.choice(num_huge, size=count, replace=False)
        if wp.addressing == "sequential":
            start = (window * count) % num_huge
            return (start + np.arange(count)) % num_huge
        if wp.addressing == "zipf":
            ranks = rng.zipf(wp.zipf_s, size=count * 4) - 1
            ranks = ranks[ranks < num_huge]
            picked = np.unique(ranks)[:count]
            if picked.size < count:
                extra = rng.choice(num_huge, size=count - picked.size,
                                   replace=False)
                picked = np.unique(np.concatenate([picked, extra]))[:count]
            return picked
        # clustered: a contiguous band of hugepages, drifting per window
        start = (window * max(count // 2, 1)) % num_huge
        return (start + np.arange(count)) % num_huge

    def _write_accesses(self, rng: np.random.Generator, window: int,
                        num_huge: int, drift: float) -> np.ndarray:
        wp = self.write_profile
        target_pages = max(int(wp.dirty_pages_per_window), 1)
        n_huge = max(int(round(target_pages / wp.pages_per_huge)), 1)
        n_huge = min(n_huge, num_huge)
        pages_per_huge = max(int(round(target_pages / n_huge)), 1)
        pages_per_huge = min(pages_per_huge, PAGES_PER_HUGE)
        huge_ids = self._choose_hugepages(rng, n_huge, num_huge, window)

        lines_target = min(wp.lines_per_page * drift, units.LINES_PER_PAGE)
        f = wp.full_page_fraction
        partial_lines = lines_target
        if f > 0:
            partial_lines = max(
                (lines_target - f * units.LINES_PER_PAGE) / (1.0 - f), 1.0)

        addr_chunks: List[np.ndarray] = []
        size_chunks: List[np.ndarray] = []
        for huge in huge_ids.tolist():
            page_offsets = rng.choice(PAGES_PER_HUGE, size=pages_per_huge,
                                      replace=False)
            base = huge * units.PAGE_2M
            for offset in page_offsets.tolist():
                page_addr = base + offset * units.PAGE_4K
                full = rng.random() < f
                lines = self._page_lines(rng, full, partial_lines)
                addrs = page_addr + lines * units.CACHE_LINE
                sizes = self._write_sizes(rng, lines.size)
                addr_chunks.append(addrs.astype(np.uint64))
                size_chunks.append(sizes)
        return self._pack(addr_chunks, size_chunks, window, is_write=True)

    def _page_lines(self, rng: np.random.Generator, full: bool,
                    partial_lines: float) -> np.ndarray:
        """Dirty line indices (0..63) for one page, as segments."""
        wp = self.write_profile
        if full:
            return np.arange(units.LINES_PER_PAGE)
        count = max(1, min(int(round(rng.normal(partial_lines,
                                                partial_lines * 0.35))),
                           units.LINES_PER_PAGE))
        seg_mean = max(wp.partial_segment_lines, 1.0)
        lines: List[int] = []
        occupied = np.zeros(units.LINES_PER_PAGE, dtype=bool)
        while len(lines) < count:
            seg_len = min(1 + rng.geometric(1.0 / seg_mean) - 1,
                          count - len(lines))
            seg_len = max(seg_len, 1)
            start = int(rng.integers(0, units.LINES_PER_PAGE))
            for i in range(start, min(start + seg_len,
                                      units.LINES_PER_PAGE)):
                if not occupied[i]:
                    occupied[i] = True
                    lines.append(i)
        return np.sort(np.array(lines[:count], dtype=np.int64))

    def _write_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        wp = self.write_profile
        # Unique bytes per line, rounded to word granularity the way the
        # Pin-based analysis counts them.
        raw = rng.normal(wp.bytes_per_line, wp.bytes_per_line * 0.3, size=n)
        clipped = np.clip(raw, units.WORD, units.CACHE_LINE)
        return (np.round(clipped / units.WORD) * units.WORD).astype(np.uint32)

    def _bulk_load_window(self, rng: np.random.Generator, window: int,
                          num_huge: int) -> np.ndarray:
        """Startup: dense sequential writes (population phase)."""
        wp = self.write_profile
        pages = max(int(wp.dirty_pages_per_window), 1)
        start_page = window * pages
        total_pages = self.memory_bytes // units.PAGE_4K
        page_ids = (start_page + np.arange(pages)) % total_pages
        addr_chunks: List[np.ndarray] = []
        size_chunks: List[np.ndarray] = []
        lines = np.arange(units.LINES_PER_PAGE)
        for page in page_ids.tolist():
            base = page * units.PAGE_4K
            addr_chunks.append((base + lines * units.CACHE_LINE)
                               .astype(np.uint64))
            size_chunks.append(np.full(lines.size, units.CACHE_LINE,
                                       dtype=np.uint32))
        return self._pack(addr_chunks, size_chunks, window, is_write=True)

    def _read_accesses(self, rng: np.random.Generator, window: int,
                       num_huge: int) -> Optional[np.ndarray]:
        rp = self.read_profile
        if rp is None:
            return None
        total_pages = self.memory_bytes // units.PAGE_4K
        pages = rng.choice(total_pages,
                           size=min(rp.pages_per_window, total_pages),
                           replace=False)
        addr_chunks: List[np.ndarray] = []
        size_chunks: List[np.ndarray] = []
        for page in pages.tolist():
            base = page * units.PAGE_4K
            if rng.random() < rp.full_page_fraction:
                lines = np.arange(units.LINES_PER_PAGE)
            else:
                count = max(1, int(round(rng.normal(rp.lines_per_page,
                                                    rp.lines_per_page * 0.4))))
                count = min(count, units.LINES_PER_PAGE)
                seg = max(rp.segment_lines, 1.0)
                picked: List[int] = []
                occupied = np.zeros(units.LINES_PER_PAGE, dtype=bool)
                while len(picked) < count:
                    seg_len = max(1, min(rng.geometric(1.0 / seg),
                                         count - len(picked)))
                    start = int(rng.integers(0, units.LINES_PER_PAGE))
                    for i in range(start, min(start + seg_len,
                                              units.LINES_PER_PAGE)):
                        if not occupied[i]:
                            occupied[i] = True
                            picked.append(i)
                lines = np.sort(np.array(picked[:count], dtype=np.int64))
            addrs = base + lines * units.CACHE_LINE
            sizes = np.full(lines.size,
                            max(int(rp.bytes_per_access), units.WORD),
                            dtype=np.uint32)
            addr_chunks.append(addrs.astype(np.uint64))
            size_chunks.append(sizes)
        return self._pack(addr_chunks, size_chunks, window, is_write=False)

    @staticmethod
    def _pack(addr_chunks: List[np.ndarray], size_chunks: List[np.ndarray],
              window: int, is_write: bool) -> np.ndarray:
        from .trace import TRACE_DTYPE
        addrs = np.concatenate(addr_chunks)
        sizes = np.concatenate(size_chunks)
        out = np.empty(addrs.size, dtype=TRACE_DTYPE)
        out["addr"] = addrs
        out["size"] = sizes
        out["write"] = is_write
        out["window"] = window
        return out
