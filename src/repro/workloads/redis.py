"""Redis workload models (data-structure server; paper sections 2.1-2.2).

Two workloads at the amplification extremes:

* **Redis-Rand** — uniformly random SET/GET over a large keyspace.
  Table 2: amp(4KB)=31.36, amp(2MB)=5516, amp(64B)=1.48.  Derived
  targets: ~3.0 dirty lines per dirty page, ~43 unique bytes per line
  (small values plus object metadata), ~2.9 dirty pages per dirty 2 MB
  region (keys scatter thinly over the heap).
* **Redis-Seq** — sequential key access.  Table 2: 2.76 / 54.76 / 1.08.
  Derived: ~25 dirty lines per page at ~59 bytes per line; the write
  CDF is bimodal (Figure 2): a ~30% share of fully-written pages (new
  object population) and partial pages of ~8-line runs (value updates
  that skip object headers); dirty pages cluster sequentially
  (~26 pages per 2 MB region).

Memory is scaled down from the paper's 4 GB / 133 MB to keep traces
laptop-sized; amplification statistics are per-window densities and do
not depend on the absolute heap size (the number of *active* regions
per window is preserved).
"""

from __future__ import annotations

from ..common import units
from .base import ReadProfile, WorkloadModel, WriteProfile


def redis_rand(memory_bytes: int = 128 * units.MB,
               dirty_pages_per_window: int = 180,
               startup_windows: int = 2) -> WorkloadModel:
    """Uniform-random Redis workload (highest page-level amplification)."""
    return WorkloadModel(
        name="redis-rand",
        memory_bytes=memory_bytes,
        write_profile=WriteProfile(
            lines_per_page=3.0,
            bytes_per_line=43.0,
            pages_per_huge=2.9,
            dirty_pages_per_window=dirty_pages_per_window,
            full_page_fraction=0.0,
            partial_segment_lines=1.5,   # Figure 3: mostly 1-4 line segments
            addressing="uniform",
        ),
        read_profile=ReadProfile(
            pages_per_window=dirty_pages_per_window * 2,
            lines_per_page=3.5,
            full_page_fraction=0.04,     # occasional large-value GETs
            segment_lines=1.6,
            bytes_per_access=24.0,
        ),
        startup_windows=startup_windows,
        # Per-window drift reproduces Figure 9's fluctuation band.
        window_drift=(1.0, 0.65, 1.4, 0.8, 1.9, 0.55, 1.1, 2.6, 0.7, 1.3),
    )


def redis_seq(memory_bytes: int = 64 * units.MB,
              dirty_pages_per_window: int = 420,
              startup_windows: int = 2) -> WorkloadModel:
    """Sequential Redis workload (lowest page-level amplification)."""
    return WorkloadModel(
        name="redis-seq",
        memory_bytes=memory_bytes,
        write_profile=WriteProfile(
            lines_per_page=25.0,
            bytes_per_line=59.0,
            pages_per_huge=25.8,
            dirty_pages_per_window=dirty_pages_per_window,
            full_page_fraction=0.30,     # newly populated objects
            partial_segment_lines=8.0,   # 512 B value runs
            addressing="sequential",
        ),
        read_profile=ReadProfile(
            pages_per_window=dirty_pages_per_window,
            lines_per_page=20.0,
            full_page_fraction=0.45,     # sequential GET scans whole objects
            segment_lines=10.0,
            bytes_per_access=48.0,
        ),
        startup_windows=startup_windows,
        window_drift=(1.0, 1.1, 0.9, 1.05, 0.95),
    )
