"""Memory-access traces as numpy structured arrays.

A trace records (address, size, is_write, window) per access.  Windows
correspond to the paper's measurement windows (10 s for Table 2, 1 s
for KTracker experiments); generators assign them directly rather than
simulating wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..common.errors import ConfigError

#: Structured dtype of a trace row.
TRACE_DTYPE = np.dtype([
    ("addr", np.uint64),
    ("size", np.uint32),
    ("write", np.bool_),
    ("window", np.uint32),
])


@dataclass
class Trace:
    """An immutable-ish memory-access trace."""

    data: np.ndarray          # structured array with TRACE_DTYPE
    memory_bytes: int         # the workload's resident set size
    name: str = "trace"

    def __post_init__(self) -> None:
        if self.data.dtype != TRACE_DTYPE:
            raise ConfigError(f"trace dtype must be {TRACE_DTYPE}")

    def __len__(self) -> int:
        return int(self.data.size)

    @property
    def addrs(self) -> np.ndarray:
        """Access byte addresses (uint64)."""
        return self.data["addr"]

    @property
    def sizes(self) -> np.ndarray:
        """Access sizes in bytes."""
        return self.data["size"]

    @property
    def writes(self) -> np.ndarray:
        """Write mask."""
        return self.data["write"]

    @property
    def windows(self) -> np.ndarray:
        """Window ids."""
        return self.data["window"]

    @property
    def num_windows(self) -> int:
        """Number of distinct measurement windows."""
        if self.data.size == 0:
            return 0
        return int(self.data["window"].max()) + 1

    def window_slice(self, window: int) -> "Trace":
        """All accesses belonging to one window."""
        mask = self.data["window"] == window
        return Trace(self.data[mask], self.memory_bytes,
                     f"{self.name}[w{window}]")

    def iter_windows(self) -> Iterator[Tuple[int, "Trace"]]:
        """Yield (window_id, trace) pairs in order."""
        for w in range(self.num_windows):
            yield w, self.window_slice(w)

    def writes_only(self) -> "Trace":
        """Just the write accesses."""
        mask = self.data["write"]
        return Trace(self.data[mask], self.memory_bytes, f"{self.name}[w]")

    def reads_only(self) -> "Trace":
        """Just the read accesses."""
        mask = ~self.data["write"]
        return Trace(self.data[mask], self.memory_bytes, f"{self.name}[r]")

    def total_bytes(self) -> int:
        """Sum of access sizes."""
        return int(self.data["size"].sum())


def make_trace(addrs: np.ndarray, sizes: np.ndarray, writes: np.ndarray,
               windows: np.ndarray, memory_bytes: int,
               name: str = "trace") -> Trace:
    """Assemble a :class:`Trace` from parallel arrays."""
    n = len(addrs)
    for arr, label in ((sizes, "sizes"), (writes, "writes"),
                       (windows, "windows")):
        if len(arr) != n:
            raise ConfigError(f"{label} length {len(arr)} != addrs length {n}")
    data = np.empty(n, dtype=TRACE_DTYPE)
    data["addr"] = addrs
    data["size"] = sizes
    data["write"] = writes
    data["window"] = windows
    return Trace(data, memory_bytes, name)


def save_trace(trace: Trace, path) -> None:
    """Persist a trace to a compressed ``.npz`` file.

    Long traces are expensive to regenerate; persisted traces also make
    experiments bit-reproducible across machines.
    """
    np.savez_compressed(path, data=trace.data,
                        memory_bytes=np.int64(trace.memory_bytes),
                        name=np.bytes_(trace.name.encode()))


def load_trace(path) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as archive:
        data = archive["data"]
        if data.dtype != TRACE_DTYPE:
            raise ConfigError(
                f"file holds dtype {data.dtype}, expected {TRACE_DTYPE}")
        return Trace(data.copy(), int(archive["memory_bytes"]),
                     bytes(archive["name"]).decode())


def concatenate(traces: List[Trace], name: str = "concat") -> Trace:
    """Concatenate traces, renumbering windows consecutively."""
    if not traces:
        raise ConfigError("nothing to concatenate")
    parts = []
    offset = 0
    for trace in traces:
        part = trace.data.copy()
        part["window"] += offset
        offset += trace.num_windows
        parts.append(part)
    memory = max(t.memory_bytes for t in traces)
    return Trace(np.concatenate(parts), memory, name)
