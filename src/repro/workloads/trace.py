"""Memory-access traces as numpy structured arrays.

A trace records (address, size, is_write, window) per access.  Windows
correspond to the paper's measurement windows (10 s for Table 2, 1 s
for KTracker experiments); generators assign them directly rather than
simulating wall-clock time.

Two on-disk formats:

* ``.npz`` (:func:`save_trace`/:func:`load_trace`): one compressed
  structured array — compact, but decompresses the whole trace into
  RAM on load, which caps it at ~10M accesses in practice.
* **columnar** (:func:`save_columnar`/:func:`open_columnar`): a
  directory of plain ``.npy`` column files plus a ``meta.json``.
  Plain ``.npy`` memory-maps, so a 100M–1B-access trace replays in
  fixed-size chunks (:func:`iter_trace_chunks`) with peak RSS bounded
  by the chunk size, and :class:`StreamingTraceWriter` generates one
  without ever holding it in memory.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..common import units
from ..common.errors import ConfigError

#: Structured dtype of a trace row.
TRACE_DTYPE = np.dtype([
    ("addr", np.uint64),
    ("size", np.uint32),
    ("write", np.bool_),
    ("window", np.uint32),
])


@dataclass
class Trace:
    """An immutable-ish memory-access trace."""

    data: np.ndarray          # structured array with TRACE_DTYPE
    memory_bytes: int         # the workload's resident set size
    name: str = "trace"

    def __post_init__(self) -> None:
        if self.data.dtype != TRACE_DTYPE:
            raise ConfigError(f"trace dtype must be {TRACE_DTYPE}")

    def __len__(self) -> int:
        return int(self.data.size)

    @property
    def addrs(self) -> np.ndarray:
        """Access byte addresses (uint64)."""
        return self.data["addr"]

    @property
    def sizes(self) -> np.ndarray:
        """Access sizes in bytes."""
        return self.data["size"]

    @property
    def writes(self) -> np.ndarray:
        """Write mask."""
        return self.data["write"]

    @property
    def windows(self) -> np.ndarray:
        """Window ids."""
        return self.data["window"]

    @property
    def num_windows(self) -> int:
        """Number of distinct measurement windows."""
        if self.data.size == 0:
            return 0
        return int(self.data["window"].max()) + 1

    def window_slice(self, window: int) -> "Trace":
        """All accesses belonging to one window."""
        mask = self.data["window"] == window
        return Trace(self.data[mask], self.memory_bytes,
                     f"{self.name}[w{window}]")

    def iter_windows(self) -> Iterator[Tuple[int, "Trace"]]:
        """Yield (window_id, trace) pairs in order."""
        for w in range(self.num_windows):
            yield w, self.window_slice(w)

    def writes_only(self) -> "Trace":
        """Just the write accesses."""
        mask = self.data["write"]
        return Trace(self.data[mask], self.memory_bytes, f"{self.name}[w]")

    def reads_only(self) -> "Trace":
        """Just the read accesses."""
        mask = ~self.data["write"]
        return Trace(self.data[mask], self.memory_bytes, f"{self.name}[r]")

    def total_bytes(self) -> int:
        """Sum of access sizes."""
        return int(self.data["size"].sum())


def make_trace(addrs: np.ndarray, sizes: np.ndarray, writes: np.ndarray,
               windows: np.ndarray, memory_bytes: int,
               name: str = "trace") -> Trace:
    """Assemble a :class:`Trace` from parallel arrays."""
    n = len(addrs)
    for arr, label in ((sizes, "sizes"), (writes, "writes"),
                       (windows, "windows")):
        if len(arr) != n:
            raise ConfigError(f"{label} length {len(arr)} != addrs length {n}")
    data = np.empty(n, dtype=TRACE_DTYPE)
    data["addr"] = addrs
    data["size"] = sizes
    data["write"] = writes
    data["window"] = windows
    return Trace(data, memory_bytes, name)


def save_trace(trace: Trace, path) -> None:
    """Persist a trace to a compressed ``.npz`` file.

    Long traces are expensive to regenerate; persisted traces also make
    experiments bit-reproducible across machines.
    """
    np.savez_compressed(path, data=trace.data,
                        memory_bytes=np.int64(trace.memory_bytes),
                        name=np.bytes_(trace.name.encode()))


def load_trace(path) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as archive:
        data = archive["data"]
        if data.dtype != TRACE_DTYPE:
            raise ConfigError(
                f"file holds dtype {data.dtype}, expected {TRACE_DTYPE}")
        return Trace(data.copy(), int(archive["memory_bytes"]),
                     bytes(archive["name"]).decode())


#: Columnar trace directory layout: ``meta.json`` plus one plain
#: ``.npy`` per column.  ``addr`` and ``write`` are mandatory (they are
#: what the replay engines consume); ``size`` and ``window`` are
#: optional and synthesized as WORD / 0 when absent, so streamed
#: generators can skip them.
COLUMNAR_FORMAT = "kona-columnar-trace"
COLUMNAR_VERSION = 1
_COLUMN_DTYPES = {"addr": np.uint64, "size": np.uint32,
                  "write": np.bool_, "window": np.uint32}
_REQUIRED_COLUMNS = ("addr", "write")


def _npy_header_bytes(dtype: np.dtype, count: int) -> bytes:
    """A fixed-width (128-byte) ``.npy`` v1.0 header for a 1-D array.

    numpy pads headers to a 64-byte multiple, so the header length
    depends on how many digits the shape has — useless for a streaming
    writer that must rewrite the count after the data.  Padding the
    dict text to one fixed width keeps the header length constant for
    any count, so ``close()`` can seek to 0 and overwrite in place.
    """
    header = ("{'descr': '%s', 'fortran_order': False, "
              "'shape': (%d,), }" % (dtype.str, count))
    total = 128
    body = header + " " * (total - 10 - 1 - len(header)) + "\n"
    return (b"\x93NUMPY\x01\x00" + len(body).to_bytes(2, "little")
            + body.encode("latin1"))


class StreamingTraceWriter:
    """Append-only columnar trace writer with O(chunk) memory.

    Opens one file per column, writes a placeholder header, streams
    raw array bytes through :meth:`append`, and fixes up the headers
    and ``meta.json`` on :meth:`close` — so a 100M+-access trace is
    generated without ever materializing it.
    """

    def __init__(self, path: str, memory_bytes: int,
                 name: str = "trace",
                 columns: Tuple[str, ...] = _REQUIRED_COLUMNS) -> None:
        for col in _REQUIRED_COLUMNS:
            if col not in columns:
                raise ConfigError(f"columnar trace requires column {col!r}")
        for col in columns:
            if col not in _COLUMN_DTYPES:
                raise ConfigError(f"unknown trace column {col!r}")
        self.path = path
        self.memory_bytes = int(memory_bytes)
        self.name = name
        self.columns = tuple(columns)
        self.length = 0
        os.makedirs(path, exist_ok=True)
        self._files = {}
        for col in self.columns:
            fh = open(os.path.join(path, f"{col}.npy"), "wb")
            fh.write(_npy_header_bytes(np.dtype(_COLUMN_DTYPES[col]), 0))
            self._files[col] = fh

    def append(self, **arrays: np.ndarray) -> None:
        """Append one chunk; keyword per column, equal lengths."""
        if set(arrays) != set(self.columns):
            raise ConfigError(
                f"append needs exactly columns {sorted(self.columns)}, "
                f"got {sorted(arrays)}")
        n = len(arrays["addr"])
        for col, arr in arrays.items():
            if len(arr) != n:
                raise ConfigError(f"column {col!r} length {len(arr)} != {n}")
            dtype = np.dtype(_COLUMN_DTYPES[col])
            self._files[col].write(
                np.ascontiguousarray(arr, dtype=dtype).tobytes())
        self.length += n

    def close(self) -> None:
        """Finalize headers and write ``meta.json``; idempotent."""
        if not self._files:
            return
        for col, fh in self._files.items():
            fh.seek(0)
            fh.write(_npy_header_bytes(
                np.dtype(_COLUMN_DTYPES[col]), self.length))
            fh.close()
        self._files = {}
        meta = {"format": COLUMNAR_FORMAT, "version": COLUMNAR_VERSION,
                "length": self.length, "memory_bytes": self.memory_bytes,
                "name": self.name, "columns": list(self.columns)}
        with open(os.path.join(self.path, "meta.json"), "w") as fh:
            json.dump(meta, fh, indent=2)
            fh.write("\n")

    def __enter__(self) -> "StreamingTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class ColumnarTrace:
    """A columnar trace opened for memory-mapped reading.

    ``addrs``/``writes`` (and ``sizes``/``windows`` when stored) are
    read-only memmaps — touching a slice faults in just those pages,
    so iteration over a 100M-access trace keeps RSS at chunk size.
    """

    path: str
    length: int
    memory_bytes: int
    name: str
    addrs: np.ndarray
    writes: np.ndarray
    sizes: Optional[np.ndarray] = None
    windows: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self.length

    def iter_chunks(self, chunk_size: int
                    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(addrs, writes)`` memmap slices of ``chunk_size``."""
        if chunk_size <= 0:
            raise ConfigError(f"chunk_size {chunk_size} must be positive")
        for pos in range(0, self.length, chunk_size):
            hi = min(pos + chunk_size, self.length)
            yield self.addrs[pos:hi], self.writes[pos:hi]

    def materialize(self) -> Trace:
        """Copy into an in-memory :class:`Trace` (small traces only).

        Missing optional columns synthesize as WORD-sized single-window
        accesses — the values every replay engine assumes anyway.
        """
        data = np.empty(self.length, dtype=TRACE_DTYPE)
        data["addr"] = self.addrs
        data["write"] = self.writes
        data["size"] = (self.sizes if self.sizes is not None
                        else units.WORD)
        data["window"] = (self.windows if self.windows is not None else 0)
        return Trace(data, self.memory_bytes, self.name)


def read_columnar_meta(path: str) -> dict:
    """Load and validate a columnar trace's ``meta.json``."""
    meta_path = os.path.join(path, "meta.json")
    if not os.path.exists(meta_path):
        raise ConfigError(f"{path!r} is not a columnar trace "
                          f"(no meta.json)")
    with open(meta_path) as fh:
        meta = json.load(fh)
    if meta.get("format") != COLUMNAR_FORMAT:
        raise ConfigError(f"{path!r}: format {meta.get('format')!r} != "
                          f"{COLUMNAR_FORMAT!r}")
    if meta.get("version") != COLUMNAR_VERSION:
        raise ConfigError(f"{path!r}: unsupported columnar version "
                          f"{meta.get('version')!r}")
    for col in _REQUIRED_COLUMNS:
        if col not in meta.get("columns", ()):
            raise ConfigError(f"{path!r}: missing required column {col!r}")
    return meta


def open_columnar(path: str) -> ColumnarTrace:
    """Open a columnar trace directory with memory-mapped columns."""
    meta = read_columnar_meta(path)
    arrays = {}
    for col in meta["columns"]:
        arr = np.load(os.path.join(path, f"{col}.npy"), mmap_mode="r")
        expect = np.dtype(_COLUMN_DTYPES[col])
        if arr.dtype != expect:
            raise ConfigError(f"{path!r}: column {col!r} dtype "
                              f"{arr.dtype} != {expect}")
        if arr.shape != (meta["length"],):
            raise ConfigError(f"{path!r}: column {col!r} length "
                              f"{arr.shape} != ({meta['length']},)")
        arrays[col] = arr
    return ColumnarTrace(path=path, length=int(meta["length"]),
                         memory_bytes=int(meta["memory_bytes"]),
                         name=str(meta["name"]),
                         addrs=arrays["addr"], writes=arrays["write"],
                         sizes=arrays.get("size"),
                         windows=arrays.get("window"))


def save_columnar(trace: Trace, path: str) -> None:
    """Write an in-memory :class:`Trace` as a columnar directory.

    All four columns are stored, so ``npz -> columnar -> npz`` is an
    exact round trip.
    """
    with StreamingTraceWriter(path, trace.memory_bytes, trace.name,
                              columns=("addr", "size", "write",
                                       "window")) as writer:
        writer.append(addr=trace.addrs, size=trace.sizes,
                      write=trace.writes, window=trace.windows)


def iter_trace_chunks(path: str, chunk_size: int = 1 << 20
                      ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Stream ``(addrs, writes)`` chunks from a columnar trace.

    The convenience entry point for
    :meth:`repro.kona.runtime.KonaRuntime.run_trace_stream`; keep
    ``chunk_size`` a multiple of the 256-access maintenance cadence so
    a streamed replay is bit-identical to a monolithic one.
    """
    yield from open_columnar(path).iter_chunks(chunk_size)


def generate_hot_mix_stream(path: str, num_accesses: int,
                            hot_lines: int = 16384,
                            cold_fraction: float = 0.002,
                            region_bytes: int = 192 * units.MB,
                            write_fraction: float = 0.3,
                            seed: int = 7,
                            chunk_size: int = 1 << 20) -> ColumnarTrace:
    """Generate a hot-mix trace straight to columnar storage.

    Chunk ``i`` draws from ``default_rng([seed, i])``, so any chunk is
    reproducible independently (and a partial regeneration matches a
    full one) while peak RSS stays at one chunk regardless of
    ``num_accesses`` — this is how the 100M+-access scale points are
    produced.  Addresses are region-relative; rebase at replay time
    with ``run_trace_stream(..., base=region.start)``.
    """
    if num_accesses <= 0:
        raise ConfigError(f"num_accesses {num_accesses} must be positive")
    total_lines = region_bytes // units.CACHE_LINE
    if hot_lines > total_lines:
        raise ConfigError(f"hot_lines {hot_lines} exceeds region "
                          f"({total_lines} lines)")
    with StreamingTraceWriter(path, region_bytes,
                              name=f"hot-mix-{num_accesses}") as writer:
        for index, pos in enumerate(range(0, num_accesses, chunk_size)):
            n = min(chunk_size, num_accesses - pos)
            rng = np.random.default_rng([seed, index])
            lines = rng.integers(0, hot_lines, size=n, dtype=np.int64)
            cold = rng.random(n) < cold_fraction
            n_cold = int(cold.sum())
            if n_cold:
                lines[cold] = rng.integers(hot_lines, total_lines,
                                           size=n_cold, dtype=np.int64)
            writer.append(
                addr=(lines * units.CACHE_LINE).astype(np.uint64),
                write=rng.random(n) < write_fraction)
    return open_columnar(path)


def concatenate(traces: List[Trace], name: str = "concat") -> Trace:
    """Concatenate traces, renumbering windows consecutively."""
    if not traces:
        raise ConfigError("nothing to concatenate")
    parts = []
    offset = 0
    for trace in traces:
        part = trace.data.copy()
        part["window"] += offset
        offset += trace.num_windows
        parts.append(part)
    memory = max(t.memory_bytes for t in traces)
    return Trace(np.concatenate(parts), memory, name)
