"""GraphLab workload models (graph analytics; paper Table 2).

Four GraphLab algorithms, all with the same structural signature:
per-iteration sweeps over vertex-state arrays laid out contiguously
(CSR-style), so dirty pages cluster heavily within 2 MB regions
(28-44 dirty pages per dirty region — the highest of all workloads),
while per-page density stays moderate (vertex records are small and
only active vertices are updated).

Derived per-window targets from Table 2:

================  ========  =========  ==========  =============
algorithm         amp 4KB   amp 2MB    lines/page  pages/huge
================  ========  =========  ==========  =============
Page Rank           4.38      80.71      21.5        27.8
Graph Coloring      5.57      90.37      18.0        31.6
Connected Comp.     5.67      82.35      18.3        35.2
Label Propagation   8.14      95.00      14.5        43.9
================  ========  =========  ==========  =============

When networkx is available, a real graph (Barabasi-Albert, matching
power-law degree structure of the paper's inputs) supplies the vertex
activation sequence, so the per-window active sets have realistic
frontier correlation; otherwise activation falls back to the clustered
addressing mode.
"""

from __future__ import annotations

from typing import Optional

from ..common import units
from .base import ReadProfile, WorkloadModel, WriteProfile


def _graph_model(name: str, lines_per_page: float, bytes_per_line: float,
                 pages_per_huge: float, memory_bytes: int,
                 dirty_pages_per_window: int,
                 full_page_fraction: float) -> WorkloadModel:
    return WorkloadModel(
        name=name,
        memory_bytes=memory_bytes,
        write_profile=WriteProfile(
            lines_per_page=lines_per_page,
            bytes_per_line=bytes_per_line,
            pages_per_huge=pages_per_huge,
            dirty_pages_per_window=dirty_pages_per_window,
            full_page_fraction=full_page_fraction,
            partial_segment_lines=2.2,   # vertex records: short runs
            addressing="clustered",      # CSR arrays: dense bands
        ),
        read_profile=ReadProfile(
            pages_per_window=dirty_pages_per_window * 4,
            lines_per_page=24.0,         # edge-list scans
            full_page_fraction=0.3,
            segment_lines=8.0,
            bytes_per_access=32.0,
        ),
        # Iterations alternate gather/apply phases: cyclic amplification.
        window_drift=(1.0, 0.75, 1.3, 0.85, 1.2, 0.7),
    )


def page_rank(memory_bytes: int = 160 * units.MB,
              dirty_pages_per_window: int = 480) -> WorkloadModel:
    """PageRank (Table 2: 4.38 / 80.71 / 1.47; 4.2 GB in the paper)."""
    return _graph_model("page-rank", 21.5, 43.5, 27.8,
                        memory_bytes, dirty_pages_per_window, 0.25)


def graph_coloring(memory_bytes: int = 192 * units.MB,
                   dirty_pages_per_window: int = 460) -> WorkloadModel:
    """Graph Coloring (Table 2: 5.57 / 90.37 / 1.57; 8.2 GB)."""
    return _graph_model("graph-coloring", 18.0, 40.8, 31.6,
                        memory_bytes, dirty_pages_per_window, 0.20)


def connected_components(memory_bytes: int = 160 * units.MB,
                         dirty_pages_per_window: int = 440) -> WorkloadModel:
    """Connected Components (Table 2: 5.67 / 82.35 / 1.62; 5.2 GB)."""
    return _graph_model("connected-components", 18.3, 39.5, 35.2,
                        memory_bytes, dirty_pages_per_window, 0.20)


def label_propagation(memory_bytes: int = 160 * units.MB,
                      dirty_pages_per_window: int = 420) -> WorkloadModel:
    """Label Propagation (Table 2: 8.14 / 95.00 / 1.85; 5.6 GB)."""
    return _graph_model("label-propagation", 14.5, 34.6, 43.9,
                        memory_bytes, dirty_pages_per_window, 0.14)


def build_vertex_layout(num_vertices: int, record_bytes: int = 64,
                        seed: int = 7) -> Optional[list]:
    """Vertex activation order from a power-law graph (networkx).

    Returns per-iteration active-vertex lists, or None when networkx is
    unavailable.  Used by the graph examples to drive workloads with a
    real frontier instead of the clustered approximation.
    """
    try:
        import networkx as nx
    except ImportError:        # pragma: no cover - nx is installed here
        return None
    graph = nx.barabasi_albert_graph(num_vertices, 4, seed=seed)
    frontiers = []
    visited = {0}
    frontier = [0]
    while frontier:
        frontiers.append(list(frontier))
        nxt = set()
        for v in frontier:
            for n in graph.neighbors(v):
                if n not in visited:
                    visited.add(n)
                    nxt.add(n)
        frontier = sorted(nxt)
    return frontiers
