"""Multi-tenant trace composition.

Disaggregation's economic argument (paper §1, §7) is about *mixes*:
several applications with different footprints and phases sharing one
memory pool.  This module composes per-tenant workload models into a
single trace — each tenant gets a disjoint address partition, windows
are aligned, and accesses interleave — so rack-level experiments can
run realistic co-located load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..common import units
from ..common.errors import ConfigError
from .base import WorkloadModel
from .trace import Trace


@dataclass(frozen=True)
class TenantPlacement:
    """Where one tenant's memory lives in the composed address space."""

    name: str
    base: int
    size: int


def interleave(models: Sequence[WorkloadModel], windows: int = 4,
               seed: int = 0,
               gap_bytes: int = units.PAGE_2M
               ) -> Tuple[Trace, List[TenantPlacement]]:
    """Compose tenants into one trace over disjoint partitions.

    Each tenant's addresses are rebased onto its own 2 MB-aligned
    partition (with a guard gap so tenants never share a hugepage —
    sharing one would corrupt per-tenant amplification accounting).
    Within each window, tenant accesses are shuffled together, which is
    what a memory node serving multiple compute nodes observes.
    """
    if not models:
        raise ConfigError("need at least one tenant")
    if gap_bytes % units.PAGE_2M:
        raise ConfigError("gap must be a 2 MB multiple")
    rng = np.random.default_rng(seed)
    placements: List[TenantPlacement] = []
    base = 0
    traces: List[Trace] = []
    for i, model in enumerate(models):
        placements.append(TenantPlacement(model.name, base,
                                          model.memory_bytes))
        traces.append(model.generate(windows=windows, seed=seed + i))
        base += model.memory_bytes + gap_bytes

    parts: List[np.ndarray] = []
    for window in range(windows):
        window_parts = []
        for trace, placement in zip(traces, placements):
            mask = trace.windows == window
            chunk = trace.data[mask].copy()
            chunk["addr"] += np.uint64(placement.base)
            window_parts.append(chunk)
        merged = np.concatenate(window_parts)
        rng.shuffle(merged)
        parts.append(merged)

    data = np.concatenate(parts)
    total = base - gap_bytes if models else 0
    name = "+".join(m.name for m in models)
    return Trace(data, total, name), placements


def per_tenant_slice(trace: Trace, placement: TenantPlacement) -> Trace:
    """Extract one tenant's accesses back out of a composed trace."""
    low = np.uint64(placement.base)
    high = np.uint64(placement.base + placement.size)
    mask = (trace.addrs >= low) & (trace.addrs < high)
    data = trace.data[mask].copy()
    data["addr"] -= low
    return Trace(data, placement.size, placement.name)


def footprint_summary(placements: Sequence[TenantPlacement]
                      ) -> Dict[str, float]:
    """Per-tenant share of the composed footprint."""
    total = sum(p.size for p in placements)
    if total == 0:
        raise ConfigError("empty placement set")
    return {p.name: p.size / total for p in placements}
