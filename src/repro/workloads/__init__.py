"""Workload models: synthetic stand-ins for the paper's applications."""

from typing import Callable, Dict

from .amat import (
    AMAT_SPECS,
    AmatSpec,
    DATA_BASE,
    HotProfile,
    generate_data_accesses,
    generate_exact_accesses,
    graph_coloring_spec,
    linear_regression_spec,
    redis_rand_spec,
    uniform_stress_spec,
)
from .base import ReadProfile, WorkloadModel, WriteProfile
from .graphlab import (
    build_vertex_layout,
    connected_components,
    graph_coloring,
    label_propagation,
    page_rank,
)
from .metis import histogram, linear_regression
from .mixer import TenantPlacement, footprint_summary, interleave, per_tenant_slice
from .redis import redis_rand, redis_seq
from .synthetic import dirty_lines_pattern, one_line_per_page
from .trace import (
    TRACE_DTYPE,
    Trace,
    concatenate,
    load_trace,
    make_trace,
    save_trace,
)
from .voltdb import voltdb_tpcc

#: All Table 2 workloads by name.
WORKLOADS: Dict[str, Callable[[], WorkloadModel]] = {
    "redis-rand": redis_rand,
    "redis-seq": redis_seq,
    "linear-regression": linear_regression,
    "histogram": histogram,
    "page-rank": page_rank,
    "graph-coloring": graph_coloring,
    "connected-components": connected_components,
    "label-propagation": label_propagation,
    "voltdb-tpcc": voltdb_tpcc,
}

__all__ = [
    "AMAT_SPECS",
    "AmatSpec",
    "DATA_BASE",
    "HotProfile",
    "ReadProfile",
    "TRACE_DTYPE",
    "TenantPlacement",
    "Trace",
    "WORKLOADS",
    "WorkloadModel",
    "WriteProfile",
    "build_vertex_layout",
    "concatenate",
    "connected_components",
    "dirty_lines_pattern",
    "generate_data_accesses",
    "generate_exact_accesses",
    "graph_coloring",
    "graph_coloring_spec",
    "footprint_summary",
    "histogram",
    "interleave",
    "label_propagation",
    "linear_regression",
    "load_trace",
    "linear_regression_spec",
    "make_trace",
    "one_line_per_page",
    "page_rank",
    "per_tenant_slice",
    "redis_rand",
    "redis_rand_spec",
    "redis_seq",
    "save_trace",
    "uniform_stress_spec",
    "voltdb_tpcc",
]
